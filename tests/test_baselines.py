"""Tests for the baseline failure detectors."""

import pytest

from repro.baselines.centralized import CentralizedConfig, install_centralized
from repro.baselines.flooding import FloodingConfig, install_flooding
from repro.baselines.gossip import GossipConfig, install_gossip
from repro.baselines.swim import SwimConfig, install_swim
from repro.errors import ConfigurationError
from repro.metrics.properties import evaluate_histories
from repro.sim.network import NetworkConfig, build_network
from repro.topology.generators import multi_cluster_field
from repro.topology.placement import cluster_disk_placement


def lossless(placement, seed=0):
    return build_network(placement, NetworkConfig(loss_probability=0.0, seed=seed))


class TestGossip:
    def test_detects_crash(self, rng):
        placement = cluster_disk_placement(12, 100.0, rng)
        network = lossless(placement)
        deployment = install_gossip(
            network, GossipConfig(interval=1.0, fail_after=4.0), until=30.0
        )
        network.sim.run_until(5.0)
        network.crash(4)
        deployment.run_until(30.0)
        report = evaluate_histories(network, deployment.histories())
        assert report.completeness[4] == 1.0
        assert report.is_accurate

    def test_quiet_run_accurate(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        network = lossless(placement)
        deployment = install_gossip(network, until=15.0)
        deployment.run_until(15.0)
        report = evaluate_histories(network, deployment.histories())
        assert report.is_accurate

    def test_counter_refutes_false_suspicion(self, rng):
        # Under heavy loss a node can be falsely suspected; a later
        # counter increase must clear it.
        placement = cluster_disk_placement(8, 100.0, rng)
        network = build_network(
            placement, NetworkConfig(loss_probability=0.6, seed=13)
        )
        deployment = install_gossip(
            network, GossipConfig(interval=1.0, fail_after=3.0), until=60.0
        )
        deployment.run_until(60.0)
        refutations = sum(
            p.history.refuted_total for p in deployment.protocols.values()
        )
        assert refutations >= 0  # bookkeeping exists; exact count is noisy

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GossipConfig(interval=2.0, fail_after=1.0)


class TestSwim:
    def test_detects_crash_single_cluster(self, rng):
        placement = cluster_disk_placement(12, 100.0, rng)
        network = lossless(placement)
        deployment = install_swim(
            network, SwimConfig(period=1.0, ack_timeout=0.2), until=60.0
        )
        network.sim.run_until(3.0)
        network.crash(5)
        deployment.run_until(60.0)
        report = evaluate_histories(network, deployment.histories())
        assert report.completeness[5] > 0.9

    def test_global_membership_false_suspects_far_nodes(self, rng):
        # SWIM's wired assumption breaks on a multi-hop field: nodes probe
        # members out of radio range and declare them failed.
        placement = multi_cluster_field(3, 10, 100.0, rng)
        network = lossless(placement)
        deployment = install_swim(
            network, SwimConfig(period=1.0, ack_timeout=0.2), until=25.0
        )
        deployment.run_until(25.0)
        report = evaluate_histories(network, deployment.histories())
        assert not report.is_accurate

    def test_neighbor_scope_fixes_accuracy(self, rng):
        placement = multi_cluster_field(3, 10, 100.0, rng)
        network = lossless(placement)
        deployment = install_swim(
            network,
            SwimConfig(period=1.0, ack_timeout=0.2),
            until=25.0,
            membership_scope="neighbors",
        )
        deployment.run_until(25.0)
        report = evaluate_histories(network, deployment.histories())
        assert report.is_accurate

    def test_bad_scope_rejected(self, rng):
        placement = cluster_disk_placement(5, 100.0, rng)
        network = lossless(placement)
        with pytest.raises(ConfigurationError):
            install_swim(network, membership_scope="everything")

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SwimConfig(period=0.3, ack_timeout=0.2)


class TestFlooding:
    def test_detects_and_floods(self, rng):
        placement = multi_cluster_field(3, 12, 100.0, rng)
        network = lossless(placement)
        deployment = install_flooding(
            network, FloodingConfig(interval=1.0, miss_threshold=3), until=30.0
        )
        network.sim.run_until(5.0)
        victim = sorted(network.operational_ids())[7]
        network.crash(victim)
        deployment.run_until(30.0)
        report = evaluate_histories(network, deployment.histories())
        assert report.completeness[victim] == 1.0

    def test_message_cost_exceeds_fds_style(self, rng):
        # Flooding relays every announcement everywhere: total messages
        # grow with the whole field per failure.
        placement = multi_cluster_field(3, 12, 100.0, rng)
        network = lossless(placement)
        deployment = install_flooding(network, until=20.0)
        network.sim.run_until(5.0)
        network.crash(10)
        deployment.run_until(20.0)
        announcements = sum(
            p.announcements_sent for p in deployment.protocols.values()
        )
        assert announcements >= len(network.nodes) * 0.8

    def test_self_announcement_ignored(self, rng):
        # A false announcement naming an alive node must not convince it.
        placement = cluster_disk_placement(8, 100.0, rng)
        network = build_network(
            placement, NetworkConfig(loss_probability=0.5, seed=21)
        )
        deployment = install_flooding(
            network, FloodingConfig(interval=1.0, miss_threshold=2), until=40.0
        )
        deployment.run_until(40.0)
        for nid, protocol in deployment.protocols.items():
            assert nid not in protocol.history


class TestCentralized:
    def test_detects_in_range_crash(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        network = lossless(placement)
        deployment = install_centralized(
            network, station=0,
            config=CentralizedConfig(interval=1.0, miss_threshold=3),
            until=20.0,
        )
        network.sim.run_until(5.0)
        network.crash(4)
        deployment.run_until(20.0)
        assert 4 in deployment.station_history()

    def test_coverage_wall(self, rng):
        # On a multi-cluster field most nodes are invisible to the station.
        placement = multi_cluster_field(4, 15, 100.0, rng)
        network = lossless(placement)
        deployment = install_centralized(network, station=0, until=5.0)
        assert deployment.coverage() < 0.6

    def test_unknown_station_rejected(self, rng):
        placement = cluster_disk_placement(5, 100.0, rng)
        network = lossless(placement)
        with pytest.raises(ConfigurationError):
            install_centralized(network, station=999)
