"""Tests that each ablation shows the effect it exists to show.

These run the real protocol with reduced sizes; thresholds are generous so
the tests assert *direction*, not magnitude.
"""

import pytest

from repro.experiments.ablations import (
    ablation_bgw_count,
    ablation_dch,
    ablation_digest,
    ablation_implicit_ack,
    ablation_peer_forwarding,
)


class TestDigestAblation:
    def test_digests_reduce_false_detections(self):
        result = ablation_digest(n=30, p=0.3, executions=25, seed=1)
        with_rate = result.metric("with-digests", "rate_per_member_execution")
        without_rate = result.metric(
            "without-digests", "rate_per_member_execution"
        )
        # Without R-2 the rate is ~p (heartbeat-only timeout); with R-2 it
        # collapses by orders of magnitude.
        assert without_rate > 0.15
        assert with_rate < without_rate / 10


class TestPeerForwardingAblation:
    def test_peer_forwarding_reduces_missed_updates(self):
        result = ablation_peer_forwarding(n=30, p=0.3, executions=25, seed=1)
        with_rate = result.metric(
            "with-peer-forwarding", "rate_per_member_execution"
        )
        without_rate = result.metric(
            "without-peer-forwarding", "rate_per_member_execution"
        )
        # Without forwarding a member misses the update w.p. ~p.
        assert 0.15 < without_rate < 0.45
        assert with_rate < without_rate / 5


class TestDchAblation:
    def test_dch_keeps_cluster_alive(self):
        result = ablation_dch(n=25, p=0.1, executions=6, seed=3)
        assert result.metric("with-dch", "aware_of_ch_failure") > 0.9
        assert result.metric("with-dch", "served_in_last_execution") > 0.9
        assert result.metric("without-dch", "aware_of_ch_failure") == 0.0
        assert result.metric("without-dch", "served_in_last_execution") == 0.0


class TestBoundaryAblations:
    def test_bgw_backups_improve_crossing(self):
        result = ablation_bgw_count(p=0.45, trials=6, seed=2)
        none = result.metric("backups=0", "mean_cross_boundary_knowledge")
        two = result.metric("backups=2", "mean_cross_boundary_knowledge")
        assert two >= none
        # More forwarders also means more transmissions when losses bite.
        assert result.metric("backups=2", "mean_reports_sent") >= result.metric(
            "backups=0", "mean_reports_sent"
        )

    def test_implicit_ack_improves_crossing(self):
        result = ablation_implicit_ack(p=0.45, trials=6, seed=2)
        with_ack = result.metric(
            "with-implicit-ack", "mean_cross_boundary_knowledge"
        )
        without_ack = result.metric(
            "without-implicit-ack", "mean_cross_boundary_knowledge"
        )
        assert with_ack >= without_ack
