"""Edge cases of the operations health monitor.

The main suite (test_ops_monitor.py) covers the steady-state contract;
these tests pin down the corners: a crashed vantage node, a capacity
threshold set exactly at the deployed count, and the zero-deployment
division guard.
"""

from repro.failure.injection import FailureInjector
from repro.ops.monitor import HealthMonitor, HealthSnapshot
from repro.topology.placement import cluster_disk_placement
from repro.types import NodeId

from tests.fds_helpers import deploy


class TestHealthMonitorEdges:
    def _world(self, rng):
        placement = cluster_disk_placement(15, 100.0, rng)
        deployment, _layout, _tracer, network = deploy(placement)
        return deployment, network

    def test_poll_survives_crashed_vantage(self, rng):
        # The monitor is a consumer of the vantage's FDS state; that
        # state outlives the node, so polling after the vantage itself
        # fail-stopped must still work -- and a node never believes in
        # its own failure, so it stays out of believed_failed.
        deployment, network = self._world(rng)
        injector = FailureInjector(network, deployment.config)
        injector.crash_before_execution(NodeId(3), execution=1)
        monitor = HealthMonitor(deployment, vantage=3, capacity_threshold=14)
        deployment.run_executions(3)
        snapshot = monitor.poll()
        assert NodeId(3) not in snapshot.believed_failed
        # The dead vantage's view is frozen at its crash: it believes
        # everyone (including itself) operational.
        assert snapshot.believed_operational == 16
        assert monitor.accuracy_against_truth() == 1.0

    def test_threshold_equal_to_deployed_count(self, rng):
        # Exactly-at-threshold is healthy (the advisory condition is
        # strictly below); one believed failure then trips it and asks
        # for exactly one replacement.
        deployment, network = self._world(rng)
        injector = FailureInjector(network, deployment.config)
        monitor = HealthMonitor(deployment, vantage=0, capacity_threshold=16)
        deployment.run_executions(1)
        monitor.poll()
        assert monitor.advisories == []
        injector.crash_before_execution(NodeId(5), execution=2)
        deployment.run_executions(3)
        snapshot = monitor.poll()
        assert snapshot.believed_operational == 15
        assert len(monitor.advisories) == 1
        assert monitor.advisories[0].replacements_needed == 1

    def test_zero_deployment_guard(self):
        # A snapshot over an empty deployment must not divide by zero.
        snapshot = HealthSnapshot(
            time=0.0, vantage=NodeId(0), deployed=0,
            believed_failed=frozenset(),
        )
        assert snapshot.believed_loss_fraction == 0.0
        assert snapshot.believed_operational == 0

    def test_loss_fraction_counts_believed_not_truth(self, rng):
        # The fraction is over *beliefs*: three detected crashes out of
        # sixteen deployed, regardless of when ground truth happened.
        deployment, network = self._world(rng)
        injector = FailureInjector(network, deployment.config)
        for i, victim in enumerate((3, 5, 7)):
            injector.crash_before_execution(NodeId(victim), execution=i + 1)
        monitor = HealthMonitor(deployment, vantage=0, capacity_threshold=10)
        deployment.run_executions(4)
        snapshot = monitor.poll()
        assert snapshot.believed_loss_fraction == 3 / 16
        assert monitor.advisories == []
