"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.false_detection import (
    p_false_detection,
    p_false_detection_literal,
)
from repro.analysis.incompleteness import (
    p_incompleteness,
    p_incompleteness_literal,
)
from repro.cluster.geometric import lowest_id_partition
from repro.fds.detector import DetectionInputs, apply_failure_rule
from repro.fds.digest import build_digest
from repro.fds.reports import BoundaryLedger, ReportHistory
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue
from repro.topology.graph import UnitDiskGraph
from repro.util.geometry import Vec2, lens_area
from repro.util.logmath import log_binomial, log_binomial_pmf, logsumexp
from repro.util.rng import derive_seed
from repro.util.tables import render_table


# ----------------------------------------------------------------------
# Event queue / engine ordering
# ----------------------------------------------------------------------

event_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.integers(min_value=-3, max_value=3),
    ),
    min_size=1,
    max_size=60,
)


@given(event_specs)
def test_event_queue_pops_in_total_order(specs):
    q = EventQueue()
    for i, (time, priority) in enumerate(specs):
        q.push(time, lambda: None, priority=priority)
    popped = []
    while q:
        e = q.pop()
        popped.append((e.time, e.priority, e.sequence))
    assert popped == sorted(popped)


@given(event_specs, st.sets(st.integers(min_value=0, max_value=59)))
def test_event_queue_cancellation_removes_exactly_those(specs, to_cancel):
    q = EventQueue()
    events = [q.push(t, lambda: None, priority=p) for t, p in specs]
    cancelled = set()
    for index in to_cancel:
        if index < len(events):
            q.cancel(events[index])
            cancelled.add(events[index].sequence)
    survivors = []
    while q:
        survivors.append(q.pop().sequence)
    ordered = sorted(events, key=lambda e: (e.time, e.priority, e.sequence))
    expected = [e.sequence for e in ordered if e.sequence not in cancelled]
    assert survivors == expected


@given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                min_size=1, max_size=40))
def test_simulator_clock_never_goes_backwards(times):
    sim = Simulator()
    observed = []
    for t in times:
        sim.schedule_at(t, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(times)


# ----------------------------------------------------------------------
# Geometry
# ----------------------------------------------------------------------


@given(
    st.floats(min_value=1.0, max_value=1e4),
    st.floats(min_value=0.0, max_value=2.0),
)
def test_lens_area_bounds(radius, k):
    distance = k * radius
    area = lens_area(radius, distance)
    assert 0.0 <= area <= math.pi * radius * radius + 1e-6


@given(
    st.floats(min_value=1.0, max_value=1e3),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_lens_area_monotone(radius, k1, k2):
    d1, d2 = sorted((k1 * 2 * radius, k2 * 2 * radius))
    assert lens_area(radius, d1) >= lens_area(radius, d2) - 1e-9


# ----------------------------------------------------------------------
# Log-domain math
# ----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=300), st.integers(min_value=0, max_value=300))
def test_log_binomial_symmetry(n, k):
    assume(k <= n)
    assert math.isclose(
        log_binomial(n, k), log_binomial(n, n - k), rel_tol=1e-12, abs_tol=1e-9
    )


@given(
    st.integers(min_value=1, max_value=200),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_binomial_pmf_normalizes(n, p):
    total = logsumexp(log_binomial_pmf(k, n, p) for k in range(n + 1))
    assert math.isclose(total, 0.0, abs_tol=1e-9)


@given(st.lists(st.floats(min_value=-700, max_value=0), min_size=1, max_size=50))
def test_logsumexp_upper_and_lower_bounds(values):
    result = logsumexp(values)
    assert result >= max(values) - 1e-12
    assert result <= max(values) + math.log(len(values)) + 1e-12


# ----------------------------------------------------------------------
# Analysis measures
# ----------------------------------------------------------------------

measure_params = st.tuples(
    st.integers(min_value=2, max_value=120),
    st.floats(min_value=0.0, max_value=1.0),
)


@given(measure_params)
def test_false_detection_is_probability_and_matches_literal(params):
    n, p = params
    closed = p_false_detection(n, p)
    assert 0.0 <= closed <= 1.0
    literal = p_false_detection_literal(n, p)
    assert math.isclose(literal, closed, rel_tol=1e-8, abs_tol=1e-300)


@given(measure_params)
def test_incompleteness_is_probability_and_bounded_by_p(params):
    n, p = params
    value = p_incompleteness(n, p)
    assert 0.0 <= value <= p + 1e-12
    literal = p_incompleteness_literal(n, p)
    assert math.isclose(literal, value, rel_tol=1e-8, abs_tol=1e-300)


# ----------------------------------------------------------------------
# Detection rule
# ----------------------------------------------------------------------

node_ids = st.integers(min_value=0, max_value=40)


@given(
    st.sets(node_ids, max_size=20),
    st.sets(node_ids, max_size=20),
    st.dictionaries(node_ids, st.frozensets(node_ids, max_size=10), max_size=10),
)
def test_failure_rule_detects_exactly_the_unevidenced(expected, heartbeats, digests):
    inputs = DetectionInputs(
        heartbeats=frozenset(heartbeats), digests=digests
    )
    detected = apply_failure_rule(expected, inputs)
    for v in expected:
        has_evidence = (
            v in heartbeats
            or v in digests
            or any(v in heard for heard in digests.values())
        )
        assert (v not in detected) == has_evidence
    assert detected <= frozenset(expected)


@given(
    st.sets(node_ids, max_size=20),
    st.sets(node_ids, max_size=20),
    st.sets(node_ids, max_size=20),
)
def test_digest_filter_properties(heard, members, extra):
    sender = 99
    digest = build_digest(sender, 0, heard | extra, members)
    assert digest.heard <= frozenset(members)
    assert sender not in digest.heard


# ----------------------------------------------------------------------
# Report bookkeeping
# ----------------------------------------------------------------------


@given(st.lists(st.frozensets(node_ids, max_size=8), max_size=15))
def test_report_history_add_is_monotone_and_exact(batches):
    history = ReportHistory()
    seen = set()
    for batch in batches:
        novel = history.add(batch)
        assert novel == frozenset(batch) - frozenset(seen)
        seen |= set(batch)
        assert history.known == frozenset(seen)


@given(
    st.lists(
        st.tuples(node_ids, st.frozensets(node_ids, min_size=1, max_size=5)),
        max_size=15,
    )
)
def test_boundary_ledger_pending_is_acked_complement(operations):
    ledger = BoundaryLedger()
    acked = {}
    for peer, failures in operations:
        ledger.note_ack(peer, failures)
        acked.setdefault(peer, set()).update(failures)
    for peer, known in acked.items():
        probe = frozenset(range(0, 41))
        assert ledger.pending(peer, probe) == probe - frozenset(known)


# ----------------------------------------------------------------------
# Clustering invariants
# ----------------------------------------------------------------------

positions_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=500.0),
    ),
    min_size=1,
    max_size=40,
)


@settings(deadline=None)
@given(positions_strategy)
def test_lowest_id_partition_invariants(points):
    graph = UnitDiskGraph(
        {i: Vec2(x, y) for i, (x, y) in enumerate(points)}, 100.0
    )
    partition = lowest_id_partition(graph)
    all_members = [m for members in partition.values() for m in members]
    # Exactly-one-cluster membership (feature F3 at the partition level).
    assert len(all_members) == len(set(all_members))
    for head, members in partition.items():
        assert head in members
        for member in members:
            if member != head:
                assert graph.are_neighbors(head, member)
        # The head has the lowest NID in its cluster.
        assert head == min(members)
    # Heads are never adjacent.
    heads = sorted(partition)
    for i, a in enumerate(heads):
        for b in heads[i + 1:]:
            assert not graph.are_neighbors(a, b)
    # Coverage: every non-isolated node is clustered.
    isolated = {nid for nid in graph.nodes() if graph.degree(nid) == 0}
    assert set(all_members) == set(graph.nodes()) - isolated


# ----------------------------------------------------------------------
# Misc utilities
# ----------------------------------------------------------------------


@given(st.integers(), st.lists(st.text(max_size=10), max_size=5))
def test_derive_seed_is_stable_and_in_range(root, names):
    seed = derive_seed(root, *names)
    assert 0 <= seed < 2**64
    assert seed == derive_seed(root, *names)


@given(
    st.lists(
        st.lists(
            st.one_of(
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs", "Cc", "Zl", "Zp")
                    ),
                    max_size=8,
                ),
                st.integers(min_value=-10**9, max_value=10**9),
            ),
            min_size=2,
            max_size=2,
        ),
        min_size=1,
        max_size=10,
    )
)
def test_render_table_never_crashes_and_aligns(rows):
    text = render_table(["a", "b"], rows)
    lines = text.splitlines()
    assert len(lines) == len(rows) + 2
    widths = {len(line.rstrip()) <= len(lines[0]) + 200 for line in lines}
    assert widths  # smoke: all lines rendered
