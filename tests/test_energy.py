"""Tests for the energy model and waiting-period policy."""

import pytest

from repro.energy.model import EnergyConfig, EnergyModel
from repro.energy.policy import WaitingPeriodPolicy
from repro.errors import ConfigurationError


class TestEnergyModel:
    def test_registration_and_duplicate(self):
        model = EnergyModel()
        model.register(1, now=0.0)
        with pytest.raises(ConfigurationError):
            model.register(1, now=0.0)
        with pytest.raises(ConfigurationError):
            model.remaining_fraction(2, now=0.0)

    def test_tx_rx_costs(self):
        config = EnergyConfig(capacity=100.0, tx_cost=2.0, rx_cost=0.5,
                              harvest_rate=0.0)
        model = EnergyModel(config)
        model.register(1, now=0.0)
        model.on_transmit(1, now=0.0)
        model.on_receive(1, now=0.0)
        assert model.remaining_fraction(1, now=0.0) == pytest.approx(0.975)

    def test_harvest_restores_capped(self):
        config = EnergyConfig(capacity=100.0, tx_cost=10.0, harvest_rate=1.0)
        model = EnergyModel(config)
        model.register(1, now=0.0)
        model.on_transmit(1, now=0.0)  # 90 left
        assert model.remaining_fraction(1, now=5.0) == pytest.approx(0.95)
        assert model.remaining_fraction(1, now=500.0) == 1.0  # capped

    def test_level_floor_at_zero(self):
        config = EnergyConfig(capacity=1.0, tx_cost=10.0, harvest_rate=0.0)
        model = EnergyModel(config)
        model.register(1, now=0.0)
        model.on_transmit(1, now=0.0)
        assert model.remaining_fraction(1, now=0.0) == 0.0

    def test_initial_level_validation(self):
        model = EnergyModel(EnergyConfig(capacity=100.0))
        with pytest.raises(ConfigurationError):
            model.register(1, now=0.0, level=150.0)

    def test_totals_and_spread(self):
        config = EnergyConfig(capacity=100.0, tx_cost=5.0, harvest_rate=0.0)
        model = EnergyModel(config)
        model.register(1, now=0.0)
        model.register(2, now=0.0)
        model.on_transmit(1, now=0.0)
        totals = model.totals()
        assert totals["tx_total"] == 1.0
        assert model.spread() == pytest.approx(5.0)

    def test_empty_model_stats(self):
        model = EnergyModel()
        assert model.spread() == 0.0
        assert model.totals()["mean_level"] == 0.0


class TestWaitingPeriodPolicy:
    def test_unique_per_nid(self):
        policy = WaitingPeriodPolicy(slot=0.01, modulus=128)
        waits = {policy.waiting_period(nid, 1.0) for nid in range(100)}
        assert len(waits) == 100

    def test_inverse_in_energy(self):
        policy = WaitingPeriodPolicy(slot=0.01)
        full = policy.waiting_period(5, 1.0)
        half = policy.waiting_period(5, 0.5)
        assert half == pytest.approx(2 * full)

    def test_energy_floor_bounds_delay(self):
        policy = WaitingPeriodPolicy(slot=0.01, energy_floor=0.1)
        drained = policy.waiting_period(5, 0.0)
        assert drained == pytest.approx(policy.waiting_period(5, 0.1))

    def test_max_period(self):
        policy = WaitingPeriodPolicy(slot=0.01, modulus=64, energy_floor=0.1)
        for nid in range(200):
            assert policy.waiting_period(nid, 0.0) <= policy.max_period()

    def test_validation(self):
        with pytest.raises(ValueError):
            WaitingPeriodPolicy(modulus=1)
        with pytest.raises(ValueError):
            WaitingPeriodPolicy(energy_floor=0.0)
