"""Tests for repro.util.validation."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.util.validation import (
    check_int_at_least,
    check_non_negative,
    check_positive,
    check_probability,
    check_range,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan"), "x", True])
    def test_rejects_invalid(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive("x", 0.001) == 0.001

    @pytest.mark.parametrize("value", [0, -1, math.inf, math.nan, "a", False])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    @pytest.mark.parametrize("value", [-0.1, math.inf, True])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", value)


class TestCheckRange:
    def test_inclusive_bounds(self):
        assert check_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError):
            check_range("x", 2.1, 1.0, 2.0)

    def test_error_message_names_argument(self):
        with pytest.raises(ConfigurationError, match="myarg"):
            check_range("myarg", 5.0, 0.0, 1.0)


class TestCheckIntAtLeast:
    def test_accepts(self):
        assert check_int_at_least("n", 3, 3) == 3

    @pytest.mark.parametrize("value", [2, 2.5, True])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_int_at_least("n", value, 3)
