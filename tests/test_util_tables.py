"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import render_series_table, render_table


class TestRenderTable:
    def test_alignment_and_headers(self):
        text = render_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [[1]], title="hello")
        assert text.splitlines()[0] == "hello"

    def test_tiny_floats_use_scientific(self):
        text = render_table(["v"], [[1.3e-120]])
        assert "e-120" in text

    def test_zero_renders_plainly(self):
        assert "0" in render_table(["v"], [[0.0]])

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_bool_cells(self):
        text = render_table(["ok"], [[True], [False]])
        assert "True" in text and "False" in text


class TestRenderSeriesTable:
    def test_shape(self):
        text = render_series_table(
            "p", [0.1, 0.2], {"N=50": [1.0, 2.0], "N=100": [3.0, 4.0]}
        )
        lines = text.splitlines()
        assert lines[0].split() == ["p", "N=50", "N=100"]
        assert len(lines) == 4

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_series_table("p", [0.1, 0.2], {"N=50": [1.0]})
