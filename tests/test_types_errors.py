"""Tests for the shared types and the exception hierarchy."""

import pytest

from repro import errors
from repro.types import NodeRole, NodeStatus


class TestNodeRole:
    def test_marked_semantics(self):
        assert NodeRole.CH.is_marked
        assert NodeRole.OM.is_marked
        assert not NodeRole.UNMARKED.is_marked

    def test_backbone_participation(self):
        # Figure 1(b): the upper communication tier.
        assert NodeRole.CH.participates_in_backbone
        assert NodeRole.GW.participates_in_backbone
        assert NodeRole.BGW.participates_in_backbone
        assert NodeRole.DCH.participates_in_backbone
        assert not NodeRole.OM.participates_in_backbone
        assert not NodeRole.UNMARKED.participates_in_backbone


class TestNodeStatus:
    def test_operational(self):
        assert NodeStatus.ALIVE.is_operational
        assert not NodeStatus.CRASHED.is_operational


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.SimulationError,
            errors.SchedulingError,
            errors.MediumError,
            errors.NodeStateError,
            errors.TopologyError,
            errors.ClusteringError,
            errors.ProtocolError,
            errors.AnalysisError,
            errors.ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_scheduling_is_simulation_error(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)

    def test_catchable_as_one(self):
        with pytest.raises(errors.ReproError):
            raise errors.ClusteringError("boom")
