"""Tests for tracing."""

from repro.sim.trace import (
    CallbackTracer,
    NullTracer,
    RecordingTracer,
    TraceRecord,
)


class TestRecordingTracer:
    def test_record_and_filter(self):
        tracer = RecordingTracer()
        tracer.record(1.0, "radio.tx", node=1)
        tracer.record(2.0, "radio.rx", node=2)
        tracer.record(3.0, "fds.detection", node=3, target=9)
        assert len(tracer) == 3
        assert tracer.count("radio") == 2
        assert tracer.count("radio.tx") == 1
        assert [r.time for r in tracer.filter("fds")] == [3.0]

    def test_prefix_matching_is_segment_aware(self):
        tracer = RecordingTracer()
        tracer.record(1.0, "radio.tx")
        tracer.record(1.0, "radiology")
        assert tracer.count("radio") == 1

    def test_detail_payload(self):
        tracer = RecordingTracer()
        tracer.record(1.0, "fds.detection", node=1, target=5, execution=2)
        record = tracer.records[0]
        assert record.detail["target"] == 5
        assert record.detail["execution"] == 2

    def test_kinds_histogram(self):
        tracer = RecordingTracer()
        for _ in range(3):
            tracer.record(0.0, "a")
        tracer.record(0.0, "b")
        assert tracer.kinds() == {"a": 3, "b": 1}

    def test_clear(self):
        tracer = RecordingTracer()
        tracer.record(0.0, "a")
        tracer.clear()
        assert len(tracer) == 0

    def test_iter_kind(self):
        tracer = RecordingTracer()
        tracer.record(0.0, "x.y")
        tracer.record(0.0, "x.z")
        assert len(list(tracer.iter_kind("x"))) == 2


def test_records_to_jsonl_roundtrip():
    import json

    from repro.sim.trace import records_to_jsonl

    tracer = RecordingTracer()
    tracer.record(1.5, "fds.detection", node=3, target=9, execution=2)
    tracer.record(2.0, "radio.tx", node=1)
    text = records_to_jsonl(tracer.records)
    lines = [json.loads(line) for line in text.splitlines()]
    assert lines[0] == {
        "time": 1.5, "kind": "fds.detection", "node": 3,
        "target": 9, "execution": 2,
    }
    assert lines[1]["kind"] == "radio.tx"


def test_null_tracer_discards():
    tracer = NullTracer()
    tracer.record(0.0, "anything")  # must not raise or store


def test_callback_tracer_streams():
    seen = []
    tracer = CallbackTracer(seen.append)
    tracer.record(1.0, "k", node=2)
    assert seen == [TraceRecord(time=1.0, kind="k", node=2, detail={})]
