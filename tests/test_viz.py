"""Tests for the ASCII field map."""

import pytest

from repro.cluster.geometric import build_clusters
from repro.errors import ConfigurationError
from repro.topology.generators import corridor_field
from repro.topology.graph import UnitDiskGraph
from repro.util.geometry import Vec2
from repro.viz.ascii_map import render_field_map


class TestFieldMap:
    def test_dimensions_and_legend(self, rng):
        positions = corridor_field(2, 15, 100.0, rng)
        text = render_field_map(positions, width=40, height=10)
        lines = text.splitlines()
        assert len(lines) == 11
        assert all(len(line) == 40 for line in lines[:-1])
        assert lines[-1].startswith("legend:")

    def test_roles_rendered(self, rng):
        positions = corridor_field(2, 20, 100.0, rng)
        layout = build_clusters(UnitDiskGraph(positions, 100.0))
        text = render_field_map(positions, layout=layout)
        assert "H" in text       # heads visible
        assert "o" in text

    def test_crashed_marker_wins(self):
        positions = {0: Vec2(0, 0), 1: Vec2(100, 100)}
        text = render_field_map(positions, crashed={0}, width=10, height=5)
        assert "x" in text

    def test_single_point_field(self):
        text = render_field_map({0: Vec2(5, 5)}, width=10, height=5)
        grid = "".join(text.splitlines()[:-1])  # drop the legend line
        assert grid.count("o") == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            render_field_map({})
        with pytest.raises(ConfigurationError):
            render_field_map({0: Vec2(0, 0)}, width=2, height=2)

    def test_prominence_in_shared_cell(self):
        # A head and a member in the same tiny cell: head wins.
        positions = {0: Vec2(0, 0), 1: Vec2(0.1, 0.1), 9: Vec2(100, 100)}
        from repro.cluster.state import Cluster, ClusterLayout

        layout = ClusterLayout(
            [Cluster(head=0, members=frozenset({0, 1}))], unclustered=[9]
        )
        text = render_field_map(positions, layout=layout, width=10, height=5)
        assert "H" in text
        assert "?" in text
