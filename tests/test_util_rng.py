"""Tests for repro.util.rng."""

from repro.util.rng import RngFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_structure_matters(self):
        # ("ab",) and ("a", "b") must differ (separator in the hash).
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_accepts_non_string_names(self):
        assert derive_seed(0, 1, 2.5) == derive_seed(0, "1", "2.5")


class TestRngFactory:
    def test_same_path_same_stream(self):
        factory = RngFactory(7)
        a = factory.stream("x").random(10)
        b = factory.stream("x").random(10)
        assert (a == b).all()

    def test_different_paths_independent(self):
        factory = RngFactory(7)
        a = factory.stream("x").random(10)
        b = factory.stream("y").random(10)
        assert not (a == b).all()

    def test_adding_consumers_does_not_perturb_existing(self):
        # The draws of stream "x" must not depend on whether "y" exists.
        only_x = RngFactory(9).stream("x").random(5)
        factory = RngFactory(9)
        factory.stream("y").random(100)
        assert (factory.stream("x").random(5) == only_x).all()

    def test_child_namespacing(self):
        factory = RngFactory(7)
        child = factory.child("sub")
        a = child.stream("x").random(5)
        b = factory.child("sub").stream("x").random(5)
        assert (a == b).all()
        assert not (a == factory.stream("x").random(5)).all()

    def test_seed_property_and_repr(self):
        factory = RngFactory(123)
        assert factory.seed == 123
        assert "123" in repr(factory)
