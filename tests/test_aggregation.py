"""Tests for cluster-based in-network aggregation (Section 6 extension)."""

import math
import statistics

import pytest

from repro.aggregation.combiners import Aggregate, AggregateKind
from repro.aggregation.service import AggregationConfig, attach_aggregation
from repro.errors import ConfigurationError
from repro.failure.injection import FailureInjector
from repro.topology.generators import corridor_field
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import deploy


class TestAggregate:
    def test_single_and_result(self):
        a = Aggregate.single(AggregateKind.AVG, 1, 10.0)
        assert a.result() == 10.0
        assert a.contributors == frozenset({1})

    def test_merge_is_idempotent(self):
        a = Aggregate.single(AggregateKind.SUM, 1, 10.0)
        b = Aggregate.single(AggregateKind.SUM, 2, 5.0)
        merged = a.merge(b).merge(b).merge(a)
        assert merged.result() == 15.0
        assert merged.contributors == frozenset({1, 2})

    def test_merge_commutative_associative(self):
        parts = [
            Aggregate.single(AggregateKind.MAX, i, float(i * 3)) for i in range(5)
        ]
        left = parts[0]
        for p in parts[1:]:
            left = left.merge(p)
        right = parts[4]
        for p in reversed(parts[:4]):
            right = p.merge(right)
        assert left.values == right.values
        assert left.result() == 12.0

    @pytest.mark.parametrize(
        "kind,expected",
        [
            (AggregateKind.MIN, 1.0),
            (AggregateKind.MAX, 4.0),
            (AggregateKind.SUM, 10.0),
            (AggregateKind.COUNT, 4.0),
            (AggregateKind.AVG, 2.5),
        ],
    )
    def test_all_kinds(self, kind, expected):
        agg = Aggregate(kind=kind, values={1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0})
        assert agg.result() == pytest.approx(expected)

    def test_without_drops_contributors(self):
        agg = Aggregate(AggregateKind.SUM, {1: 1.0, 2: 2.0, 3: 3.0})
        reduced = agg.without(frozenset({2}))
        assert reduced.result() == 4.0

    def test_empty_results(self):
        assert Aggregate.empty(AggregateKind.SUM).result() == 0.0
        assert Aggregate.empty(AggregateKind.COUNT).result() == 0.0
        assert math.isnan(Aggregate.empty(AggregateKind.AVG).result())

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Aggregate.empty(AggregateKind.MIN).merge(
                Aggregate.empty(AggregateKind.MAX)
            )


class TestAggregationService:
    @staticmethod
    def _backbone_component(layout, head):
        """Heads reachable from ``head`` over boundaries (undirected)."""
        component = {head}
        frontier = [head]
        while frontier:
            current = frontier.pop()
            for owner, peer in layout.boundaries:
                for a, b in ((owner, peer), (peer, owner)):
                    if a == current and b not in component:
                        component.add(b)
                        frontier.append(b)
        return component

    def _run(self, rng, executions=5, crash=None, p=0.05):
        placement = corridor_field(3, 20, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement, p=p, seed=3)
        values = {int(n): 10.0 + (int(n) % 5) for n in network.nodes}
        services = attach_aggregation(
            deployment, lambda nid, k: values[int(nid)],
            AggregationConfig(kind=AggregateKind.AVG),
        )
        if crash is not None:
            injector = FailureInjector(network, deployment.config)
            victim = sorted(
                layout.clusters[layout.heads[crash]].ordinary_members
            )[0]
            injector.crash_before_execution(victim, 1)
        deployment.run_executions(executions)
        return network, layout, services, values

    def _component_truth(self, network, layout, values, head):
        """Expected aggregate over the backbone component of ``head``.

        Clusters with no boundary to the component (e.g. loss-of-density
        singletons) cannot contribute -- the paper defers bridging them to
        an inter-cluster routing protocol.
        """
        component = self._backbone_component(layout, head)
        nodes = [
            n
            for h in component
            for n in layout.clusters[h].members
            if network.nodes[n].is_operational
        ]
        return statistics.mean(values[int(n)] for n in nodes), len(nodes)

    def test_heads_converge_to_component_average(self, rng):
        network, layout, services, values = self._run(rng)
        main = layout.heads[0]
        truth, count = self._component_truth(network, layout, values, main)
        for head in self._backbone_component(layout, main):
            assert services[head].current_value() == pytest.approx(truth)
            assert services[head].contributor_count() == count

    def test_members_read_global_value(self, rng):
        network, layout, services, values = self._run(rng)
        truth, _count = self._component_truth(
            network, layout, values, layout.heads[0]
        )
        member = sorted(layout.clusters[layout.heads[0]].ordinary_members)[2]
        assert services[member].current_value() == pytest.approx(truth)

    def test_failed_node_excluded(self, rng):
        network, layout, services, values = self._run(rng, crash=1)
        crashed = network.crashed_ids()[0]
        main = layout.heads[0]
        truth, _count = self._component_truth(network, layout, values, main)
        for head in self._backbone_component(layout, main):
            agg = services[head].last_seen
            assert crashed not in agg.contributors
            assert agg.result() == pytest.approx(truth)

    def test_message_sharing_cost_is_small(self, rng):
        network, _layout, services, _values = self._run(rng)
        extra = sum(s.shares_sent for s in services.values())
        # Boundary count * executions is the ceiling for extra messages;
        # far less than one message per node per execution.
        assert extra <= 4 * 5 * 2
