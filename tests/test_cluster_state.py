"""Tests for the cluster data model and its invariants."""

import pytest

from repro.cluster.state import Boundary, Cluster, ClusterLayout
from repro.errors import ClusteringError
from repro.topology.graph import UnitDiskGraph
from repro.types import NodeRole
from repro.util.geometry import Vec2


def simple_layout():
    c1 = Cluster(head=0, members=frozenset({0, 1, 2, 3}), deputies=(1, 2))
    c2 = Cluster(head=10, members=frozenset({10, 11, 12}), deputies=(11,))
    boundary = Boundary(owner=0, peer=10, gateway=3, backups=(2,))
    return ClusterLayout([c1, c2], [boundary])


class TestCluster:
    def test_head_must_be_member(self):
        with pytest.raises(ClusteringError):
            Cluster(head=0, members=frozenset({1, 2}))

    def test_deputies_must_be_non_head_members(self):
        with pytest.raises(ClusteringError):
            Cluster(head=0, members=frozenset({0, 1}), deputies=(0,))
        with pytest.raises(ClusteringError):
            Cluster(head=0, members=frozenset({0, 1}), deputies=(9,))

    def test_duplicate_deputies_rejected(self):
        with pytest.raises(ClusteringError):
            Cluster(head=0, members=frozenset({0, 1, 2}), deputies=(1, 1))

    def test_derived_properties(self):
        c = Cluster(head=0, members=frozenset({0, 1, 2}), deputies=(2,))
        assert c.size == 3
        assert c.ordinary_members == frozenset({1, 2})
        assert c.primary_deputy == 2
        assert Cluster(head=0, members=frozenset({0})).primary_deputy is None


class TestBoundary:
    def test_forwarder_order(self):
        b = Boundary(owner=0, peer=1, gateway=5, backups=(6, 7))
        assert b.all_forwarders == (5, 6, 7)
        assert b.backup_count == 2


class TestClusterLayout:
    def test_f3_single_affiliation_enforced(self):
        c1 = Cluster(head=0, members=frozenset({0, 1}))
        c2 = Cluster(head=2, members=frozenset({2, 1}))  # 1 in both
        with pytest.raises(ClusteringError, match="F3"):
            ClusterLayout([c1, c2])

    def test_duplicate_heads_rejected(self):
        c = Cluster(head=0, members=frozenset({0}))
        with pytest.raises(ClusteringError):
            ClusterLayout([c, c])

    def test_boundary_owner_must_be_head(self):
        c = Cluster(head=0, members=frozenset({0, 1}))
        b = Boundary(owner=5, peer=0, gateway=1)
        with pytest.raises(ClusteringError):
            ClusterLayout([c], [b])

    def test_boundary_forwarders_must_be_owner_members(self):
        c1 = Cluster(head=0, members=frozenset({0, 1}))
        c2 = Cluster(head=5, members=frozenset({5, 6}))
        bad = Boundary(owner=0, peer=5, gateway=6)  # 6 belongs to peer
        with pytest.raises(ClusteringError):
            ClusterLayout([c1, c2], [bad])

    def test_roles(self):
        layout = simple_layout()
        assert layout.role_of(0) is NodeRole.CH
        assert layout.role_of(3) is NodeRole.GW
        assert layout.role_of(2) is NodeRole.BGW  # deputy AND backup: GW wins
        assert layout.role_of(1) is NodeRole.DCH
        assert layout.role_of(12) is NodeRole.OM

    def test_unclustered_role(self):
        c = Cluster(head=0, members=frozenset({0}))
        layout = ClusterLayout([c], unclustered=[9])
        assert layout.role_of(9) is NodeRole.UNMARKED
        view = layout.local_view(9)
        assert view.role is NodeRole.UNMARKED and view.head == 9

    def test_local_view_member(self):
        layout = simple_layout()
        view = layout.local_view(3)
        assert view.head == 0
        assert view.gateway_duties == {10: (0, 1)}
        assert view.members == frozenset({0, 1, 2, 3})

    def test_local_view_backup(self):
        layout = simple_layout()
        view = layout.local_view(2)
        assert view.gateway_duties == {10: (1, 1)}

    def test_local_view_head_boundaries(self):
        layout = simple_layout()
        view = layout.local_view(0)
        assert view.head_boundaries == {10: 2}
        assert layout.local_view(10).head_boundaries == {}

    def test_cluster_of_and_errors(self):
        layout = simple_layout()
        assert layout.cluster_of(11).head == 10
        with pytest.raises(ClusteringError):
            layout.cluster_of(99)

    def test_graph_validation_rejects_out_of_range_member(self):
        positions = {0: Vec2(0, 0), 1: Vec2(500, 0)}
        graph = UnitDiskGraph(positions, 100.0)
        c = Cluster(head=0, members=frozenset({0, 1}))
        with pytest.raises(ClusteringError, match="unit disk"):
            ClusterLayout([c], graph=graph)

    def test_graph_validation_requires_full_coverage(self):
        positions = {0: Vec2(0, 0), 1: Vec2(50, 0)}
        graph = UnitDiskGraph(positions, 100.0)
        c = Cluster(head=0, members=frozenset({0}))
        with pytest.raises(ClusteringError, match="account"):
            ClusterLayout([c], graph=graph)

    def test_summary(self):
        summary = simple_layout().summary()
        assert summary["clusters"] == 2.0
        assert summary["boundaries"] == 1.0
        assert summary["mean_backups_per_boundary"] == 1.0

    def test_neighboring_heads(self):
        layout = simple_layout()
        assert layout.neighboring_heads(0) == (10,)
        assert layout.neighboring_heads(10) == ()
