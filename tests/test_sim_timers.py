"""Tests for restartable timers."""

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Simulator
from repro.sim.timers import Timer, TimerService


class TestTimer:
    def test_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run()
        assert fired == [2.0]
        assert timer.fired_count == 1
        assert not timer.armed

    def test_stop_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.start(2.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_restart_replaces_deadline(self):
        # The implicit-ack semantics: re-arming cancels the old deadline.
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        timer.start(5.0)
        sim.run()
        assert fired == [5.0]

    def test_deadline_property(self):
        sim = Simulator()
        timer = Timer(sim, lambda: None)
        assert timer.deadline is None
        timer.start(3.0)
        assert timer.deadline == 3.0

    def test_negative_delay_rejected(self):
        timer = Timer(Simulator(), lambda: None)
        with pytest.raises(SchedulingError):
            timer.start(-0.5)

    def test_restart_from_callback(self):
        sim = Simulator()
        fired = []

        def on_fire():
            fired.append(sim.now)
            if len(fired) < 3:
                timer.start(1.0)

        timer = Timer(sim, on_fire)
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]


class TestTimerService:
    def test_after_creates_and_starts(self):
        sim = Simulator()
        service = TimerService(sim)
        fired = []
        service.after(1.5, lambda: fired.append(1))
        assert service.armed_count == 1
        sim.run()
        assert fired == [1]
        assert service.armed_count == 0

    def test_stop_all_silences_everything(self):
        # Crash semantics: a fail-stopped node's timers must all die.
        sim = Simulator()
        service = TimerService(sim)
        fired = []
        for i in range(5):
            service.after(float(i + 1), lambda: fired.append(1))
        service.stop_all()
        sim.run()
        assert fired == []
