"""Tests for the observability subsystem (repro.obs).

Covers the metrics registry (handles, exposition), the phase profiler,
the disk-spooling tracer (filtering, ring tail, gzip round-trip), the
trace analyzers (summarize / timeline / lineage over a real scenario
spool), and the bounded RecordingTracer satellite.
"""

import gzip
import json
import math
import re

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.obs.analyze import lineage, summarize, timeline
from repro.obs.profiler import (
    NULL_PROFILER,
    PHASE_FDS_INTERCLUSTER,
    PHASE_FDS_R1,
    PHASE_RADIO_TRANSMIT,
    PHASE_SIM_HEAP,
    PhaseProfiler,
)
from repro.obs.registry import (
    PHI_LATENCY_BUCKETS,
    MetricsRegistry,
    scenario_metrics,
)
from repro.obs.spool import SpoolingTracer, iter_spool, read_spool
from repro.sim.trace import RecordingTracer, TraceRecord, iter_jsonl


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_and_gauge_handles(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_things_total", "things")
        c.inc()
        c.inc(2)
        assert reg.counter("repro_things_total").value == 3
        g = reg.gauge("repro_level")
        g.set(1.5)
        g.dec(0.5)
        assert g.value == 1.0

    def test_counter_cannot_decrease(self):
        c = MetricsRegistry().counter("repro_c_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_name_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("bad name")
        with pytest.raises(ConfigurationError):
            reg.counter("0leading")

    def test_cross_type_collision(self):
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(ConfigurationError):
            reg.gauge("repro_x")

    def test_histogram_buckets_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h", ())
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h", (2.0, 1.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h", (1.0, math.inf))
        reg.histogram("repro_h", (1.0, 2.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h", (1.0, 3.0))

    def test_histogram_observe_and_cumulative(self):
        h = MetricsRegistry().histogram("repro_h", (1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        assert h.cumulative() == [(1.0, 1), (2.0, 2), (math.inf, 3)]
        assert h.count == 3
        assert h.mean == pytest.approx((0.5 + 1.5 + 99.0) / 3)

    def test_prometheus_exposition_parses(self):
        reg = MetricsRegistry()
        reg.counter("repro_events_total", "All events").inc(7)
        reg.gauge("repro_rate").set(2.5)
        h = reg.histogram("repro_lat", (0.5, 1.0), help="latency")
        h.observe(0.25)
        h.observe(3.0)
        text = reg.render_prometheus()
        # Every non-comment line: metric{optional labels} <number>.
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? '
            r"[-+]?((\d+(\.\d+)?([eE][-+]?\d+)?)|inf|nan)$"
        )
        lines = [l for l in text.splitlines() if l and not l.startswith("#")]
        assert lines
        for line in lines:
            assert sample.match(line), line
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_sum 3.25" in text
        assert "repro_lat_count 2" in text
        assert "# TYPE repro_events_total counter" in text

    def test_json_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total").inc()
        payload = json.loads(json.dumps(reg.to_json()))
        assert payload["counters"]["repro_a_total"] == 1


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestPhaseProfiler:
    def test_add_accumulates(self):
        from time import perf_counter

        p = PhaseProfiler()
        t0 = perf_counter()
        p.add(PHASE_RADIO_TRANSMIT, t0)
        p.add(PHASE_RADIO_TRANSMIT, t0)
        p.add_seconds(PHASE_SIM_HEAP, 1.0, calls=5)
        assert p.calls[PHASE_RADIO_TRANSMIT] == 2
        assert p.calls[PHASE_SIM_HEAP] == 5
        assert p.total_seconds >= 1.0

    def test_shares_sum_to_one(self):
        p = PhaseProfiler()
        p.add_seconds(PHASE_FDS_R1, 3.0)
        p.add_seconds(PHASE_FDS_INTERCLUSTER, 1.0)
        rows = p.shares()
        assert rows[0][0] == PHASE_FDS_R1
        assert sum(share for _p, _s, share, _c in rows) == pytest.approx(1.0)

    def test_null_profiler_is_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        NULL_PROFILER.add(PHASE_FDS_R1, 0.0)
        NULL_PROFILER.add_seconds(PHASE_FDS_R1, 1.0)
        assert NULL_PROFILER.seconds == {}

    def test_reset(self):
        p = PhaseProfiler()
        p.add_seconds(PHASE_FDS_R1, 1.0)
        p.reset()
        assert p.total_seconds == 0.0


# ----------------------------------------------------------------------
# Bounded RecordingTracer (satellite)
# ----------------------------------------------------------------------
class TestBoundedRecordingTracer:
    def test_drop_oldest_and_counter(self):
        tracer = RecordingTracer(max_records=3)
        for i in range(5):
            tracer.record(float(i), "k", node=i)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [r.time for r in tracer.records] == [2.0, 3.0, 4.0]

    def test_unbounded_default_never_drops(self):
        tracer = RecordingTracer()
        for i in range(100):
            tracer.record(float(i), "k")
        assert len(tracer) == 100
        assert tracer.dropped == 0

    def test_max_records_validated(self):
        with pytest.raises(ConfigurationError):
            RecordingTracer(max_records=0)

    def test_iter_jsonl_streams(self):
        tracer = RecordingTracer()
        tracer.record(1.0, "radio.tx", node=4, size=7)
        lines = iter_jsonl(tracer.records)
        assert next(iter(lines)) == json.dumps(
            {"time": 1.0, "kind": "radio.tx", "node": 4, "size": 7},
            sort_keys=True,
        )


# ----------------------------------------------------------------------
# Spooling tracer
# ----------------------------------------------------------------------
class TestSpoolingTracer:
    def test_roundtrip_plain(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with SpoolingTracer(path) as tracer:
            tracer.record(1.0, "radio.tx", node=1, size=3)
            tracer.record(2.0, "fds.detection", node=2, target=9)
        records = read_spool(path)
        assert [r.kind for r in records] == ["radio.tx", "fds.detection"]
        assert records[1].detail["target"] == 9

    def test_roundtrip_gzip(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        with SpoolingTracer(path) as tracer:
            tracer.record(1.0, "radio.tx", node=1)
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert json.loads(handle.readline())["kind"] == "radio.tx"
        assert read_spool(path)[0].kind == "radio.tx"

    def test_kind_prefix_filter_is_segment_aware(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with SpoolingTracer(path, kinds=("fds", "meta")) as tracer:
            tracer.record(1.0, "fds.detection", node=1)
            tracer.record(1.0, "fdsx.not_ours", node=1)
            tracer.record(1.0, "radio.tx", node=1)
            tracer.record(1.0, "meta.scenario")
        assert tracer.spooled == 2
        assert tracer.filtered == 2
        assert [r.kind for r in read_spool(path)] == [
            "fds.detection", "meta.scenario",
        ]

    def test_tail_ring_is_bounded(self, tmp_path):
        with SpoolingTracer(tmp_path / "t.jsonl", tail=2) as tracer:
            for i in range(5):
                tracer.record(float(i), "k")
            assert [r.time for r in tracer.tail_records()] == [3.0, 4.0]
            assert tracer.spooled == 5

    def test_emit_after_close_raises(self, tmp_path):
        tracer = SpoolingTracer(tmp_path / "t.jsonl")
        tracer.close()
        tracer.close()  # idempotent
        with pytest.raises(ConfigurationError):
            tracer.record(1.0, "k")

    def test_iter_spool_skips_torn_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"time": 1.0, "kind": "a", "node": null}\n{"time": 2.0, "ki',
            encoding="utf-8",
        )
        assert [r.kind for r in iter_spool(path)] == ["a"]

    def test_iter_spool_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            list(iter_spool(tmp_path / "absent.jsonl"))

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SpoolingTracer(tmp_path / "t.jsonl", tail=-1)
        with pytest.raises(ConfigurationError):
            SpoolingTracer(tmp_path / "t.jsonl", flush_every=0)


# ----------------------------------------------------------------------
# End-to-end: scenario -> spool -> analyzers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scenario_spool(tmp_path_factory):
    """A real multi-cluster run spooled to disk with profiling on."""
    path = tmp_path_factory.mktemp("spool") / "scenario.jsonl.gz"
    config = ScenarioConfig(
        cluster_count=3, members_per_cluster=10, crash_count=2,
        executions=4, seed=7,
    )
    with SpoolingTracer(path) as tracer:
        result = run_scenario(config, tracer=tracer, profiler=PhaseProfiler())
    return path, config, result


class TestTraceAnalysis:
    def test_summarize_from_spool_alone(self, scenario_spool):
        path, config, result = scenario_spool
        summary = summarize(iter_spool(path))
        assert summary.meta.found
        assert summary.meta.phi == config.fds.phi
        assert summary.meta.seed == config.seed
        assert summary.meta.nodes == len(result.network)
        assert len(summary.crash_times) == config.crash_count
        # Profiling was on: per-phase shares are recoverable, and the
        # built-in phases dominate.
        shares = summary.phase_shares()
        assert shares
        assert sum(s for _p, _sec, s, _c in shares) == pytest.approx(1.0)
        assert {p for p, _sec, _s, _c in shares} >= {
            "radio.transmit", "sim.heap", "fds.r1",
        }

    def test_phi_unit_latency_histogram(self, scenario_spool):
        path, _config, _result = scenario_spool
        summary = summarize(iter_spool(path))
        latencies = summary.detection_latencies_phi()
        detected = [v for v in latencies.values() if v is not None]
        assert detected, "scenario produced no detections"
        hist = summary.registry.histogram(
            "repro_detection_latency_phi", PHI_LATENCY_BUCKETS
        )
        assert hist.count == len(detected)
        # The paper's detection rule resolves a crash within ~2 phi.
        assert all(0.0 < v <= 2.0 for v in detected)

    def test_lineage_reconstructs_path_from_spool(self, scenario_spool):
        path, _config, result = scenario_spool
        target = next(iter(result.crash_times))
        chain = lineage(iter_spool(path), int(target))
        assert chain.crash_time == pytest.approx(result.crash_times[target])
        assert chain.detected
        kinds = [e.kind for e in chain.events]
        assert kinds[0] == "sim.crash"
        assert "fds.detection" in kinds
        # Sorted chronologically and stamped with rounds.
        times = [e.time for e in chain.events]
        assert times == sorted(times)
        detection = next(e for e in chain.events if e.kind == "fds.detection")
        assert detection.round == "R-3"

    def test_lineage_crosses_cluster_boundary(self, scenario_spool):
        path, _config, result = scenario_spool
        crossed = 0
        for target in result.crash_times:
            chain = lineage(iter_spool(path), int(target))
            if chain.crossed_boundary:
                crossed += 1
        assert crossed >= 1, "no report crossed a boundary in this scenario"

    def test_lineage_unknown_node_raises(self, scenario_spool):
        path, _config, _result = scenario_spool
        with pytest.raises(ConfigurationError):
            lineage(iter_spool(path), 99999)

    def test_timeline_buckets_by_phi(self, scenario_spool):
        path, config, _result = scenario_spool
        rows, meta = timeline(iter_spool(path))
        assert meta.found
        starts = [start for start, _counts in rows]
        assert starts == sorted(starts)
        assert all(start % config.fds.phi == 0 for start in starts)
        assert sum(c["radio"] for _s, c in rows) > 0

    def test_scenario_metrics_from_recording_run(self):
        config = ScenarioConfig(
            cluster_count=2, members_per_cluster=8, crash_count=1,
            executions=3, seed=11,
        )
        result = run_scenario(config)
        reg = scenario_metrics(result)
        payload = reg.to_json()
        assert payload["counters"]["repro_radio_transmissions_total"] == (
            result.messages.transmissions
        )
        assert payload["gauges"]["repro_scenario_nodes"] == len(result.network)
        assert "repro_detection_latency_phi" in payload["histograms"]

    def test_detection_latency_graceful_without_records(self, scenario_spool):
        # With a spooling tracer the in-memory latency view degrades to
        # all-None (the spool is the authority), never a crash.
        _path, _config, result = scenario_spool
        latencies = result.detection_latencies
        assert set(latencies) == set(result.crash_times)
        assert all(v is None for v in latencies.values())

    def test_profile_and_meta_records_in_spool(self, scenario_spool):
        path, _config, _result = scenario_spool
        metas = read_spool(path, kinds=("meta.scenario",))
        profiles = read_spool(path, kinds=("profile.phase",))
        assert len(metas) == 1
        assert profiles
        assert all(r.detail["seconds"] >= 0 for r in profiles)


# ----------------------------------------------------------------------
# The determinism contract: observability must not perturb results
# ----------------------------------------------------------------------
class TestObservabilityIsPassive:
    def test_profiled_run_is_bit_identical(self, tmp_path):
        config = ScenarioConfig(
            cluster_count=2, members_per_cluster=8, crash_count=1,
            executions=3, seed=13,
        )
        plain = run_scenario(config)
        profiled = run_scenario(config, profiler=PhaseProfiler())

        def sim_lines(result):
            # profile.phase carries wall-clock (nondeterministic by
            # design); everything the simulation itself emitted must
            # match bit for bit.
            return list(iter_jsonl(
                r for r in result.tracer.records
                if not r.kind.startswith("profile.")
            ))

        assert sim_lines(plain) == sim_lines(profiled)

    def test_spooled_run_matches_recorded_run(self, tmp_path):
        config = ScenarioConfig(
            cluster_count=2, members_per_cluster=8, crash_count=1,
            executions=3, seed=13,
        )
        recorded = run_scenario(config)
        path = tmp_path / "t.jsonl"
        with SpoolingTracer(path) as tracer:
            run_scenario(config, tracer=tracer)
        spooled = read_spool(path)
        in_memory = [
            r for r in recorded.tracer.records
            if r.kind != "meta.scenario"
        ]
        replay = [r for r in spooled if r.kind != "meta.scenario"]
        assert [r.kind for r in replay] == [r.kind for r in in_memory]
        assert [r.time for r in replay] == [r.time for r in in_memory]


# ----------------------------------------------------------------------
# Prometheus 0.0.4 exposition conventions
# ----------------------------------------------------------------------
class TestPrometheusExposition:
    """Locks the text-format details scrapers depend on: the counter
    ``_total`` suffix convention, HELP-line escaping, and the
    bucket/+Inf/sum/count ordering of histograms."""

    SAMPLE_RE = re.compile(
        r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
        r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
        r"[-+]?([0-9.]+([eE][-+]?[0-9]+)?|inf|nan))$"
    )

    def test_counter_gains_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("events", "Plain counter").inc(3)
        text = reg.render_prometheus()
        assert "# TYPE events_total counter" in text
        assert "\nevents_total 3\n" in text
        # The JSON dual keeps the registered name untouched.
        assert reg.to_json()["counters"] == {"events": 3.0}

    def test_counter_with_suffix_not_doubled(self):
        reg = MetricsRegistry()
        reg.counter("requests_total").inc()
        text = reg.render_prometheus()
        assert "requests_total 1" in text
        assert "requests_total_total" not in text

    def test_help_escapes_backslash_and_newline(self):
        reg = MetricsRegistry()
        reg.gauge("g", "line one\nline two \\ backslash").set(1)
        text = reg.render_prometheus()
        assert "# HELP g line one\\nline two \\\\ backslash" in text
        # The raw newline must never split the HELP line in two.
        assert "\nline two" not in text

    def test_histogram_order_inf_sum_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", (0.1, 0.5), "Latency")
        for v in (0.05, 0.3, 2.0):
            h.observe(v)
        lines = reg.render_prometheus().rstrip("\n").split("\n")
        samples = [l for l in lines if not l.startswith("#")]
        assert samples == [
            'lat_bucket{le="0.1"} 1',
            'lat_bucket{le="0.5"} 2',
            'lat_bucket{le="+Inf"} 3',
            "lat_sum 2.35",
            "lat_count 3",
        ]

    def test_every_line_matches_exposition_grammar(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "With help").inc(2)
        reg.gauge("b", "Gauge help\nwith newline").set(-1.5)
        reg.histogram("c", (1.0,), "Hist").observe(0.5)
        text = reg.render_prometheus()
        assert text.endswith("\n")
        for line in text.rstrip("\n").split("\n"):
            assert self.SAMPLE_RE.match(line), line

    def test_merge_json_accumulates(self):
        src = MetricsRegistry()
        src.counter("hits_total").inc(5)
        src.gauge("level").set(2.0)
        src.histogram("lat", (1.0, 2.0)).observe(0.5)
        dst = MetricsRegistry()
        dst.counter("hits_total").inc(1)
        dst.gauge("level").set(9.0)
        dst.merge_json(src.to_json())
        dst.merge_json(src.to_json())
        snap = dst.to_json()
        assert snap["counters"]["hits_total"] == 11.0
        assert snap["gauges"]["level"] == 2.0  # last write wins
        assert snap["histograms"]["lat"]["count"] == 2
        assert snap["histograms"]["lat"]["counts"] == [2, 0]

    def test_merge_json_rejects_bucket_mismatch(self):
        src = MetricsRegistry()
        src.histogram("lat", (1.0, 2.0)).observe(0.5)
        dst = MetricsRegistry()
        dst.histogram("lat", (1.0, 5.0))
        with pytest.raises(ConfigurationError):
            dst.merge_json(src.to_json())
