"""Tests for failure injection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.failure.faultload import CrashEvent, Faultload, make_random_crashes
from repro.failure.injection import FailureInjector
from repro.fds.config import FdsConfig
from repro.sim.network import NetworkConfig, build_network
from repro.util.geometry import Vec2


def small_network():
    positions = {i: Vec2(i * 10.0, 0.0) for i in range(6)}
    return build_network(positions, NetworkConfig(loss_probability=0.0))


class TestInjector:
    def test_crash_happens_at_time(self):
        network = small_network()
        config = FdsConfig(phi=10.0, thop=0.5)
        injector = FailureInjector(network, config)
        injector.schedule_crash(3, 7.0)
        network.sim.run_until(6.9)
        assert network.nodes[3].is_operational
        network.sim.run_until(7.1)
        assert not network.nodes[3].is_operational

    def test_mid_execution_crash_rejected(self):
        # The paper assumes no crashes during an FDS execution.
        network = small_network()
        config = FdsConfig(phi=10.0, thop=0.5)
        injector = FailureInjector(network, config)
        with pytest.raises(ConfigurationError, match="execution window"):
            injector.schedule_crash(3, 0.5)

    def test_enforce_gap_can_be_disabled(self):
        network = small_network()
        injector = FailureInjector(
            network, FdsConfig(phi=10.0, thop=0.5), enforce_gap=False
        )
        injector.schedule_crash(3, 0.5)

    def test_align_to_gap(self):
        network = small_network()
        config = FdsConfig(phi=10.0, thop=0.5, recovery_rounds=2.0)
        injector = FailureInjector(network, config)
        window = config.execution_duration()
        aligned = injector.align_to_gap(0.5)
        assert aligned == pytest.approx(window)
        assert not injector.in_execution_window(aligned)
        # Already in a gap: unchanged.
        assert injector.align_to_gap(5.0) == 5.0

    def test_crash_before_execution(self):
        network = small_network()
        config = FdsConfig(phi=10.0, thop=0.5)
        injector = FailureInjector(network, config)
        event = injector.crash_before_execution(2, execution=3)
        assert event.time == pytest.approx(29.0)
        assert not injector.in_execution_window(event.time)

    def test_crash_before_execution_zero_rejected_at_origin(self):
        network = small_network()
        injector = FailureInjector(network, FdsConfig(phi=10.0, thop=0.5))
        with pytest.raises(ConfigurationError):
            injector.crash_before_execution(2, execution=0)

    def test_past_crash_rejected(self):
        network = small_network()
        network.sim.run_until(50.0)
        injector = FailureInjector(network, FdsConfig(phi=10.0, thop=0.5))
        with pytest.raises(ConfigurationError):
            injector.schedule_crash(1, 5.0)


class TestFaultload:
    def test_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            Faultload((CrashEvent(1, 10.0), CrashEvent(2, 5.0)))

    def test_fail_stop_single_crash_per_node(self):
        with pytest.raises(ConfigurationError):
            Faultload((CrashEvent(1, 5.0), CrashEvent(1, 10.0)))

    def test_inject(self):
        network = small_network()
        config = FdsConfig(phi=10.0, thop=0.5)
        injector = FailureInjector(network, config)
        fl = Faultload((CrashEvent(1, 6.0), CrashEvent(2, 16.0)))
        fl.inject(injector)
        network.sim.run_until(20.0)
        assert network.crashed_ids() == (1, 2)

    def test_make_random_crashes_properties(self):
        config = FdsConfig(phi=10.0, thop=0.5)
        rng = np.random.default_rng(0)
        fl = make_random_crashes(
            list(range(20)), 5, config, rng,
            first_execution=1, last_execution=3,
        )
        assert len(fl) == 5
        assert len(set(fl.node_ids())) == 5
        injector = FailureInjector(small_network(), config)
        for event in fl.events:
            assert not injector.in_execution_window(event.time)

    def test_make_random_crashes_validation(self):
        config = FdsConfig(phi=10.0, thop=0.5)
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            make_random_crashes([1, 2], 3, config, rng)
        with pytest.raises(ConfigurationError):
            make_random_crashes([1, 2], 1, config, rng, first_execution=0)
