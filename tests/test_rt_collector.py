"""Heap-merge edge cases of the rt spool collector.

The collector reconstructs one global trace from per-node spools that
may be empty (a node crashed before emitting), torn (killed mid-write),
or carry equal timestamps (wall-clock granularity); the merge must stay
deterministic through all three.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.rt.collector import (
    MERGED_NAME,
    iter_merged,
    merge_spools,
    spool_files,
)


def _write(path: Path, *records: dict) -> None:
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


class TestSpoolFiles:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no spool directory"):
            spool_files(tmp_path / "absent")

    def test_merged_output_is_excluded_from_inputs(self, tmp_path):
        _write(tmp_path / "node-0.jsonl", {"time": 0.0, "kind": "a"})
        _write(tmp_path / MERGED_NAME, {"time": 9.0, "kind": "stale"})
        assert [p.name for p in spool_files(tmp_path)] == ["node-0.jsonl"]


class TestMergeEdgeCases:
    def test_empty_per_node_spool_is_harmless(self, tmp_path):
        (tmp_path / "node-0.jsonl").write_text("")
        _write(
            tmp_path / "node-1.jsonl",
            {"time": 1.0, "kind": "fds.ping", "node": 1},
            {"time": 3.0, "kind": "fds.ping", "node": 1},
        )
        _write(
            tmp_path / "run.jsonl",
            {"time": 0.0, "kind": "meta.scenario", "nodes": 2},
        )
        merged = list(iter_merged(tmp_path))
        assert [r.time for r in merged] == [0.0, 1.0, 3.0]

    def test_all_spools_empty_yields_empty_merge(self, tmp_path):
        (tmp_path / "node-0.jsonl").write_text("")
        (tmp_path / "node-1.jsonl").write_text("")
        target = merge_spools(tmp_path)
        assert target == tmp_path / MERGED_NAME
        assert target.read_text() == ""

    def test_torn_final_line_is_skipped(self, tmp_path):
        whole = json.dumps({"time": 1.0, "kind": "fds.ping", "node": 0})
        torn = json.dumps({"time": 2.0, "kind": "fds.ping", "node": 0})
        (tmp_path / "node-0.jsonl").write_text(
            whole + "\n" + torn[: len(torn) // 2]
        )
        _write(
            tmp_path / "node-1.jsonl",
            {"time": 1.5, "kind": "sim.crash", "node": 1},
        )
        merged = list(iter_merged(tmp_path))
        assert [(r.time, r.kind) for r in merged] == [
            (1.0, "fds.ping"), (1.5, "sim.crash"),
        ]

    def test_duplicate_timestamps_merge_stably_by_file_order(self, tmp_path):
        """Equal ``(time, kind)`` keys keep source order -- files sort by
        name and ``heapq.merge`` is stable -- so re-merging the same
        directory always produces byte-identical output."""
        _write(
            tmp_path / "node-0.jsonl",
            {"time": 5.0, "kind": "fds.ping", "node": 0, "src": "a"},
            {"time": 5.0, "kind": "fds.ping", "node": 0, "src": "a2"},
        )
        _write(
            tmp_path / "node-1.jsonl",
            {"time": 5.0, "kind": "fds.ping", "node": 1, "src": "b"},
        )
        merged = list(iter_merged(tmp_path))
        assert [r.detail["src"] for r in merged] == ["a", "a2", "b"]
        # Equal timestamps, distinct kinds: the kind tie-break orders
        # them regardless of which file they came from.
        _write(
            tmp_path / "node-2.jsonl",
            {"time": 5.0, "kind": "fds.ack", "node": 2, "src": "c"},
        )
        merged = list(iter_merged(tmp_path))
        assert [r.detail["src"] for r in merged] == ["c", "a", "a2", "b"]

    def test_remerge_overwrites_not_appends(self, tmp_path):
        _write(
            tmp_path / "node-0.jsonl",
            {"time": 1.0, "kind": "fds.ping", "node": 0},
        )
        first = merge_spools(tmp_path).read_text()
        second = merge_spools(tmp_path).read_text()
        assert first == second
        assert second.count("\n") == 1
