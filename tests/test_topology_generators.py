"""Tests for scenario topology generators."""

import pytest

from repro.errors import TopologyError
from repro.topology.analysis import is_connected
from repro.topology.generators import (
    corridor_field,
    multi_cluster_field,
    single_cluster_disk,
)
from repro.topology.graph import UnitDiskGraph


class TestSingleClusterDisk:
    def test_population(self, rng):
        placement = single_cluster_disk(49, 100.0, rng)
        assert len(placement) == 50  # N = member_count + 1 (the CH)

    def test_all_one_hop_from_ch(self, rng):
        placement = single_cluster_disk(30, 100.0, rng)
        g = UnitDiskGraph(placement, 100.0)
        assert g.degree(0) == 30


class TestMultiClusterField:
    def test_ch_ids_are_lowest(self, rng):
        placement = multi_cluster_field(4, 20, 100.0, rng)
        assert len(placement) == 4 + 4 * 20
        # CHs are 0..3 at lattice points.
        for head in range(4):
            assert placement[head].x % 160.0 == pytest.approx(0.0)

    def test_chs_not_mutual_neighbors(self, rng):
        placement = multi_cluster_field(4, 20, 100.0, rng, spacing_factor=1.6)
        g = UnitDiskGraph(placement, 100.0)
        for a in range(4):
            for b in range(a + 1, 4):
                assert not g.are_neighbors(a, b)

    def test_field_connected_when_dense(self, rng):
        placement = multi_cluster_field(4, 40, 100.0, rng)
        assert is_connected(UnitDiskGraph(placement, 100.0))

    def test_spacing_factor_bounds(self, rng):
        with pytest.raises(TopologyError):
            multi_cluster_field(2, 5, 100.0, rng, spacing_factor=2.5)
        with pytest.raises(TopologyError):
            multi_cluster_field(2, 5, 100.0, rng, spacing_factor=1.0)


class TestCorridor:
    def test_chs_form_a_line(self, rng):
        placement = corridor_field(5, 10, 100.0, rng)
        ys = {placement[h].y for h in range(5)}
        assert ys == {0.0}
        xs = [placement[h].x for h in range(5)]
        assert xs == sorted(xs)

    def test_adjacent_disks_overlap(self, rng):
        placement = corridor_field(3, 10, 100.0, rng)
        # CH spacing 160 < 2R = 200: the disks overlap.
        assert placement[1].x - placement[0].x < 200.0
