"""Tests for repro.util.geometry."""

import math

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.util.geometry import (
    WORST_CASE_OVERLAP_FRACTION,
    Vec2,
    annulus_area,
    circle_circle_intersections,
    disk_area,
    lens_area,
    lens_area_integral,
    neighborhood_overlap_fraction,
    point_in_disk,
    sample_in_disk,
    sample_on_circle,
)


class TestVec2:
    def test_add_sub(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_distance(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == pytest.approx(5.0)

    def test_norm(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)

    def test_rotation_quarter_turn(self):
        rotated = Vec2(1, 0).rotated(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_iteration_unpacks(self):
        x, y = Vec2(5, 7)
        assert (x, y) == (5, 7)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Vec2(0, 0).x = 1  # type: ignore[misc]


class TestAreas:
    def test_disk_area(self):
        assert disk_area(1.0) == pytest.approx(math.pi)
        assert disk_area(100.0) == pytest.approx(math.pi * 1e4)

    def test_disk_area_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            disk_area(0.0)

    def test_lens_area_coincident_is_full_disk(self):
        assert lens_area(100.0, 0.0) == pytest.approx(disk_area(100.0))

    def test_lens_area_disjoint_is_zero(self):
        assert lens_area(100.0, 200.0) == 0.0
        assert lens_area(100.0, 250.0) == 0.0

    def test_lens_area_worst_case_closed_form(self):
        # d = R: An = R^2 (2 pi / 3 - sqrt(3)/2)
        r = 100.0
        expected = r * r * (2.0 * math.pi / 3.0 - math.sqrt(3.0) / 2.0)
        assert lens_area(r, r) == pytest.approx(expected)

    def test_lens_area_monotone_decreasing_in_distance(self):
        values = [lens_area(100.0, d) for d in np.linspace(0, 199, 40)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_lens_area_rejects_negative_distance(self):
        with pytest.raises(AnalysisError):
            lens_area(100.0, -1.0)

    def test_integral_form_matches_closed_form(self):
        # The paper's own integral (Figure 4(b)) must agree with the
        # circular-segment formula at the worst case and elsewhere.
        for d in (10.0, 50.0, 100.0, 150.0):
            assert lens_area_integral(100.0, d) == pytest.approx(
                lens_area(100.0, d), rel=1e-6
            )

    def test_integral_form_edge_cases(self):
        assert lens_area_integral(100.0, 0.0) == pytest.approx(disk_area(100.0))
        assert lens_area_integral(100.0, 200.0) == 0.0

    def test_worst_case_fraction_value(self):
        # a = (2 pi/3 - sqrt(3)/2) / pi ~= 0.391
        assert WORST_CASE_OVERLAP_FRACTION == pytest.approx(0.3910022, rel=1e-5)
        assert neighborhood_overlap_fraction(100.0, 100.0) == pytest.approx(
            WORST_CASE_OVERLAP_FRACTION
        )

    def test_annulus(self):
        assert annulus_area(0.0, 1.0) == pytest.approx(math.pi)
        assert annulus_area(1.0, 1.0) == pytest.approx(0.0)
        with pytest.raises(ConfigurationError):
            annulus_area(2.0, 1.0)


class TestSampling:
    def test_sample_in_disk_within_bounds(self, rng):
        center = Vec2(10.0, -5.0)
        for _ in range(500):
            p = sample_in_disk(rng, center, 50.0)
            assert p.distance_to(center) <= 50.0 + 1e-9

    def test_sample_in_disk_is_area_uniform(self, rng):
        # Under area-uniformity, P(r <= R/2) = 1/4.
        center = Vec2(0.0, 0.0)
        inner = sum(
            1
            for _ in range(20_000)
            if sample_in_disk(rng, center, 1.0).distance_to(center) <= 0.5
        )
        assert 0.22 <= inner / 20_000 <= 0.28

    def test_sample_on_circle_is_on_circle(self, rng):
        center = Vec2(3.0, 4.0)
        for _ in range(100):
            p = sample_on_circle(rng, center, 25.0)
            assert p.distance_to(center) == pytest.approx(25.0)


class TestCircleIntersections:
    def test_two_point_case(self):
        points = circle_circle_intersections(Vec2(0, 0), 1.0, Vec2(1, 0), 1.0)
        assert len(points) == 2
        for p in points:
            assert p.norm() == pytest.approx(1.0)
            assert p.distance_to(Vec2(1, 0)) == pytest.approx(1.0)

    def test_tangent_case(self):
        points = circle_circle_intersections(Vec2(0, 0), 1.0, Vec2(2, 0), 1.0)
        assert points == (Vec2(1.0, 0.0),)

    def test_disjoint_and_contained(self):
        assert circle_circle_intersections(Vec2(0, 0), 1.0, Vec2(5, 0), 1.0) == ()
        assert circle_circle_intersections(Vec2(0, 0), 3.0, Vec2(0.5, 0), 1.0) == ()

    def test_coincident_centers(self):
        assert circle_circle_intersections(Vec2(0, 0), 1.0, Vec2(0, 0), 1.0) == ()


def test_point_in_disk_boundary_inclusive():
    assert point_in_disk(Vec2(1.0, 0.0), Vec2(0, 0), 1.0)
    assert not point_in_disk(Vec2(1.0001, 0.0), Vec2(0, 0), 1.0)
