"""Tests for the unit-disk graph."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import uniform_rect_placement
from repro.util.geometry import Vec2


def line_graph(spacing=60.0, count=5, radius=100.0):
    return UnitDiskGraph(
        {i: Vec2(spacing * i, 0.0) for i in range(count)}, radius
    )


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            UnitDiskGraph({}, 100.0)

    def test_line_adjacency(self):
        g = line_graph()
        assert g.neighbors(0) == (1,)
        assert g.neighbors(2) == (1, 3)
        assert g.degree(2) == 2

    def test_edges_unique_and_ordered(self):
        g = line_graph(count=4)
        assert list(g.edges()) == [(0, 1), (1, 2), (2, 3)]
        assert g.edge_count() == 3

    def test_matches_brute_force_on_random_field(self, rng):
        placement = uniform_rect_placement(150, 400.0, 400.0, rng)
        g = UnitDiskGraph(placement, 100.0)
        for nid in g.nodes():
            brute = tuple(
                sorted(
                    o
                    for o in placement
                    if o != nid
                    and placement[nid].distance_to(placement[o]) <= 100.0
                )
            )
            assert g.neighbors(nid) == brute


class TestQueries:
    def test_are_neighbors_symmetry(self):
        g = line_graph()
        assert g.are_neighbors(0, 1) and g.are_neighbors(1, 0)
        assert not g.are_neighbors(0, 2)

    def test_common_neighbors(self):
        g = line_graph()
        assert g.common_neighbors(0, 2) == (1,)
        assert g.common_neighbors(0, 4) == ()

    def test_distance(self):
        g = line_graph(spacing=60.0)
        assert g.distance(0, 2) == pytest.approx(120.0)

    def test_unknown_node_raises(self):
        g = line_graph()
        with pytest.raises(TopologyError):
            g.neighbors(99)
        with pytest.raises(TopologyError):
            g.position(99)

    def test_contains_and_len(self):
        g = line_graph(count=3)
        assert len(g) == 3
        assert 1 in g and 7 not in g


class TestSubgraph:
    def test_induced_edges(self):
        g = line_graph(count=5)
        sub = g.subgraph([0, 1, 3])
        assert sub.neighbors(0) == (1,)
        assert sub.neighbors(3) == ()

    def test_unknown_nodes_rejected(self):
        with pytest.raises(TopologyError):
            line_graph().subgraph([0, 42])

    def test_positions_copy_is_isolated(self):
        g = line_graph(count=2)
        positions = g.positions()
        positions[0] = Vec2(999, 999)
        assert g.position(0) == Vec2(0.0, 0.0)
