"""FDS integration tests under perfect links: the deterministic invariants.

With zero loss the paper's probabilistic guarantees become exact:
accuracy (nobody suspected) and completeness (every failure known
everywhere) must hold deterministically, and detection must occur in the
first execution after the crash.
"""

import pytest

from repro.failure.injection import FailureInjector
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.metrics.properties import evaluate_properties
from repro.topology.generators import corridor_field, multi_cluster_field
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import deploy


class TestNoFailures:
    def test_quiet_network_stays_quiet(self, rng):
        placement = cluster_disk_placement(20, 100.0, rng)
        deployment, _layout, tracer, _network = deploy(placement)
        deployment.run_executions(3)
        assert tracer.count(ev.DETECTION) == 0
        assert tracer.count(ev.PEER_REQUEST) == 0
        report = evaluate_properties(deployment)
        assert report.is_accurate and report.is_complete

    def test_every_member_gets_every_update(self, rng):
        placement = cluster_disk_placement(20, 100.0, rng)
        deployment, layout, _tracer, _network = deploy(placement)
        deployment.run_executions(4)
        for nid, protocol in deployment.protocols.items():
            assert protocol.updates_received == frozenset({0, 1, 2, 3})

    def test_no_intercluster_traffic_without_news(self, rng):
        # "No news is good news": quiet clusters send no failure reports.
        placement = multi_cluster_field(4, 15, 100.0, rng)
        deployment, _layout, _tracer, _network = deploy(placement)
        deployment.run_executions(3)
        for protocol in deployment.protocols.values():
            if protocol.inter is not None:
                assert protocol.inter.reports_sent == 0


class TestSingleCrash:
    def test_detected_in_next_execution(self, rng):
        placement = cluster_disk_placement(20, 100.0, rng)
        deployment, layout, tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[3]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        detections = tracer.filter(ev.DETECTION)
        assert len(detections) == 1  # detected once, never re-detected
        assert detections[0].detail["target"] == int(victim)
        assert detections[0].detail["execution"] == 1

    def test_completeness_and_accuracy_exact(self, rng):
        placement = multi_cluster_field(4, 20, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[layout.heads[2]].ordinary_members)[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        report = evaluate_properties(deployment)
        assert report.completeness[victim] == 1.0
        assert report.is_accurate

    def test_crashed_member_removed_from_membership(self, rng):
        placement = cluster_disk_placement(15, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        head_protocol = deployment.protocols[layout.heads[0]]
        assert victim not in head_protocol.members
        assert victim in head_protocol.history

    def test_detection_latency_within_execution(self, rng):
        placement = cluster_disk_placement(15, 100.0, rng)
        deployment, layout, tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[0]
        event = injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(2)
        detection = tracer.filter(ev.DETECTION)[0]
        # Crash in the gap before epoch 1 (t=5.0); R-3 fires at epoch+1.0.
        assert detection.time == pytest.approx(
            deployment.config.phi + 2 * deployment.config.thop, abs=0.01
        )
        assert detection.time > event.time


class TestMultipleCrashes:
    def test_concurrent_crashes_all_detected(self, rng):
        placement = multi_cluster_field(4, 20, 100.0, rng)
        deployment, layout, tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        victims = []
        for head in layout.heads[:3]:
            victim = sorted(layout.clusters[head].ordinary_members)[1]
            injector.crash_before_execution(victim, execution=1)
            victims.append(victim)
        deployment.run_executions(4)
        report = evaluate_properties(deployment)
        for victim in victims:
            assert report.completeness[victim] == 1.0
        assert report.is_accurate

    def test_corridor_end_to_end_propagation(self, rng):
        # A failure at one end of a 5-cluster corridor reaches the other.
        # Density is chosen high enough that every adjacent cluster pair
        # has gateway candidates (sparse fields can lack a boundary, which
        # the paper defers to an inter-cluster routing protocol).
        placement = corridor_field(5, 35, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        owners = {owner for (owner, _peer) in layout.boundaries}
        assert owners == set(layout.heads[:-1]), "corridor chain incomplete"
        injector = FailureInjector(network, deployment.config)
        last = layout.heads[-1]
        victim = sorted(layout.clusters[last].ordinary_members)[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(4)
        first_members = layout.clusters[layout.heads[0]].members
        for nid in first_members:
            assert victim in deployment.protocols[nid].history
