"""Direct unit tests of the FDS sub-components (no full deployment).

The service-level tests exercise these through whole scenarios; here each
component's state machine is driven directly on a tiny two/three-node
medium so every branch is reachable deterministically.
"""

import pytest

from repro.energy.policy import WaitingPeriodPolicy
from repro.fds.config import FdsConfig
from repro.fds.intercluster import InterclusterForwarder
from repro.fds.messages import (
    FailureReport,
    HealthStatusUpdate,
    PeerForward,
    PeerForwardAck,
    PeerForwardRequest,
)
from repro.fds.peer_forwarding import PeerForwarder
from repro.sim.engine import Simulator
from repro.sim.medium import RadioMedium
from repro.sim.node import SimNode
from repro.util.geometry import Vec2


def make_node(node_id=1, position=Vec2(0, 0), extra_ids=(50, 55, 9, 99)):
    sim = Simulator()
    medium = RadioMedium(sim, transmission_range=100.0, max_delay=0.01)
    node = SimNode(node_id, position, sim, medium)
    # Register addressable (but out-of-range) peers so unicasts to them
    # are legal; nothing is delivered to them in these unit tests.
    for i, extra in enumerate(extra_ids):
        SimNode(extra, Vec2(5000.0 + i * 300.0, 5000.0), sim, medium)
    return sim, medium, node


def cfg(**kwargs):
    defaults = dict(phi=5.0, thop=0.5)
    defaults.update(kwargs)
    return FdsConfig(**defaults)


class TestPeerForwarderUnit:
    def _forwarder(self, node, updates=None):
        store = dict(updates or {})
        applied = []
        return (
            PeerForwarder(
                node,
                cfg(),
                get_update=store.get,
                accept_update=applied.append,
                energy_fraction=lambda: 1.0,
            ),
            store,
            applied,
        )

    def test_request_then_timer_fires_forward(self):
        sim, medium, node = make_node()
        update = HealthStatusUpdate(head=0, execution=3)
        forwarder, _store, _applied = self._forwarder(node, {3: update})
        forwarder.on_request(PeerForwardRequest(sender=9, execution=3))
        sim.run()
        assert forwarder.forwards_sent == 1

    def test_no_update_means_no_response(self):
        sim, _medium, node = make_node()
        forwarder, _store, _applied = self._forwarder(node, {})
        forwarder.on_request(PeerForwardRequest(sender=9, execution=3))
        sim.run()
        assert forwarder.forwards_sent == 0

    def test_ack_cancels_pending_forward(self):
        sim, _medium, node = make_node()
        update = HealthStatusUpdate(head=0, execution=3)
        forwarder, _store, _applied = self._forwarder(node, {3: update})
        forwarder.on_request(PeerForwardRequest(sender=9, execution=3))
        forwarder.on_ack(PeerForwardAck(sender=9, execution=3))
        sim.run()
        assert forwarder.forwards_sent == 0

    def test_own_request_ignored(self):
        sim, _medium, node = make_node()
        update = HealthStatusUpdate(head=0, execution=3)
        forwarder, _store, _applied = self._forwarder(node, {3: update})
        forwarder.on_request(
            PeerForwardRequest(sender=node.node_id, execution=3)
        )
        sim.run()
        assert forwarder.forwards_sent == 0

    def test_requester_accepts_matching_forward_once(self):
        sim, _medium, node = make_node()
        forwarder, _store, applied = self._forwarder(node)
        forwarder.request_update(4)
        update = HealthStatusUpdate(head=0, execution=4)
        message = PeerForward(sender=5, requester=node.node_id, update=update)
        forwarder.on_peer_forward(message)
        forwarder.on_peer_forward(message)  # duplicate: ignored
        assert applied == [update]
        assert forwarder.recoveries == 1

    def test_requester_rejects_wrong_execution_or_target(self):
        sim, _medium, node = make_node()
        forwarder, _store, applied = self._forwarder(node)
        forwarder.request_update(4)
        wrong_exec = PeerForward(
            sender=5, requester=node.node_id,
            update=HealthStatusUpdate(head=0, execution=3),
        )
        other_target = PeerForward(
            sender=5, requester=99,
            update=HealthStatusUpdate(head=0, execution=4),
        )
        forwarder.on_peer_forward(wrong_exec)
        forwarder.on_peer_forward(other_target)
        assert applied == []

    def test_reset_clears_responder_timers(self):
        sim, _medium, node = make_node()
        update = HealthStatusUpdate(head=0, execution=3)
        forwarder, _store, _applied = self._forwarder(node, {3: update})
        forwarder.on_request(PeerForwardRequest(sender=9, execution=3))
        forwarder.reset_for_execution()
        sim.run()
        assert forwarder.forwards_sent == 0


class TestInterclusterForwarderUnit:
    def _forwarder(self, node, duties, head_boundaries=None, config=None,
                   head=1):
        rebroadcasts = []
        forwarder = InterclusterForwarder(
            node,
            config or cfg(),
            duties=duties,
            head_boundaries=head_boundaries or {},
            get_head=lambda: head,
            get_history=lambda: frozenset({7}),
            rebroadcast_update=lambda: rebroadcasts.append(1),
        )
        return forwarder, rebroadcasts

    def test_gw_forwards_immediately_on_local_news(self):
        sim, _medium, node = make_node()
        forwarder, _r = self._forwarder(node, duties={50: (0, 1)})
        update = HealthStatusUpdate(
            head=1, execution=0, new_failures=frozenset({7}),
            known_failures=frozenset({7}),
        )
        forwarder.on_local_update(update)
        assert forwarder.reports_sent == 1

    def test_no_news_no_forwarding(self):
        sim, _medium, node = make_node()
        forwarder, _r = self._forwarder(node, duties={50: (0, 1)})
        forwarder.on_local_update(HealthStatusUpdate(head=1, execution=0))
        assert forwarder.reports_sent == 0

    def test_bgw_waits_then_steps_in(self):
        sim, _medium, node = make_node()
        forwarder, _r = self._forwarder(node, duties={50: (1, 2)})
        update = HealthStatusUpdate(
            head=1, execution=0, new_failures=frozenset({7}),
            known_failures=frozenset({7}),
        )
        forwarder.on_local_update(update)
        assert forwarder.reports_sent == 0  # standing by
        sim.run_until(0.99)  # rank-1 standby is 2*thop = 1.0
        assert forwarder.reports_sent == 0
        sim.run_until(1.01)
        assert forwarder.reports_sent == 1
        assert forwarder.bgw_activations == 1

    def test_bgw_released_by_foreign_coverage(self):
        sim, _medium, node = make_node()
        forwarder, _r = self._forwarder(node, duties={50: (1, 2)})
        update = HealthStatusUpdate(
            head=1, execution=0, new_failures=frozenset({7}),
            known_failures=frozenset({7}),
        )
        forwarder.on_local_update(update)
        # The peer CH's relay covers failure 7: release.
        forwarder.on_foreign_update(
            HealthStatusUpdate(
                head=50, execution=0, known_failures=frozenset({7}), relay=True
            )
        )
        sim.run()
        assert forwarder.reports_sent == 0

    def test_retry_budget_respected(self):
        sim, _medium, node = make_node()
        config = cfg(max_forward_retries=1)
        forwarder, _r = self._forwarder(
            node, duties={50: (0, 0)}, config=config
        )
        update = HealthStatusUpdate(
            head=1, execution=0, new_failures=frozenset({7}),
            known_failures=frozenset({7}),
        )
        forwarder.on_local_update(update)
        sim.run_until(30.0)  # plenty of timer cycles, never acked
        # initial shot + exactly max_forward_retries retries
        assert forwarder.reports_sent == 2

    def test_inbound_duty_from_foreign_news(self):
        sim, _medium, node = make_node()
        forwarder, _r = self._forwarder(node, duties={50: (0, 1)})
        forwarder.on_foreign_update(
            HealthStatusUpdate(
                head=50, execution=0, new_failures=frozenset({60}),
                known_failures=frozenset({60}),
            )
        )
        assert forwarder.reports_sent == 1  # toward own head

    def test_own_head_excluded_from_inbound(self):
        sim, _medium, node = make_node()
        forwarder, _r = self._forwarder(node, duties={50: (0, 1)}, head=1)
        forwarder.on_foreign_update(
            HealthStatusUpdate(
                head=50, execution=0, new_failures=frozenset({1}),
                known_failures=frozenset({1}),
            )
        )
        assert forwarder.reports_sent == 0

    def test_duty_rekeyed_on_peer_takeover(self):
        sim, _medium, node = make_node()
        forwarder, _r = self._forwarder(node, duties={50: (0, 1)})
        forwarder.on_foreign_update(
            HealthStatusUpdate(
                head=55, execution=0,
                new_failures=frozenset({50}),
                known_failures=frozenset({50}),
                takeover_from=50,
            )
        )
        assert 55 in forwarder.duties and 50 not in forwarder.duties

    def test_origin_watch_retransmits(self):
        sim, _medium, node = make_node()
        forwarder, rebroadcasts = self._forwarder(
            node, duties={}, head_boundaries={50: 2}, head=node.node_id
        )
        update = HealthStatusUpdate(
            head=node.node_id, execution=0,
            new_failures=frozenset({7}), known_failures=frozenset({7}),
        )
        forwarder.on_local_update(update)
        sim.run_until(1.01)  # 2*thop with no overheard forwarding
        assert rebroadcasts == [1]

    def test_origin_watch_released_by_overheard_report(self):
        sim, _medium, node = make_node()
        forwarder, rebroadcasts = self._forwarder(
            node, duties={}, head_boundaries={50: 2}, head=node.node_id
        )
        update = HealthStatusUpdate(
            head=node.node_id, execution=0,
            new_failures=frozenset({7}), known_failures=frozenset({7}),
        )
        forwarder.on_local_update(update)
        forwarder.on_overheard_report(
            FailureReport(sender=3, origin=node.node_id, target_head=50,
                          failures=frozenset({7}))
        )
        sim.run_until(5.0)
        assert rebroadcasts == []

    def test_refutation_clears_ledger(self):
        sim, _medium, node = make_node()
        forwarder, _r = self._forwarder(node, duties={50: (0, 1)})
        news = HealthStatusUpdate(
            head=1, execution=0, new_failures=frozenset({7}),
            known_failures=frozenset({7}),
        )
        forwarder.on_local_update(news)
        forwarder.on_foreign_update(
            HealthStatusUpdate(head=50, execution=0,
                               known_failures=frozenset({7}))
        )
        assert forwarder.ledger.pending(50, frozenset({7})) == frozenset()
        # Refutation: 7 was alive after all...
        repair = HealthStatusUpdate(
            head=1, execution=1, refutations=frozenset({7}),
        )
        forwarder.on_local_update(repair)
        # ...so a later real failure of 7 is forwardable again.
        assert forwarder.ledger.pending(50, frozenset({7})) == frozenset({7})


class TestWaitingPolicyIntegration:
    def test_lower_energy_waits_longer_than_higher(self):
        policy = WaitingPeriodPolicy(slot=0.01)
        assert policy.waiting_period(3, 0.2) > policy.waiting_period(3, 0.9)
