"""Tests for the DCH reachability model and sweep tooling."""

import numpy as np
import pytest

from repro.analysis.reachability import (
    dch_reachability_failure,
    triple_overlap_fraction,
)
from repro.analysis.sweep import (
    PAPER_N_VALUES,
    PAPER_P_GRID,
    MeasureSeries,
    sweep_measure,
)
from repro.errors import AnalysisError


class TestTripleOverlap:
    def test_matches_monte_carlo_area(self):
        # Grid quadrature vs MC integration of the same region.
        d_dch, d_v = 60.0, 100.0
        g = triple_overlap_fraction(d_dch, d_v, resolution=800)
        rng = np.random.default_rng(1)
        n = 200_000
        r = 100.0 * np.sqrt(rng.uniform(size=n))
        theta = rng.uniform(0, 2 * np.pi, size=n)
        xs, ys = r * np.cos(theta), r * np.sin(theta)
        inside = (
            ((xs - d_dch) ** 2 + ys**2 <= 1e4)
            & ((xs + d_v) ** 2 + ys**2 <= 1e4)
        )
        mc = inside.mean()
        assert g == pytest.approx(mc, abs=0.01)

    def test_grows_as_dch_centers(self):
        far = triple_overlap_fraction(90.0, 100.0)
        near = triple_overlap_fraction(20.0, 100.0)
        assert near > far

    def test_validation(self):
        with pytest.raises(AnalysisError):
            triple_overlap_fraction(150.0, 100.0)


class TestDchReachability:
    def test_in_range_member_is_never_a_problem(self):
        assert dch_reachability_failure(50, 0.3, dch_distance=20.0,
                                        member_distance=70.0) == 0.0

    def test_paper_qualitative_claim(self):
        # "unless the node population density is low and the DCH's
        # distance from the original CH is big, with high probability a
        # DCH will be able to hear from an out-of-range member".
        good = dch_reachability_failure(100, 0.1, dch_distance=30.0)
        bad = dch_reachability_failure(20, 0.4, dch_distance=90.0)
        assert good < 1e-3
        assert bad > 0.1

    def test_monotone_in_density(self):
        values = [
            dch_reachability_failure(n, 0.2, dch_distance=50.0)
            for n in (10, 25, 50, 100)
        ]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_monotone_in_loss(self):
        values = [
            dch_reachability_failure(50, p, dch_distance=50.0)
            for p in (0.05, 0.2, 0.4)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))


class TestSweep:
    def test_paper_grid_shape(self):
        assert PAPER_P_GRID[0] == 0.05 and PAPER_P_GRID[-1] == 0.5
        assert len(PAPER_P_GRID) == 10
        assert PAPER_N_VALUES == (50, 75, 100)

    def test_sweep_measure(self):
        series = sweep_measure("test", lambda n, p: n * p)
        assert series.value_at(50, 0.1) == pytest.approx(5.0)
        assert len(series.curves) == 3

    def test_as_rows(self):
        series = sweep_measure(
            "t", lambda n, p: float(n), p_values=[0.1, 0.2], n_values=[2, 3]
        )
        rows = series.as_rows()
        assert rows == [[0.1, 2.0, 3.0], [0.2, 2.0, 3.0]]

    def test_off_grid_lookup_raises(self):
        series = sweep_measure("t", lambda n, p: 0.0)
        with pytest.raises(AnalysisError):
            series.value_at(50, 0.123)
        with pytest.raises(AnalysisError):
            series.value_at(51, 0.05)

    def test_empty_grids_rejected(self):
        with pytest.raises(AnalysisError):
            sweep_measure("t", lambda n, p: 0.0, p_values=[])
