"""FDS behaviour under message loss: peer forwarding and self-healing."""

import pytest

from repro.failure.injection import FailureInjector
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.metrics.properties import evaluate_properties
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import TargetedLoss, deploy


class TestPeerForwarding:
    def test_missed_update_recovered_by_peers(self, rng):
        # Deterministic fault: one member loses every copy of the R-3
        # update from the CH during execution 1, but hears everyone else.
        placement = cluster_disk_placement(15, 100.0, rng)
        victim = 7

        def predicate(sender, receiver, time):
            # Drop only CH -> victim during R-3 of execution 1
            # (epoch 5.0, R-3 begins 6.0) and the peer-forward copies'
            # window is left open.
            return sender == 0 and receiver == victim and 5.9 <= time <= 6.6

        deployment, layout, tracer, network = deploy(
            placement, loss_model=TargetedLoss(predicate)
        )
        deployment.run_executions(3)
        protocol = deployment.protocols[victim]
        assert 1 in protocol.updates_received  # recovered
        assert tracer.count(ev.PEER_REQUEST) == 1
        assert tracer.count(ev.PEER_RECOVERY) == 1
        assert protocol.peer.recoveries == 1

    def test_requester_acks_and_forwarders_stand_down(self, rng):
        placement = cluster_disk_placement(25, 100.0, rng)
        victim = 9

        def predicate(sender, receiver, time):
            return sender == 0 and receiver == victim and 5.9 <= time <= 6.6

        deployment, _layout, _tracer, network = deploy(
            placement, loss_model=TargetedLoss(predicate)
        )
        deployment.run_executions(2)
        # At most a couple of neighbors actually transmit before the ack
        # silences the rest (energy-balanced races are not perfectly
        # single-shot because of propagation delay).
        forwards = sum(
            p.peer.forwards_sent for p in deployment.protocols.values()
        )
        assert 1 <= forwards <= 6

    def test_disabled_peer_forwarding_leaves_gap(self, rng):
        placement = cluster_disk_placement(15, 100.0, rng)
        victim = 7

        def predicate(sender, receiver, time):
            return sender == 0 and receiver == victim and 5.9 <= time <= 6.6

        cfg = FdsConfig(phi=5.0, thop=0.5, peer_forwarding=False)
        deployment, _layout, tracer, _network = deploy(
            placement, loss_model=TargetedLoss(predicate), fds_config=cfg
        )
        deployment.run_executions(3)
        protocol = deployment.protocols[victim]
        assert 1 not in protocol.updates_received
        assert tracer.count(ev.PEER_REQUEST) == 0


class TestStatisticalBehaviour:
    def test_moderate_loss_keeps_properties(self, rng):
        # p = 0.2 over several executions: completeness and accuracy both
        # hold for this seed (the analytic failure probabilities at N=31
        # are small but not negligible; the seed is fixed).
        placement = cluster_disk_placement(30, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement, p=0.2, seed=5)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[4]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(4)
        report = evaluate_properties(deployment)
        assert report.completeness[victim] == 1.0
        assert report.is_accurate

    def test_observed_loss_rate_tracks_p(self, rng):
        placement = cluster_disk_placement(20, 100.0, rng)
        deployment, _layout, _tracer, network = deploy(placement, p=0.3, seed=3)
        deployment.run_executions(5)
        stats = network.medium.message_stats()
        rate = stats["losses"] / (stats["losses"] + stats["deliveries"])
        assert 0.27 <= rate <= 0.33


class TestSelfHealing:
    def test_false_detection_gets_refuted_and_forgotten(self, rng):
        # Without digests, false detections are common (rate p per member
        # per execution).  Every one of them must be repaired: by the end
        # of the run no operational node is suspected anywhere.
        placement = cluster_disk_placement(15, 100.0, rng)
        cfg = FdsConfig(phi=5.0, thop=0.5, use_digests=False)
        # Lossy for 10 executions (epochs 0..45), then a clean channel so
        # no *new* false detections occur while the repairs flush.
        from tests.fds_helpers import PhasedLoss

        deployment, _layout, tracer, network = deploy(
            placement, seed=12, fds_config=cfg,
            loss_model=PhasedLoss(p=0.25, cutoff=49.0),
        )
        deployment.run_executions(10)
        assert tracer.count(ev.DETECTION) > 0, "expected false detections"
        assert tracer.count(ev.REFUTATION) > 0
        # Quiesce: two clean executions flush every repair.
        deployment.run_executions(2)
        report = evaluate_properties(deployment)
        assert report.is_accurate

    def test_refutation_announced_in_update(self, rng):
        placement = cluster_disk_placement(15, 100.0, rng)
        cfg = FdsConfig(phi=5.0, thop=0.5, use_digests=False)
        deployment, _layout, tracer, network = deploy(
            placement, p=0.25, seed=11, fds_config=cfg
        )
        deployment.run_executions(10)
        # Member-side refutations outnumber CH-side ones: the repair
        # propagated through updates.
        refutations = tracer.filter(ev.REFUTATION)
        nodes_refuting = {r.node for r in refutations}
        assert len(nodes_refuting) > 1
