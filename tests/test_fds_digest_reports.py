"""Tests for digest construction and report bookkeeping."""

import pytest

from repro.fds.digest import build_digest, digest_witnesses
from repro.fds.reports import BoundaryLedger, ReportHistory


class TestBuildDigest:
    def test_filters_to_cluster_members(self):
        # Overheard foreign-cluster heartbeats must not leak into the
        # digest (the disks overlap, feature F1).
        digest = build_digest(
            sender=1,
            execution=0,
            heard_heartbeats={2, 3, 99},
            cluster_members={1, 2, 3, 4},
        )
        assert digest.heard == frozenset({2, 3})

    def test_excludes_self(self):
        digest = build_digest(1, 0, {1, 2}, {1, 2})
        assert digest.heard == frozenset({2})

    def test_empty(self):
        assert build_digest(1, 0, set(), {1, 2}).heard == frozenset()

    def test_witnesses(self):
        digests = {1: frozenset({5}), 2: frozenset({6}), 3: frozenset({5, 6})}
        assert digest_witnesses(digests, 5) == frozenset({1, 3})
        assert digest_witnesses(digests, 9) == frozenset()


class TestReportHistory:
    def test_add_returns_novel_only(self):
        history = ReportHistory()
        assert history.add(frozenset({1, 2})) == frozenset({1, 2})
        assert history.add(frozenset({2, 3})) == frozenset({3})
        assert history.known == frozenset({1, 2, 3})
        assert len(history) == 3
        assert 2 in history

    def test_refute(self):
        history = ReportHistory()
        history.add(frozenset({1}))
        assert history.refute(1)
        assert 1 not in history
        assert history.refuted_total == 1
        assert not history.refute(1)  # second refute is a no-op

    def test_refuted_node_can_fail_again(self):
        history = ReportHistory()
        history.add(frozenset({1}))
        history.refute(1)
        assert history.add(frozenset({1})) == frozenset({1})


class TestBoundaryLedger:
    def test_pending_shrinks_with_acks(self):
        ledger = BoundaryLedger()
        failures = frozenset({1, 2, 3})
        assert ledger.pending(9, failures) == failures
        ledger.note_ack(9, frozenset({2}))
        assert ledger.pending(9, failures) == frozenset({1, 3})

    def test_acks_are_per_peer(self):
        ledger = BoundaryLedger()
        ledger.note_ack(9, frozenset({1}))
        assert ledger.pending(8, frozenset({1})) == frozenset({1})

    def test_attempt_budget(self):
        ledger = BoundaryLedger()
        failures = frozenset({1})
        ledger.note_attempt(9, failures)
        ledger.note_attempt(9, failures)
        assert ledger.attempts(9, 1) == 2
        assert ledger.within_budget(9, failures, max_attempts=3) == failures
        assert ledger.within_budget(9, failures, max_attempts=2) == frozenset()

    def test_clear_failure_resets_everything(self):
        ledger = BoundaryLedger()
        ledger.note_ack(9, frozenset({1}))
        ledger.note_attempt(9, frozenset({1}))
        ledger.clear_failure(1)
        assert ledger.pending(9, frozenset({1})) == frozenset({1})
        assert ledger.attempts(9, 1) == 0
