"""Monte Carlo twins vs closed forms."""

import numpy as np
import pytest

from repro.analysis.ch_false_detection import p_false_detection_on_ch
from repro.analysis.confidence import wilson_interval
from repro.analysis.false_detection import p_false_detection
from repro.analysis.incompleteness import p_incompleteness
from repro.analysis.montecarlo import (
    mc_false_detection,
    mc_false_detection_on_ch,
    mc_incompleteness,
)
from repro.errors import AnalysisError


@pytest.fixture
def mc_rng():
    return np.random.default_rng(2024)


class TestWilson:
    def test_basic_interval(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high

    def test_zero_successes_has_positive_width(self):
        low, high = wilson_interval(0, 1000)
        assert low == 0.0
        assert high > 0.0

    def test_narrower_with_more_trials(self):
        w1 = wilson_interval(10, 100)
        w2 = wilson_interval(100, 1000)
        assert (w2[1] - w2[0]) < (w1[1] - w1[0])

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wilson_interval(5, 0)
        with pytest.raises(AnalysisError):
            wilson_interval(11, 10)
        with pytest.raises(AnalysisError):
            wilson_interval(1, 10, confidence=0.42)


class TestMcFalseDetection:
    @pytest.mark.parametrize("n,p", [(50, 0.5), (50, 0.35), (75, 0.5)])
    def test_agrees_with_closed_form(self, mc_rng, n, p):
        estimate = mc_false_detection(n, p, trials=150_000, rng=mc_rng)
        assert estimate.contains(p_false_detection(n, p))

    def test_prefactor_is_p_squared(self, mc_rng):
        estimate = mc_false_detection(50, 0.3, trials=10, rng=mc_rng)
        assert estimate.prefactor == pytest.approx(0.09)

    def test_interior_position(self, mc_rng):
        estimate = mc_false_detection(
            50, 0.5, trials=150_000, rng=mc_rng, distance=40.0
        )
        assert estimate.contains(p_false_detection(50, 0.5, distance=40.0))

    def test_distance_validation(self, mc_rng):
        with pytest.raises(AnalysisError):
            mc_false_detection(50, 0.5, 10, mc_rng, distance=150.0)


class TestMcChFalseDetection:
    def test_agrees_with_closed_form(self, mc_rng):
        # Conditional part (p(2-p))^(N-2) is ~1e-6 at N=20, p=0.5:
        # measurable with 2e6 trials would be needed; use N=10 where the
        # conditional is ~6e-2.
        n, p = 10, 0.5
        estimate = mc_false_detection_on_ch(n, p, trials=200_000, rng=mc_rng)
        assert estimate.contains(p_false_detection_on_ch(n, p))

    def test_offset_dch_agrees(self, mc_rng):
        n, p, d = 10, 0.5, 70.0
        estimate = mc_false_detection_on_ch(
            n, p, trials=200_000, rng=mc_rng, dch_distance=d
        )
        assert estimate.contains(
            p_false_detection_on_ch(n, p, dch_distance=d)
        )


class TestMcIncompleteness:
    @pytest.mark.parametrize("n,p", [(50, 0.5), (50, 0.3), (100, 0.5)])
    def test_agrees_with_closed_form(self, mc_rng, n, p):
        estimate = mc_incompleteness(n, p, trials=150_000, rng=mc_rng)
        assert estimate.contains(p_incompleteness(n, p))

    def test_conditional_mean_exposed(self, mc_rng):
        estimate = mc_incompleteness(50, 0.5, trials=1000, rng=mc_rng)
        assert estimate.conditional_mean == pytest.approx(
            estimate.conditional_successes / 1000
        )
        assert estimate.estimate == pytest.approx(
            0.5 * estimate.conditional_mean
        )
