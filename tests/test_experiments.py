"""Tests for the experiment harness: figures, claims, runner, validation."""

import pytest

from repro.analysis.false_detection import p_false_detection
from repro.errors import ExperimentError
from repro.experiments.figures import (
    PAPER_CLAIMS,
    check_paper_claims,
    figure5_false_detection,
    figure6_false_detection_on_ch,
    figure7_incompleteness,
    render_figure,
)
from repro.experiments.reporting import render_ablation, render_claims
from repro.experiments.runner import ScenarioConfig, ScenarioResult, run_scenario
from repro.experiments.scenarios import (
    single_cluster_validation,
    validation_summary,
)


class TestFigures:
    def test_figure5_grid(self):
        series = figure5_false_detection()
        assert series.p_values == tuple(round(0.05 * i, 2) for i in range(1, 11))
        assert sorted(series.curves) == [50, 75, 100]
        assert series.value_at(50, 0.5) == pytest.approx(
            p_false_detection(50, 0.5)
        )

    def test_figure6_and_7_produce_positive_curves(self):
        for series in (figure6_false_detection_on_ch(), figure7_incompleteness()):
            for curve in series.curves.values():
                assert all(v >= 0 for v in curve)
                assert curve[-1] > 0

    def test_render_figure_contains_all_columns(self):
        text = render_figure(figure5_false_detection(), "Figure 5")
        assert "Figure 5" in text
        assert "N=50" in text and "N=100" in text
        assert len(text.splitlines()) == 13  # title + header + rule + 10 rows


class TestPaperClaims:
    def test_every_claim_passes(self):
        results = check_paper_claims()
        failing = [claim.claim_id for claim, ok in results if not ok]
        assert failing == []

    def test_claims_cover_all_three_figures(self):
        ids = " ".join(claim.claim_id for claim in PAPER_CLAIMS)
        assert "fig5" in ids and "fig6" in ids and "fig7" in ids

    def test_render_claims(self):
        text = render_claims()
        assert "PASS" in text and "FAIL" not in text


class TestScenarioRunner:
    def test_oracle_scenario_end_to_end(self):
        config = ScenarioConfig(
            cluster_count=2,
            members_per_cluster=15,
            loss_probability=0.1,
            crash_count=1,
            executions=3,
            seed=5,
        )
        result = run_scenario(config)
        assert isinstance(result, ScenarioResult)
        assert result.properties.mean_completeness == 1.0
        summary = result.summary()
        assert summary["crashes"] == 1.0
        assert summary["clusters"] >= 2.0
        assert 0.05 < summary["observed_loss_rate"] < 0.15
        assert summary["mean_detection_latency"] > 0

    def test_protocol_formation_scenario(self):
        config = ScenarioConfig(
            cluster_count=2,
            members_per_cluster=15,
            loss_probability=0.05,
            crash_count=1,
            executions=3,
            seed=6,
            formation="protocol",
        )
        result = run_scenario(config)
        assert len(result.layout.clusters) >= 1
        assert result.properties.mean_completeness > 0.5

    def test_invalid_config(self):
        with pytest.raises(ExperimentError):
            ScenarioConfig(formation="magic")
        with pytest.raises(ExperimentError):
            ScenarioConfig(crash_count=-1)


class TestValidation:
    def test_single_cluster_validation_matches_analytics(self):
        result = single_cluster_validation(n=40, p=0.5, executions=120, seed=2)
        # The analytic incompleteness must fall inside the run's 99% CI.
        low, high = result.incompleteness_interval()
        assert low <= result.analytic_incompleteness <= high
        summary = validation_summary(result)
        assert summary["N"] == 40.0
        assert summary["inc_ci_low"] == pytest.approx(low)

    def test_validation_rejects_bad_inputs(self):
        with pytest.raises(ExperimentError):
            single_cluster_validation(n=2)


class TestAblationRendering:
    def test_render_ablation_table(self):
        from repro.experiments.ablations import AblationResult, AblationRow

        result = AblationResult(
            name="demo",
            rows=(
                AblationRow("on", {"x": 1.0}),
                AblationRow("off", {"x": 2.0}),
            ),
        )
        text = render_ablation(result)
        assert "demo" in text and "on" in text and "off" in text
        assert result.metric("on", "x") == 1.0
        with pytest.raises(KeyError):
            result.metric("missing", "x")
