"""The checkpointed campaign runner: twins, resume, caching, liveness.

The load-bearing guarantees:

- a campaign's merged result is bit-identical to its one-shot twin
  (``mc_chunked`` / ``repeat_scenario``);
- interrupt-and-resume equals uninterrupted, bit for bit;
- a warm store serves the whole campaign with **zero** executions;
- a config field change misses the cache (re-executes);
- a stuck pool worker is timed out and its chunk retried in-process.
"""

import os
import time

import pytest

from repro.analysis.montecarlo import mc_chunked, mc_false_detection
from repro.campaign.plans import (
    EXECUTORS,
    MERGERS,
    CampaignPlan,
    ChunkTask,
    mc_plan,
    plan_from_manifest,
    scenario_repeat_plan,
)
from repro.campaign.runner import CampaignOptions, campaign_status, run_campaign
from repro.campaign.store import ResultStore, content_key
from repro.campaign.telemetry import read_events
from repro.errors import ConfigurationError
from repro.experiments.repeat import repeat_scenario
from repro.experiments.runner import ScenarioConfig

SMALL = ScenarioConfig(
    cluster_count=2,
    members_per_cluster=8,
    loss_probability=0.15,
    crash_count=1,
    executions=2,
)

MC_ARGS = dict(n=40, p=0.4, trials=12_000, seed=3, chunks=6)


def _store(tmp_path, name="store"):
    return ResultStore(tmp_path / name)


class TestOneShotTwins:
    def test_mc_campaign_bit_identical_to_mc_chunked(self, tmp_path):
        plan = mc_plan("false_detection", **MC_ARGS)
        outcome = run_campaign(plan, _store(tmp_path))
        direct = mc_chunked(
            mc_false_detection, MC_ARGS["n"], MC_ARGS["p"], MC_ARGS["trials"],
            seed=MC_ARGS["seed"], chunks=MC_ARGS["chunks"],
        )
        assert outcome.complete
        assert outcome.merged == direct

    def test_scenario_campaign_bit_identical_to_repeat(self, tmp_path):
        plan = scenario_repeat_plan(SMALL, [1, 2, 3])
        outcome = run_campaign(plan, _store(tmp_path))
        direct = repeat_scenario(SMALL, [1, 2, 3])
        assert outcome.complete
        assert outcome.merged.metrics == direct.metrics
        assert outcome.merged.seeds == direct.seeds

    def test_pooled_equals_serial(self, tmp_path):
        plan = mc_plan("false_detection", **MC_ARGS)
        serial = run_campaign(plan, _store(tmp_path, "a"))
        pooled = run_campaign(
            plan, _store(tmp_path, "b"), CampaignOptions(workers=3)
        )
        assert pooled.merged == serial.merged


class TestCaching:
    def test_warm_rerun_executes_zero_simulations(self, tmp_path, monkeypatch):
        store = _store(tmp_path)
        plan = scenario_repeat_plan(SMALL, [1, 2])
        cold = run_campaign(plan, store)
        assert cold.executed == 2

        def _explodes(_payload):
            raise AssertionError("a warm store must not execute chunks")

        monkeypatch.setitem(EXECUTORS, "scenario", _explodes)
        warm = run_campaign(plan, store)
        assert warm.complete
        assert warm.executed == 0
        assert warm.cache_hits == warm.chunks_total == 2
        assert warm.merged.metrics == cold.merged.metrics

    def test_warm_rerun_emits_telemetry_per_chunk(self, tmp_path):
        store = _store(tmp_path)
        plan = mc_plan("false_detection", **MC_ARGS)
        run_campaign(plan, store)
        run_campaign(plan, store)
        events = read_events(
            store.campaign_dir(plan.campaign_id) / "telemetry.jsonl"
        )
        done = [e for e in events if e["event"] == "chunk_done"]
        # One per chunk cold + one per chunk warm, the warm ones all hits.
        assert len(done) == 2 * len(plan.chunks)
        warm_events = done[len(plan.chunks):]
        assert all(e["cache_hit"] for e in warm_events)
        assert warm_events[-1]["cache_hit_ratio"] == 1.0

    def test_config_field_change_misses(self, tmp_path):
        import dataclasses

        store = _store(tmp_path)
        plan = scenario_repeat_plan(SMALL, [1])
        run_campaign(plan, store)
        changed_plan = scenario_repeat_plan(
            dataclasses.replace(SMALL, loss_probability=0.25), [1]
        )
        outcome = run_campaign(changed_plan, store)
        assert outcome.cache_hits == 0
        assert outcome.executed == 1
        assert plan.campaign_id != changed_plan.campaign_id

    def test_code_fingerprint_invalidates(self, tmp_path):
        # Same payload under two code fingerprints must occupy two
        # addresses: an upgraded library never hits stale results.
        payload = {"chunk": 0}
        store = _store(tmp_path)
        store.put(content_key("k", payload, fingerprint="old"), {"v": 1},
                  fingerprint="old")
        assert store.get(content_key("k", payload, fingerprint="new")) is None


class TestInterruptResume:
    @pytest.mark.parametrize("stop_after", [1, 2])
    def test_resumed_equals_uninterrupted(self, tmp_path, stop_after):
        seeds = [5, 6, 7]
        plan = scenario_repeat_plan(SMALL, seeds)

        uninterrupted = run_campaign(plan, _store(tmp_path, "full"))

        store = _store(tmp_path, "interrupted")
        partial = run_campaign(
            plan, store, CampaignOptions(stop_after=stop_after)
        )
        assert partial.status == "partial"
        assert partial.exit_code() == 3
        assert partial.chunks_done == stop_after
        resumed = run_campaign(plan, store)
        assert resumed.complete
        # The already-journaled chunks replay as hits, the rest execute.
        assert resumed.cache_hits == stop_after
        assert resumed.executed == len(seeds) - stop_after
        assert resumed.merged.metrics == uninterrupted.merged.metrics
        assert resumed.result_payloads == uninterrupted.result_payloads

    def test_journal_is_flushed_per_chunk(self, tmp_path):
        store = _store(tmp_path)
        plan = scenario_repeat_plan(SMALL, [1, 2])
        run_campaign(plan, store, CampaignOptions(stop_after=1))
        journal = read_events(
            store.campaign_dir(plan.campaign_id) / "journal.jsonl"
        )
        done = [e for e in journal if e["event"] == "chunk_done"]
        assert len(done) == 1
        assert store.contains(done[0]["key"])

    def test_lost_object_is_recomputed_on_resume(self, tmp_path):
        store = _store(tmp_path)
        plan = scenario_repeat_plan(SMALL, [1, 2])
        run_campaign(plan, store)
        # Simulate a gc'd/corrupted object behind a journaled chunk.
        victim = plan.chunks[0].key
        (store.root / "objects" / victim[:2] / f"{victim}.json").unlink()
        outcome = run_campaign(plan, store)
        assert outcome.complete
        assert outcome.executed == 1 and outcome.cache_hits == 1

    def test_keyboard_interrupt_checkpoints(self, tmp_path, monkeypatch):
        store = _store(tmp_path)
        plan = scenario_repeat_plan(SMALL, [1, 2, 3])
        real = EXECUTORS["scenario"]
        calls = []

        def _interrupt_after_one(payload):
            if calls:
                raise KeyboardInterrupt
            calls.append(1)
            return real(payload)

        monkeypatch.setitem(EXECUTORS, "scenario", _interrupt_after_one)
        outcome = run_campaign(plan, store)
        assert outcome.status == "interrupted"
        assert outcome.exit_code() == 130
        journal = read_events(
            store.campaign_dir(plan.campaign_id) / "journal.jsonl"
        )
        assert sum(e["event"] == "chunk_done" for e in journal) == 1
        # And the resume completes, bit-identical to a clean run.
        monkeypatch.setitem(EXECUTORS, "scenario", real)
        resumed = run_campaign(plan, store)
        clean = run_campaign(plan, _store(tmp_path, "clean"))
        assert resumed.complete
        assert resumed.merged.metrics == clean.merged.metrics


class TestManifests:
    def test_plan_from_manifest_round_trips(self, tmp_path):
        for plan in (
            mc_plan("incompleteness", n=30, p=0.3, trials=5000, seed=1, chunks=4),
            scenario_repeat_plan(SMALL, [4, 5]),
        ):
            rebuilt = plan_from_manifest(plan.manifest())
            assert rebuilt.campaign_id == plan.campaign_id
            assert [c.key for c in rebuilt.chunks] == [c.key for c in plan.chunks]

    def test_plan_from_manifest_rejects_key_drift(self, tmp_path):
        plan = mc_plan("incompleteness", n=30, p=0.3, trials=5000, seed=1, chunks=4)
        manifest = plan.manifest()
        manifest["chunks"][0]["key"] = "0" * 64  # stale code fingerprint
        with pytest.raises(ConfigurationError):
            plan_from_manifest(manifest)

    def test_unknown_estimator_rejected(self):
        with pytest.raises(ConfigurationError):
            mc_plan("not_an_estimator", n=10, p=0.1, trials=100, seed=0)

    def test_status_reports_progress(self, tmp_path):
        store = _store(tmp_path)
        plan = scenario_repeat_plan(SMALL, [1, 2])
        run_campaign(plan, store, CampaignOptions(stop_after=1))
        info = campaign_status(store, plan.campaign_id)
        assert info["chunks_done"] == 1
        assert info["chunks_total"] == 2
        assert not info["complete"]


# ----------------------------------------------------------------------
# Liveness: stuck-worker timeout and in-process retry
# ----------------------------------------------------------------------
def _sleepy_executor(payload):
    # Stuck only inside a pool worker; the in-process retry is instant.
    if os.getpid() != payload["main_pid"]:
        time.sleep(60.0)
    return {"value": payload["value"]}


def _sleepy_merger(_params, results):
    return sum(r["value"] for r in results)


def _sleepy_plan(count):
    chunks = tuple(
        ChunkTask(
            index=i,
            kind="sleepy",
            payload={"value": i + 1, "main_pid": os.getpid()},
            key=content_key("sleepy", {"i": i, "pid": os.getpid()}),
            replications=1,
        )
        for i in range(count)
    )
    return CampaignPlan(
        campaign_id="sleepytest0000", kind="sleepy", params={}, chunks=chunks
    )


class TestLiveness:
    def test_stuck_worker_times_out_and_retries_in_process(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setitem(EXECUTORS, "sleepy", _sleepy_executor)
        monkeypatch.setitem(MERGERS, "sleepy", _sleepy_merger)
        plan = _sleepy_plan(2)
        store = _store(tmp_path)
        outcome = run_campaign(
            plan, store,
            CampaignOptions(workers=2, chunk_timeout=0.5, max_retries=1),
        )
        assert outcome.complete
        assert outcome.merged == 3
        events = read_events(
            store.campaign_dir(plan.campaign_id) / "telemetry.jsonl"
        )
        kinds = [e["event"] for e in events]
        assert "chunk_timeout" in kinds
        assert "chunk_retry" in kinds

    def test_failing_chunk_marks_campaign_failed(self, tmp_path, monkeypatch):
        def _always_fails(_payload):
            raise RuntimeError("boom")

        monkeypatch.setitem(EXECUTORS, "sleepy", _always_fails)
        monkeypatch.setitem(MERGERS, "sleepy", _sleepy_merger)
        plan = _sleepy_plan(1)
        outcome = run_campaign(plan, _store(tmp_path))
        assert outcome.status == "failed"
        assert outcome.exit_code() == 2
        assert outcome.failed_chunks == (0,)
