"""Tests for the pure detection rules (Section 4.2).

These are the heart of the paper's accuracy argument; every clause of
both rules is exercised separately.
"""

import pytest

from repro.fds.detector import (
    DetectionInputs,
    apply_ch_failure_rule,
    apply_failure_rule,
)


def inputs(heartbeats=(), digests=None, update_from=None):
    return DetectionInputs(
        heartbeats=frozenset(heartbeats),
        digests={k: frozenset(v) for k, v in (digests or {}).items()},
        update_received_from=update_from,
    )


class TestFailureRule:
    def test_silent_node_with_no_witness_detected(self):
        result = apply_failure_rule({5}, inputs())
        assert result == frozenset({5})

    def test_heartbeat_clears_suspicion(self):
        assert apply_failure_rule({5}, inputs(heartbeats=[5])) == frozenset()

    def test_own_digest_clears_suspicion(self):
        # Clause 1: the digest *from* v counts even without its heartbeat.
        assert apply_failure_rule({5}, inputs(digests={5: []})) == frozenset()

    def test_witness_digest_clears_suspicion(self):
        # Clause 2: any member's digest reflecting v's heartbeat.
        assert (
            apply_failure_rule({5}, inputs(digests={7: [5]})) == frozenset()
        )

    def test_multiple_members_partitioned_correctly(self):
        result = apply_failure_rule(
            {4, 5, 6, 7},
            inputs(heartbeats=[4], digests={9: [5], 6: []}),
        )
        assert result == frozenset({7})

    def test_empty_expected_set(self):
        assert apply_failure_rule(set(), inputs()) == frozenset()

    def test_digest_clauses_disabled(self):
        # The R-2 ablation: witness digests no longer count...
        assert apply_failure_rule(
            {5}, inputs(digests={7: [5]}), use_digests=False
        ) == frozenset({5})
        # ...but the direct heartbeat still does.
        assert apply_failure_rule(
            {5}, inputs(heartbeats=[5]), use_digests=False
        ) == frozenset()

    def test_digest_from_target_still_counts_when_disabled(self):
        # With R-2 disabled no digests exist at all, but the rule function
        # treats a digest *from* the target as first-class evidence
        # regardless, since it proves liveness directly.
        assert apply_failure_rule(
            {5}, inputs(digests={5: []}), use_digests=False
        ) == frozenset()


class TestChFailureRule:
    def test_all_conditions_met_detects(self):
        assert apply_ch_failure_rule(0, inputs())

    def test_ch_heartbeat_blocks(self):
        assert not apply_ch_failure_rule(0, inputs(heartbeats=[0]))

    def test_ch_digest_blocks(self):
        assert not apply_ch_failure_rule(0, inputs(digests={0: []}))

    def test_witness_blocks(self):
        assert not apply_ch_failure_rule(0, inputs(digests={3: [0]}))

    def test_update_blocks(self):
        # Condition 3: the R-3 update arrived -- the CH is alive.
        assert not apply_ch_failure_rule(0, inputs(update_from=0))

    def test_update_from_other_head_does_not_block(self):
        assert apply_ch_failure_rule(0, inputs(update_from=9))


class TestFailStopSoundness:
    def test_crashed_node_always_detected(self):
        # Under fail-stop a crashed node produces no evidence of any kind,
        # so whatever else arrives, the rule must flag it.
        evidence_rich = inputs(
            heartbeats=[1, 2, 3], digests={1: [2, 3], 2: [1, 3], 3: [1, 2]}
        )
        assert apply_failure_rule({9}, evidence_rich) == frozenset({9})

    def test_no_false_detection_with_complete_evidence(self):
        members = set(range(1, 20))
        full = inputs(heartbeats=members)
        assert apply_failure_rule(members, full) == frozenset()
