"""Tests for the Section 5 closed-form measures (Figures 5-7)."""

import math

import pytest

from repro.analysis.ch_false_detection import (
    p_false_detection_on_ch,
    p_false_detection_on_ch_log10,
)
from repro.analysis.false_detection import (
    p_false_detection,
    p_false_detection_literal,
    p_false_detection_log10,
)
from repro.analysis.geometry import (
    cluster_area,
    neighborhood_area,
    overlap_fraction,
    worst_case_fraction,
)
from repro.analysis.incompleteness import (
    p_incompleteness,
    p_incompleteness_literal,
    p_incompleteness_log10,
)
from repro.analysis.sweep import PAPER_N_VALUES, PAPER_P_GRID
from repro.errors import AnalysisError, ConfigurationError


class TestGeometry:
    def test_au(self):
        assert cluster_area(100.0) == pytest.approx(math.pi * 1e4)

    def test_an_worst_case(self):
        expected = 1e4 * (2 * math.pi / 3 - math.sqrt(3) / 2)
        assert neighborhood_area(100.0) == pytest.approx(expected)

    def test_an_center_equals_au(self):
        assert neighborhood_area(0.0) == pytest.approx(cluster_area())

    def test_member_must_be_inside_cluster(self):
        with pytest.raises(AnalysisError):
            neighborhood_area(150.0)

    def test_fraction_matches_paper_value(self):
        assert worst_case_fraction() == pytest.approx(0.391, abs=5e-4)
        assert overlap_fraction(100.0) == pytest.approx(worst_case_fraction())


class TestFalseDetection:
    @pytest.mark.parametrize("n", PAPER_N_VALUES)
    @pytest.mark.parametrize("p", [0.05, 0.2, 0.35, 0.5])
    def test_literal_equals_closed_form(self, n, p):
        literal = p_false_detection_literal(n, p)
        closed = p_false_detection(n, p)
        if closed > 0:
            assert literal == pytest.approx(closed, rel=1e-9)
        else:
            assert literal == 0.0

    def test_known_value_n50_p05(self):
        # p^2 (1 - a/4)^48 at p=0.5.
        a = worst_case_fraction()
        expected = 0.25 * (1 - a * 0.25) ** 48
        assert p_false_detection(50, 0.5) == pytest.approx(expected)

    def test_paper_magnitudes(self):
        # Figure 5's axis spans [1e-25, 1]; our curves must live there.
        assert 1e-4 < p_false_detection(50, 0.5) < 1e-2
        assert 1e-25 < p_false_detection(100, 0.05) < 1e-18

    def test_zero_loss_means_perfect_accuracy(self):
        assert p_false_detection(50, 0.0) == 0.0
        assert p_false_detection_log10(50, 0.0) == -math.inf

    def test_interior_member_safer_than_edge(self):
        edge = p_false_detection(50, 0.3)
        interior = p_false_detection(50, 0.3, distance=20.0)
        assert interior < edge

    def test_center_member(self):
        # At d=0 every other member is a neighbor: maximal witnessing.
        center = p_false_detection(50, 0.3, distance=0.0)
        assert center < p_false_detection(50, 0.3, distance=50.0)

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            p_false_detection(1, 0.1)
        with pytest.raises(ConfigurationError):
            p_false_detection(50, 1.2)


class TestChFalseDetection:
    def test_known_value(self):
        # p^3 (p(2-p))^(N-2)
        expected = 0.125 * (0.5 * 1.5) ** 48
        assert p_false_detection_on_ch(50, 0.5) == pytest.approx(expected)

    def test_paper_claims(self):
        assert p_false_detection_on_ch(50, 0.5) < 1e-6
        assert p_false_detection_on_ch_log10(100, 0.05) < -100.0

    def test_log10_consistent_with_linear(self):
        log10_value = p_false_detection_on_ch_log10(100, 0.05)
        assert math.isfinite(log10_value)
        assert p_false_detection_on_ch(100, 0.05) == pytest.approx(
            10.0**log10_value, rel=1e-9
        )

    def test_linear_underflows_to_zero_below_float_range(self):
        # At N=320, p=0.05 the measure sits below 1e-307: the linear form
        # clamps to 0 while the log form stays exact.
        assert p_false_detection_on_ch_log10(320, 0.05) < -307
        assert p_false_detection_on_ch(320, 0.05) == 0.0

    def test_dch_offset_increases_risk(self):
        centered = p_false_detection_on_ch(50, 0.4)
        offset = p_false_detection_on_ch(50, 0.4, dch_distance=80.0)
        assert offset > centered

    def test_ch_riskier_than_dch_everywhere(self):
        # The paper's "a bit surprising" observation, pointwise.
        for n in PAPER_N_VALUES:
            for p in PAPER_P_GRID:
                assert p_false_detection(n, p) > p_false_detection_on_ch(n, p)


class TestIncompleteness:
    @pytest.mark.parametrize("n", PAPER_N_VALUES)
    @pytest.mark.parametrize("p", [0.05, 0.25, 0.5])
    def test_literal_equals_closed_form(self, n, p):
        literal = p_incompleteness_literal(n, p)
        closed = p_incompleteness(n, p)
        if closed > 0:
            assert literal == pytest.approx(closed, rel=1e-9)
        else:
            assert literal == 0.0

    def test_known_value(self):
        a = worst_case_fraction()
        expected = 0.5 * (1 - a * 0.125) ** 48
        assert p_incompleteness(50, 0.5) == pytest.approx(expected)

    def test_bounded_by_p(self):
        # Peer forwarding can only help: P^ <= p always.
        for n in PAPER_N_VALUES:
            for p in PAPER_P_GRID:
                assert p_incompleteness(n, p) <= p

    def test_density_shrinkage(self):
        assert p_incompleteness(100, 0.05) < 1e-4 * p_incompleteness(50, 0.05)


class TestMonotonicity:
    @pytest.mark.parametrize(
        "measure",
        [p_false_detection, p_false_detection_on_ch, p_incompleteness],
    )
    def test_increasing_in_p(self, measure):
        for n in PAPER_N_VALUES:
            log_values = []
            for p in PAPER_P_GRID:
                if measure is p_false_detection:
                    log_values.append(p_false_detection_log10(n, p))
                elif measure is p_false_detection_on_ch:
                    log_values.append(p_false_detection_on_ch_log10(n, p))
                else:
                    log_values.append(p_incompleteness_log10(n, p))
            assert all(a < b for a, b in zip(log_values, log_values[1:]))

    @pytest.mark.parametrize(
        "log_measure",
        [p_false_detection_log10, p_false_detection_on_ch_log10,
         p_incompleteness_log10],
    )
    def test_decreasing_in_n(self, log_measure):
        for p in PAPER_P_GRID:
            values = [log_measure(n, p) for n in (25, 50, 75, 100, 150)]
            assert all(a > b for a, b in zip(values, values[1:]))
