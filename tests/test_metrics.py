"""Tests for the metrics layer."""

import pytest

from repro.errors import AnalysisError
from repro.failure.injection import FailureInjector
from repro.fds.reports import ReportHistory
from repro.metrics.collectors import collect_message_counts, energy_summary
from repro.metrics.properties import (
    detection_latency,
    evaluate_histories,
    evaluate_properties,
)
from repro.metrics.summary import summarize
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import deploy


class TestPropertyReport:
    def test_clean_run(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, _layout, _tracer, _network = deploy(placement)
        deployment.run_executions(2)
        report = evaluate_properties(deployment)
        assert report.is_accurate and report.is_complete
        assert report.mean_completeness == 1.0
        assert report.crashed_count == 0

    def test_crash_scores(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(2)
        report = evaluate_properties(deployment)
        assert report.completeness == {victim: 1.0}
        assert report.crashed_count == 1
        assert report.operational_count == 10

    def test_detection_latency(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, layout, tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[0]
        event = injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(2)
        latencies = detection_latency(tracer, {victim: event.time})
        assert latencies[victim] is not None
        assert 0 < latencies[victim] < deployment.config.phi

    def test_latency_none_when_never_detected(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        _deployment, _layout, tracer, _network = deploy(placement)
        assert detection_latency(tracer, {5: 1.0}) == {5: None}


class TestEvaluateHistories:
    def test_generic_scoring(self, rng):
        placement = cluster_disk_placement(5, 100.0, rng)
        _deployment, _layout, _tracer, network = deploy(placement)
        histories = {nid: ReportHistory() for nid in network.nodes}
        network.crash(3)
        for nid, history in histories.items():
            if nid in (0, 1):
                history.add(frozenset({3}))
        histories[2].add(frozenset({4}))  # false suspicion of a live node
        report = evaluate_histories(network, histories)
        assert report.completeness[3] == pytest.approx(2 / 5)
        assert (2, 4) in report.accuracy_violations
        assert not report.is_complete


class TestCollectors:
    def test_message_counts(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, _layout, _tracer, _network = deploy(placement, p=0.2, seed=1)
        deployment.run_executions(3)
        counts = collect_message_counts(deployment)
        assert counts.transmissions > 0
        assert 0.1 < counts.loss_rate < 0.3

    def test_energy_summary_none(self):
        assert energy_summary(None) == {}


class TestSummarize:
    def test_statistics(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.std == pytest.approx(1.1180339887)
        assert s.stderr == pytest.approx(s.std / 2)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarize([])
