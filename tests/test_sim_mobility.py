"""Tests for mobility models."""

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.medium import RadioMedium
from repro.sim.mobility import RandomWaypoint, StaticPlacement
from repro.util.geometry import Vec2


def make_medium_with_nodes(count=5):
    sim = Simulator()
    medium = RadioMedium(sim, transmission_range=100.0, max_delay=0.01)
    rng = np.random.default_rng(1)
    for i in range(count):
        medium.register(
            i,
            Vec2(float(rng.uniform(0, 200)), float(rng.uniform(0, 200))),
            lambda e: None,
        )
    return sim, medium


class TestStaticPlacement:
    def test_nothing_moves(self):
        sim, medium = make_medium_with_nodes()
        before = {nid: medium.position_of(nid) for nid in medium.node_ids()}
        model = StaticPlacement()
        model.install(sim, medium, tick=1.0, until=5.0)
        sim.run_until(5.0)
        after = {nid: medium.position_of(nid) for nid in medium.node_ids()}
        assert before == after


class TestRandomWaypoint:
    def test_nodes_move_within_field(self):
        sim, medium = make_medium_with_nodes()
        before = {nid: medium.position_of(nid) for nid in medium.node_ids()}
        model = RandomWaypoint(
            width=200.0, height=200.0, speed_min=5.0, speed_max=10.0,
            rng=np.random.default_rng(2),
        )
        model.install(sim, medium, tick=1.0, until=20.0)
        sim.run_until(20.0)
        moved = sum(
            1
            for nid in medium.node_ids()
            if medium.position_of(nid).distance_to(before[nid]) > 1.0
        )
        assert moved == len(medium.node_ids())
        for nid in medium.node_ids():
            pos = medium.position_of(nid)
            assert -1e-6 <= pos.x <= 200.0 + 1e-6
            assert -1e-6 <= pos.y <= 200.0 + 1e-6

    def test_speed_bound_respected(self):
        sim, medium = make_medium_with_nodes(count=3)
        model = RandomWaypoint(
            width=500.0, height=500.0, speed_min=2.0, speed_max=4.0,
            rng=np.random.default_rng(3),
        )
        positions = {nid: medium.position_of(nid) for nid in medium.node_ids()}
        model.step(medium, dt=1.0)
        for nid in medium.node_ids():
            stride = medium.position_of(nid).distance_to(positions[nid])
            assert stride <= 4.0 + 1e-9

    def test_invalid_speeds(self):
        import pytest

        with pytest.raises(ValueError):
            RandomWaypoint(100, 100, speed_min=5.0, speed_max=1.0)
