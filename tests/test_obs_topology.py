"""The ``meta.topology`` record: emission by every engine, reconstruction.

The record makes the spool self-describing for *structure* the way
``meta.scenario`` makes it self-describing for *time*: the dashboard's
cluster map is rebuilt from the spool alone.  The cross-engine contract
is that the event and array engines serialize byte-identical details for
the same deployment, so topology never perturbs trace fingerprints
differentially.
"""

import json

from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.obs.spool import SpoolingTracer, read_spool
from repro.obs.topology import (
    TOPOLOGY_KIND,
    TopologyView,
    topology_payload,
    topology_view,
)
from repro.sim.trace import TraceRecord


def _spool_scenario(tmp_path, **overrides):
    config = ScenarioConfig(
        cluster_count=2, members_per_cluster=6, crash_count=1,
        executions=2, seed=7, **overrides,
    )
    path = tmp_path / "t.jsonl"
    with SpoolingTracer(path) as tracer:
        run_scenario(config, tracer=tracer)
    return path


class TestEmission:
    def test_event_engine_emits_one_record_after_meta(self, tmp_path):
        records = read_spool(_spool_scenario(tmp_path))
        kinds = [r.kind for r in records[:2]]
        assert kinds == ["meta.scenario", TOPOLOGY_KIND]
        assert sum(1 for r in records if r.kind == TOPOLOGY_KIND) == 1
        detail = records[1].detail
        assert len(detail["clusters"]) == 2
        assert len(detail["nodes"]) == len(detail["x"]) == len(detail["y"])

    def test_array_engine_emits_identical_shape(self, tmp_path):
        records = read_spool(_spool_scenario(tmp_path, engine="array"))
        topo = next(r for r in records if r.kind == TOPOLOGY_KIND)
        assert set(topo.detail) == {
            "clusters", "boundaries", "unclustered", "nodes", "x", "y",
        }
        assert len(topo.detail["clusters"]) == 2

    def test_engines_serialize_identical_topology(self, tmp_path):
        """Same deployment -> byte-identical detail, so the record can
        live inside fingerprinted differential traces."""
        event = read_spool(_spool_scenario(tmp_path / "e"))
        array = read_spool(
            _spool_scenario(tmp_path / "a", engine="array")
        )
        pick = lambda records: next(
            r.detail for r in records if r.kind == TOPOLOGY_KIND
        )
        assert json.dumps(pick(event), sort_keys=True) \
            == json.dumps(pick(array), sort_keys=True)


class TestReconstruction:
    def test_view_crosses_topology_with_crash_stream(self, tmp_path):
        view = topology_view(
            iter(read_spool(_spool_scenario(tmp_path)))
        )
        assert view.found and view.meta.found
        assert len(view.positions) == view.meta.nodes
        roles = view.roles()
        heads = {c["head"] for c in view.clusters}
        assert {n for n, role in roles.items() if role == "head"} == heads
        owners = view.cluster_of()
        for head in heads:
            assert owners[head] == head
        assert len(view.crash_times) == 1
        crashed = next(iter(view.crash_times))
        # The injected crash was detected; latency is positive.
        assert view.first_detection[crashed] > view.crash_times[crashed]

    def test_role_precedence_head_beats_deputy_beats_gateway(self):
        view = TopologyView(
            clusters=[
                {"head": 1, "members": [1, 2, 3], "deputies": [2]},
                {"head": 5, "members": [5, 6], "deputies": [6]},
            ],
            boundaries=[{"owner": 1, "peer": 5, "forwarders": [2, 3]}],
            unclustered=[9],
            positions={n: (0.0, 0.0) for n in (1, 2, 3, 5, 6, 9)},
        )
        roles = view.roles()
        assert roles[1] == "head"
        assert roles[2] == "deputy"     # deputy wins over gateway
        assert roles[3] == "gateway"
        assert roles[6] == "deputy"
        assert roles[9] == "unclustered"

    def test_pre_topology_spool_degrades_gracefully(self):
        records = [
            TraceRecord(time=0.0, kind="meta.scenario", node=None,
                        detail={"nodes": 2, "phi": 30.0, "thop": 0.5,
                                "seed": 0, "executions": 1}),
            TraceRecord(time=3.0, kind="sim.crash", node=1, detail={}),
            TraceRecord(time=4.0, kind="fds.detection", node=0,
                        detail={"target": 1}),
        ]
        view = topology_view(iter(records))
        assert view.found is False
        payload = topology_payload(view)
        assert payload["found"] is False
        assert payload["crashed"] == payload["detected"] == 1
        row = next(n for n in payload["nodes"] if n["id"] == 1)
        assert row["x"] is None and row["crashed_at"] == 3.0
        assert row["detected_at"] == 4.0

    def test_payload_clusters_and_counts(self, tmp_path):
        view = topology_view(
            iter(read_spool(_spool_scenario(tmp_path)))
        )
        payload = topology_payload(view)
        assert payload["found"] is True
        assert sum(c["size"] for c in payload["clusters"]) \
            + len(payload["unclustered"]) == view.meta.nodes
        assert payload["meta"]["nodes"] == view.meta.nodes
        for row in payload["nodes"]:
            assert row["role"] in (
                "head", "deputy", "gateway", "member", "unclustered"
            )
