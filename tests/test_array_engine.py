"""Array engine vs event engine: layout and verdict equivalence, edges.

The round-level numpy engine (``repro.sim.array_engine``) must agree
with the discrete-event reference wherever the two are comparable:

- the vectorized field construction reproduces ``build_clusters`` on the
  ``multi_cluster_field`` lattice exactly (positions, membership,
  deputies, gateway ladders);
- under lossless channels (``perfect`` loss, or Bernoulli p=0) the
  verdict traces are bit-identical;
- under loss -- including the stateful Gilbert-Elliott chains -- the
  loss-independent anchors hold (crashed-target detection latency,
  guaranteed completeness, the accuracy oracle);
- with ``track_energy`` the batched ledger is bit-identical to a scalar
  :class:`~repro.energy.model.EnergyModel` replay of its charge journal,
  and its counters mirror the run's message accounting exactly.

What is deliberately *not* compared: raw Bernoulli-loss completeness,
transmission counts, and transport-level trace records -- those depend
on which copies each engine's private loss stream drops (see
``repro.audit.differential.array_engine_violations``).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.audit.differential import (
    ScenarioSpec,
    array_engine_violations,
    verdict_records,
)
from repro.cluster.geometric import build_clusters
from repro.errors import ExperimentError
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.sim.array_engine import run_array_scenario
from repro.sim.array_engine.layout import PAD, build_array_layout
from repro.topology.generators import multi_cluster_field
from repro.topology.graph import UnitDiskGraph
from repro.util.rng import RngFactory

RADIUS = 100.0


def _config(**overrides) -> ScenarioConfig:
    base = dict(
        cluster_count=4,
        members_per_cluster=10,
        loss_probability=0.0,
        crash_count=2,
        executions=4,
        seed=3,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _real(row: np.ndarray) -> list:
    """The non-PAD entries of a padded int row, in slot order."""
    return [int(v) for v in row if v != PAD]


# ---------------------------------------------------------------------------
# Layout: the vectorized construction vs the real clustering pipeline.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 5, 11])
@pytest.mark.parametrize("spacing_factor", [1.6, 1.25])
def test_layout_matches_oracle(seed, spacing_factor):
    cluster_count, members = 6, 12
    positions = multi_cluster_field(
        cluster_count=cluster_count,
        members_per_cluster=members,
        radius=RADIUS,
        rng=RngFactory(seed).stream("placement"),
        spacing_factor=spacing_factor,
    )
    oracle = build_clusters(UnitDiskGraph(positions, radius=RADIUS))
    arr = build_array_layout(
        cluster_count,
        members,
        RADIUS,
        rng=RngFactory(seed).stream("placement"),
        spacing_factor=spacing_factor,
    )

    # Positions are bit-identical (same stream, same draw order).
    assert arr.node_count == len(positions)
    for nid, pos in positions.items():
        assert arr.xs[nid] == pos.x
        assert arr.ys[nid] == pos.y

    # Cluster membership: heads are NIDs 0..C-1; every Cluster.members
    # frozenset (head included) equals the head + the padded member row.
    assert sorted(oracle.clusters) == list(range(cluster_count))
    assert not oracle.unclustered
    for head, cluster in oracle.clusters.items():
        row = _real(arr.members[head])
        assert cluster.members == frozenset([head, *row])
        assert row == sorted(row)  # slots are NID-ascending
        for nid in row:
            assert arr.assign[nid] == head
        # Deputy ladder: same nodes, same rank order.
        assert tuple(_real(arr.deputies[head])) == cluster.deputies

    # Boundaries: same ordered (owner, peer) pairs, same GW + BGW ladder.
    array_pairs = {
        (int(o), int(p)): _real(slots)
        for o, p, slots in zip(
            arr.boundary_owner, arr.boundary_peer, arr.boundary_gateway_slots
        )
    }
    assert set(array_pairs) == set(oracle.boundaries)
    for (owner, peer), boundary in oracle.boundaries.items():
        ladder = [int(arr.members[owner][s]) for s in array_pairs[(owner, peer)]]
        assert tuple(ladder) == boundary.all_forwarders


# ---------------------------------------------------------------------------
# Verdict equivalence under lossless channels.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_lossless_runs_are_verdict_identical(seed):
    """p=0 consumes no loss randomness: both engines must emit the same
    verdict records at the same times with the same details."""
    config = _config(seed=seed, loss_probability=0.0)
    event = run_scenario(config)
    array = run_scenario(replace(config, engine="array"))
    assert verdict_records(event.tracer) == verdict_records(array.tracer)
    assert event.detection_latencies == array.detection_latencies
    # Lossless runs are fully deterministic, so the per-observer
    # completeness maps must match exactly (seed 7 crashes happen to kill
    # gateway ladders, leaving completeness < 1 -- in both engines alike).
    assert event.properties.completeness == array.properties.completeness
    assert (
        event.properties.accuracy_violations
        == array.properties.accuracy_violations
        == ()
    )
    assert event.summary()["mean_detection_latency"] == (
        array.summary()["mean_detection_latency"]
    )


def test_perfect_loss_kind_is_verdict_identical():
    config = _config(loss_kind="perfect", loss_probability=0.3, seed=9)
    event = run_scenario(config)
    array = run_scenario(replace(config, engine="array"))
    assert verdict_records(event.tracer) == verdict_records(array.tracer)


@pytest.mark.parametrize("seed", [2, 13])
def test_lossy_anchors_hold(seed):
    """Under Bernoulli loss the engines draw from private streams, so only
    the loss-independent anchors are compared -- exactly the soak pair."""
    spec = ScenarioSpec(
        seed=seed,
        cluster_count=4,
        members_per_cluster=10,
        crash_count=2,
        executions=4,
        loss_kind="bernoulli",
        loss_p=0.2,
    )
    event = run_scenario(spec.to_config())
    assert array_engine_violations(spec, event) == []


def test_bounded_loss_guaranteed_completeness():
    """Bounded adversarial loss within the retry budget: both engines must
    deliver completeness 1.0 (the paper's guarantee), checked via the
    differential pair."""
    spec = ScenarioSpec(
        seed=4,
        cluster_count=4,
        members_per_cluster=8,
        crash_count=2,
        executions=4,
        loss_kind="bounded",
        loss_budget=1,
    )
    event = run_scenario(spec.to_config())
    assert event.properties.mean_completeness == 1.0
    assert array_engine_violations(spec, event) == []


# ---------------------------------------------------------------------------
# Edge cases.
# ---------------------------------------------------------------------------


def test_total_loss_detects_everyone_learns_nothing():
    """p=1 drops every message: each CH falsely detects all its members
    (no heartbeats arrive) but no verdict ever crosses a cluster, so
    observer completeness collapses."""
    config = _config(loss_probability=1.0, crash_count=2, engine="array")
    result = run_scenario(config)
    assert result.properties.mean_completeness < 0.1
    # Every crashed member is still detected by its own CH on time.
    for target, latency in result.detection_latencies.items():
        assert latency is not None
    assert result.messages.deliveries == 0


def test_no_crashes_is_quiet():
    config = _config(crash_count=0, loss_probability=0.0)
    event = run_scenario(config)
    array = run_scenario(replace(config, engine="array"))
    assert verdict_records(event.tracer) == verdict_records(array.tracer) == []
    assert array.properties.mean_completeness == 1.0
    assert array.properties.accuracy_violations == ()
    assert array.crash_times == {}


def test_whole_cluster_crashed():
    """Crash count equal to the entire member population: every cluster
    empties out and only heads survive.  With all gateways dead no news
    can cross a boundary, so completeness stalls below 1.0 -- and both
    engines must agree on exactly how far each verdict spread."""
    config = _config(
        cluster_count=3,
        members_per_cluster=4,
        crash_count=12,
        executions=6,
        loss_probability=0.0,
    )
    event = run_scenario(config)
    array = run_scenario(replace(config, engine="array"))
    assert len(array.crash_times) == 12
    assert verdict_records(event.tracer) == verdict_records(array.tracer)
    assert event.properties.completeness == array.properties.completeness
    assert array.properties.mean_completeness < 1.0
    assert set(array.network.operational_ids()) == {0, 1, 2}


def test_distance_loss_runs():
    config = _config(
        loss_kind="distance",
        loss_probability=0.3,
        seed=6,
        engine="array",
    )
    result = run_scenario(config)
    assert 0.0 <= result.properties.mean_completeness <= 1.0
    assert result.messages.deliveries > 0


# ---------------------------------------------------------------------------
# Gilbert-Elliott loss: the stateful chains, vectorized.
# ---------------------------------------------------------------------------


def test_gilbert_array_run_accepted():
    config = _config(loss_kind="gilbert", engine="array")
    result = run_scenario(config)
    assert result.messages.deliveries > 0
    assert 0.0 <= result.properties.mean_completeness <= 1.0
    # Every crashed member is still detected by its own CH on time.
    for latency in result.detection_latencies.values():
        assert latency is not None


def test_gilbert_anchors_hold_at_972_nodes():
    """The soak pair under bursty loss at the paper's mid-scale field:
    12 clusters x (80 members + head) = 972 nodes.  The engines drive
    their chains from private streams, so only the loss-independent
    anchors are compared -- plus the energy ledger sub-pair."""
    spec = ScenarioSpec(
        seed=17,
        cluster_count=12,
        members_per_cluster=80,
        crash_count=2,
        executions=3,
        loss_kind="gilbert",
        loss_p=0.15,
    )
    event = run_scenario(spec.to_config())
    assert array_engine_violations(spec, event) == []


def test_gilbert_never_leaves_good_is_lossless():
    """Degenerate chain: p_gb=0 pins every link in Good and p_good=0
    loses nothing, so both engines must be verdict-bit-identical even
    though each consumed its private stream for the draws."""
    params = (("p_good", 0.0), ("p_bad", 1.0), ("p_gb", 0.0), ("p_bg", 1.0))
    config = _config(loss_kind="gilbert", loss_params=params, seed=11)
    event = run_scenario(config)
    array = run_scenario(replace(config, engine="array"))
    assert verdict_records(event.tracer) == verdict_records(array.tracer)
    assert event.detection_latencies == array.detection_latencies
    assert array.messages.losses == 0


def test_gilbert_always_bad_drops_everything():
    """Degenerate chain: p_gb=1 enters Bad before the first draw (the
    transition precedes the loss draw) and p_bad=1 with p_bg=0 keeps
    every copy lost -- total blackout, like Bernoulli p=1."""
    params = (("p_good", 0.0), ("p_bad", 1.0), ("p_gb", 1.0), ("p_bg", 0.0))
    config = _config(loss_kind="gilbert", loss_params=params, engine="array")
    result = run_scenario(config)
    assert result.messages.deliveries == 0
    assert result.properties.mean_completeness < 0.1
    for latency in result.detection_latencies.values():
        assert latency is not None  # own-CH detections need no messages


def test_gilbert_single_link_ladder_matches_scalar_reference():
    """Sequential single-copy draws on one chain cell consume the stream
    exactly like the scalar model (transition uniform, then loss uniform
    in the new state), so seeding both identically must reproduce the
    same delivered sequence -- correlated bursts included."""
    from repro.sim.array_engine.loss import ArrayLossDraw
    from repro.sim.loss import GilbertElliottLoss

    params = dict(p_good=0.05, p_bad=0.9, p_gb=0.3, p_bg=0.25)
    array = ArrayLossDraw(
        "gilbert", tuple(params.items()),
        loss_probability=0.0, transmission_range=100.0,
        rng=np.random.default_rng(99),
    )
    scalar = GilbertElliottLoss(**params)
    scalar_rng = np.random.default_rng(99)
    got = [bool(array.delivered(1, chain="link")[0]) for _ in range(200)]
    want = [
        not scalar.is_lost(0, 1, 10.0, float(i), scalar_rng)
        for i in range(200)
    ]
    assert got == want
    assert any(got) and not all(got)  # the chain actually burst


def test_gilbert_stationary_loss_rate_matches_scalar():
    from repro.sim.array_engine.loss import ArrayLossDraw
    from repro.sim.loss import GilbertElliottLoss

    params = dict(p_good=0.02, p_bad=0.8, p_gb=0.07, p_bg=0.3)
    array = ArrayLossDraw(
        "gilbert", tuple(params.items()),
        loss_probability=0.0, transmission_range=100.0,
        rng=np.random.default_rng(0),
    )
    assert array.stationary_loss_rate == (
        GilbertElliottLoss(**params).stationary_loss_rate
    )


def test_gilbert_non_ergodic_chain_rejected():
    from repro.sim.array_engine.loss import ArrayLossDraw

    with pytest.raises(ExperimentError, match="ergodic"):
        ArrayLossDraw(
            "gilbert", (("p_gb", 0.0), ("p_bg", 0.0)),
            loss_probability=0.0, transmission_range=100.0,
            rng=np.random.default_rng(0),
        )


# ---------------------------------------------------------------------------
# Energy: the batched ledger vs the scalar model.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("loss_kind", ["perfect", "bernoulli", "gilbert"])
def test_array_energy_bit_identical_to_scalar_replay(loss_kind):
    """Replaying the ledger's charge journal debit by debit through the
    scalar EnergyModel must reproduce every level, counter, total and
    the spread bit for bit -- under any loss kind."""
    from repro.sim.array_engine.energy import replay_journal

    config = _config(
        loss_kind=loss_kind,
        loss_probability=0.25,
        track_energy=True,
        engine="array",
        executions=5,
    )
    result = run_array_scenario(config, record_energy_journal=True)
    ledger = result.energy
    model = replay_journal(ledger)
    assert ledger.totals() == model.totals()
    assert ledger.spread() == model.spread()
    for node in range(ledger.node_count):
        entry = model._entry(node)
        assert entry.level == ledger.level[node]
        assert entry.tx_count == ledger.tx_count[node]
        assert entry.rx_count == ledger.rx_count[node]


def test_array_energy_counts_mirror_message_accounting():
    """One transmit debit per counted transmission, one receive debit per
    delivered copy -- the ledger population rule, under bursty loss."""
    config = _config(
        loss_kind="gilbert", track_energy=True, engine="array", executions=6
    )
    result = run_scenario(config)
    totals = result.energy.totals()
    assert totals["tx_total"] == float(result.messages.transmissions)
    assert totals["rx_total"] == float(result.messages.deliveries)
    assert result.energy.spread() > 0.0  # heads outspend members
    # The scoring surface behaves like the scalar model's.
    frac = result.energy.remaining_fraction(0, result.network.sim.now)
    assert 0.0 <= frac <= 1.0


def test_array_energy_disabled_by_default():
    result = run_scenario(_config(engine="array"))
    assert result.energy is None


# ---------------------------------------------------------------------------
# Distributed formation on the array engine.
# ---------------------------------------------------------------------------


def _formation_pair(**overrides):
    """Run the same protocol-formation scenario on both engines."""
    config = _config(formation="protocol", **overrides)
    event = run_scenario(config)
    array = run_scenario(replace(config, engine="array"))
    return event, array


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_protocol_formation_lossless_bit_identical(seed):
    """The acceptance lock: under lossless channels the vectorized
    formation must converge to the exact ClusterLayout of the event
    engine's ``run_formation`` -- clusters, deputies, boundaries,
    unclustered set -- and the FDS phase that follows must emit
    bit-identical verdict records."""
    from repro.sim.array_engine.formation import formation_cluster_layout

    event, array = _formation_pair(seed=seed, loss_probability=0.0)
    layout = formation_cluster_layout(array.formation)
    assert layout.clusters == event.layout.clusters
    assert layout.boundaries == event.layout.boundaries
    assert layout.unclustered == event.layout.unclustered
    assert verdict_records(event.tracer) == verdict_records(array.tracer)
    assert event.detection_latencies == array.detection_latencies
    assert event.properties.completeness == array.properties.completeness
    assert (
        event.properties.operational_count
        == array.properties.operational_count
    )


def test_protocol_formation_accepts_every_loss_kind():
    for loss_kind in ("perfect", "bernoulli", "bounded", "distance",
                      "gilbert"):
        config = _config(
            formation="protocol", engine="array",
            loss_kind=loss_kind, loss_probability=0.25, seed=5,
        )
        result = run_scenario(config)
        assert result.formation is not None
        assert 0.0 <= result.properties.mean_completeness <= 1.0


def test_protocol_formation_lossy_shape_invariants():
    """Under loss the engines' head sets legitimately diverge, so the
    array outcome is audited structurally instead (the soak's lossy
    leg)."""
    from repro.sim.array_engine.formation import formation_shape_violations

    for seed in range(8):
        config = _config(
            formation="protocol", engine="array",
            loss_probability=0.4, seed=seed, executions=3,
        )
        result = run_scenario(config)
        assert formation_shape_violations(result.formation) == []


def test_fds_rounds_with_nonidentity_heads_match_event():
    """Protocol-formed layouts carry arbitrary head NIDs; the round
    program's knowledge rows, energy debits and trace records must
    address heads by NID, not cluster index.  Form under loss (electing
    heads != 0..C-1), then run a *lossless* FDS phase over the same
    frozen layout on both engines and demand verdict bit-identity."""
    from repro.failure.faultload import make_random_crashes
    from repro.failure.injection import FailureInjector
    from repro.fds.config import FdsConfig
    from repro.fds.service import install_fds
    from repro.sim.array_engine.formation import (
        formation_array_layout,
        formation_cluster_layout,
    )
    from repro.sim.array_engine.loss import ArrayLossDraw
    from repro.sim.array_engine.rounds import ArrayRoundEngine
    from repro.sim.array_engine.runner import _crash_executions
    from repro.sim.loss import build_loss_model
    from repro.sim.network import NetworkConfig, build_network
    from repro.sim.trace import RecordingTracer
    from repro.types import NodeId
    from repro.util.geometry import Vec2

    lossy = run_scenario(_config(
        formation="protocol", engine="array",
        loss_probability=0.4, seed=2, crash_count=0, executions=1,
    ))
    outcome = lossy.formation
    heads = [int(h) for h in outcome.head_ids()]
    assert heads != list(range(len(heads)))  # the interesting case

    cluster_layout = formation_cluster_layout(outcome)
    array_layout = formation_array_layout(outcome)
    fds = FdsConfig()
    executions = 4

    positions = {
        NodeId(i): Vec2(float(outcome.xs[i]), float(outcome.ys[i]))
        for i in range(outcome.node_count)
    }
    event_tracer = RecordingTracer()
    network = build_network(
        positions,
        NetworkConfig(
            transmission_range=outcome.radius, loss_probability=0.0,
            seed=0, vectorized=True,
        ),
        loss_model=build_loss_model("perfect", ()),
        tracer=event_tracer,
    )
    deployment = install_fds(network, cluster_layout, fds, start_time=0.0)
    injector = FailureInjector(network, fds, fds_start=0.0)
    candidates = tuple(
        nid for nid in network.operational_ids()
        if nid not in cluster_layout.heads
    )
    faultload = make_random_crashes(
        candidates, 3, fds, RngFactory(2).stream("faultload"),
        fds_start=0.0, first_execution=1, last_execution=executions - 2,
    )
    faultload.inject(injector)
    deployment.run_executions(executions)

    array_tracer = RecordingTracer()
    crash_exec = _crash_executions(
        faultload, outcome.node_count, executions, fds.phi, 0.0
    )
    engine = ArrayRoundEngine(
        array_layout, fds,
        ArrayLossDraw(
            "perfect", (), loss_probability=0.0,
            transmission_range=outcome.radius,
            rng=np.random.default_rng(0),
        ),
        array_tracer, crash_exec, fds_start=0.0,
    )
    for e in range(executions):
        engine.run_execution(e)

    assert verdict_records(event_tracer) == verdict_records(array_tracer)
    assert len(faultload.events) == 3


# ---------------------------------------------------------------------------
# Formation edge cases, on both engines.
# ---------------------------------------------------------------------------


def _formation_layouts_for_field(xs, ys, radius, loss_p=0.0, iterations=3):
    """Run formation over an explicit field on both engines; return the
    two extracted ClusterLayouts."""
    from repro.cluster.formation import FormationConfig, run_formation
    from repro.sim.array_engine.formation import (
        formation_cluster_layout,
        run_array_formation,
    )
    from repro.sim.array_engine.loss import ArrayLossDraw
    from repro.sim.loss import build_loss_model
    from repro.sim.network import NetworkConfig, build_network
    from repro.types import NodeId
    from repro.util.geometry import Vec2

    config = FormationConfig(iterations=iterations)
    positions = {
        NodeId(i): Vec2(float(x), float(y)) for i, (x, y) in enumerate(zip(xs, ys))
    }
    kind = "perfect" if loss_p == 0.0 else "bernoulli"
    params = () if loss_p == 0.0 else (("p", loss_p),)
    network = build_network(
        positions,
        NetworkConfig(
            transmission_range=radius, loss_probability=loss_p, seed=0,
            vectorized=True,
        ),
        loss_model=build_loss_model(kind, params),
    )
    event_layout = run_formation(network, config)

    loss = ArrayLossDraw(
        kind, params, loss_probability=loss_p, transmission_range=radius,
        rng=np.random.default_rng(1),
    )
    outcome = run_array_formation(
        np.asarray(xs, dtype=float), np.asarray(ys, dtype=float), radius,
        config, loss, np.random.default_rng(2),
    )
    return event_layout, formation_cluster_layout(outcome)


def test_formation_single_node_field():
    event_layout, array_layout = _formation_layouts_for_field(
        [0.0], [0.0], RADIUS
    )
    assert event_layout.clusters == array_layout.clusters
    assert list(array_layout.clusters) == [0]
    assert array_layout.clusters[0].members == frozenset({0})
    assert not array_layout.unclustered


def test_formation_fully_connected_single_cluster():
    """Everyone in range of everyone: exactly one cluster, headed by the
    lowest NID, identical on both engines."""
    rng = np.random.default_rng(42)
    xs = rng.uniform(0, 60, size=30)
    ys = rng.uniform(0, 60, size=30)
    event_layout, array_layout = _formation_layouts_for_field(xs, ys, RADIUS)
    assert event_layout.clusters == array_layout.clusters
    assert event_layout.boundaries == array_layout.boundaries
    assert list(array_layout.clusters) == [0]
    assert array_layout.clusters[0].members == frozenset(range(30))


def test_formation_total_loss_terminates_with_singletons():
    """p=1 drops every formation message: every node eventually declares
    itself (nobody suppresses it), no join ever lands, and both engines
    -- whose private draws all lose regardless of the uniforms -- end at
    N singleton clusters."""
    rng = np.random.default_rng(3)
    xs = rng.uniform(0, 200, size=12)
    ys = rng.uniform(0, 200, size=12)
    event_layout, array_layout = _formation_layouts_for_field(
        xs, ys, RADIUS, loss_p=1.0
    )
    assert event_layout.clusters == array_layout.clusters
    assert sorted(array_layout.clusters) == list(range(12))
    for head, cluster in array_layout.clusters.items():
        assert cluster.members == frozenset({head})
    assert not array_layout.boundaries


def test_formation_degenerate_extra_iterations_are_noops():
    """Once every node is marked, further F4 iterations change nothing:
    iterations=3 and iterations=8 converge to the same layout on both
    engines."""
    rng = np.random.default_rng(7)
    xs = rng.uniform(0, 300, size=40)
    ys = rng.uniform(0, 300, size=40)
    base_event, base_array = _formation_layouts_for_field(
        xs, ys, RADIUS, iterations=3
    )
    long_event, long_array = _formation_layouts_for_field(
        xs, ys, RADIUS, iterations=8
    )
    assert base_event.clusters == long_event.clusters == long_array.clusters
    assert base_array.clusters == long_array.clusters
    assert base_array.boundaries == long_array.boundaries
    assert base_array.unclustered == long_array.unclustered


def test_formation_differential_pair_clean():
    """The soak's ``differential:formation`` pair on representative
    specs: lossless cross-engine bit-identity plus the lossy structural
    audit."""
    from repro.audit.differential import formation_violations

    for spec in (
        ScenarioSpec(seed=21, cluster_count=3, members_per_cluster=9,
                     crash_count=2, executions=4, loss_kind="perfect"),
        ScenarioSpec(seed=33, cluster_count=4, members_per_cluster=8,
                     crash_count=1, executions=4, loss_kind="bernoulli",
                     loss_p=0.3),
    ):
        assert formation_violations(spec) == []


# ---------------------------------------------------------------------------
# Guard rails: unsupported features fail loudly, not silently wrong.
# ---------------------------------------------------------------------------


def test_unknown_engine_rejected():
    with pytest.raises(ExperimentError, match="engine"):
        _config(engine="quantum")
