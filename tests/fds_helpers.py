"""Shared helpers for FDS integration tests."""

from __future__ import annotations

from typing import Callable

from repro.cluster.geometric import build_clusters
from repro.fds.config import FdsConfig
from repro.fds.service import install_fds
from repro.sim.loss import LossModel
from repro.sim.network import NetworkConfig, build_network
from repro.sim.trace import RecordingTracer
from repro.topology.graph import UnitDiskGraph


class TargetedLoss(LossModel):
    """Drops exactly the copies a predicate selects; everything else flows.

    The deterministic fault injector for protocol tests: e.g. "every copy
    sent by the CH to the DCH between t=10 and t=20 is lost".
    """

    def __init__(self, predicate: Callable[[int, int, float], bool]) -> None:
        self.predicate = predicate
        self.dropped = 0

    def is_lost(self, sender, receiver, distance, time, rng) -> bool:
        if self.predicate(int(sender), int(receiver), float(time)):
            self.dropped += 1
            return True
        return False


class PhasedLoss(LossModel):
    """Bernoulli loss with probability ``p`` until ``cutoff``, then perfect.

    Lets a test stress the protocol and then observe whether it quiesces
    to a clean state once the channel recovers.
    """

    def __init__(self, p: float, cutoff: float) -> None:
        self.p = p
        self.cutoff = cutoff

    def is_lost(self, sender, receiver, distance, time, rng) -> bool:
        if time >= self.cutoff:
            return False
        return bool(rng.uniform() < self.p)


def deploy(placement, p=0.0, seed=0, fds_config=None, loss_model=None,
           max_backups=2, deputy_count=2):
    """Build graph + layout + network + FDS in one call.

    Returns (deployment, layout, tracer, network).
    """
    graph = UnitDiskGraph(placement, radius=100.0)
    layout = build_clusters(
        graph, deputy_count=deputy_count, max_backups=max_backups
    )
    tracer = RecordingTracer()
    network = build_network(
        placement,
        NetworkConfig(loss_probability=p, seed=seed),
        loss_model=loss_model,
        tracer=tracer,
    )
    cfg = fds_config if fds_config is not None else FdsConfig(phi=5.0, thop=0.5)
    deployment = install_fds(network, layout, cfg)
    return deployment, layout, tracer, network
