"""Differential conformance harness: clean stacks check clean, and each
historical forwarding bug, when deliberately reintroduced, is caught and
shrunk to a seeded pytest repro.

The mutants reproduce the exact pre-fix logic of
``InterclusterForwarder`` (plus the current tracing, which the fixes did
not change semantically) so the harness is graded against the real bugs,
not strawmen.  Mutation checks disable the parallel-fabric pair:
monkeypatches do not cross process boundaries.
"""

import unittest.mock as mock

import numpy as np
import pytest

from repro.audit.differential import (
    ScenarioSpec,
    check_spec,
    probe_forwarder_conformance,
    random_spec,
    repro_snippet,
    shrink_spec,
    trace_fingerprint,
)
from repro.audit.soak import SoakOptions, run_soak, soak_iteration
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.fds import events as ev
from repro.fds.intercluster import InterclusterForwarder


# ----------------------------------------------------------------------
# The three pre-fix behaviours, as monkeypatchable mutants
# ----------------------------------------------------------------------
def _mutant_arm_clobbers(self, dest, delay, failures, origin, standby=False):
    existing = self._timers.get(dest)
    if existing is not None:
        existing.stop()
    self._armed_failures[dest] = failures
    self._trace(
        ev.INTER_ARM,
        dest=int(dest),
        origin=int(origin),
        delay=delay,
        failures=self._ids(failures),
        standby=standby,
    )

    def expire():
        self._on_timeout(dest, failures, origin, standby)

    self._timers[dest] = self._node.timers.after(
        delay, expire, label="fds.intercluster_wait"
    )


def _mutant_superset_ack(self, report):
    if self._origin_timer is None:
        return
    self._trace(ev.ORIGIN_COVERED, covered=self._ids(report.failures))
    if report.failures >= self._origin_pending:
        self._origin_timer.stop()
        self._origin_timer = None


def _mutant_backup_max(self, dest, origin):
    if dest in self.duties:
        return self.duties[dest][1]
    return max((n for _r, n in self.duties.values()), default=0)


MUTANTS = {
    "arm-clobbers-watch": ("_arm", _mutant_arm_clobbers),
    "origin-superset-ack": ("on_overheard_report", _mutant_superset_ack),
    "backup-count-max": ("_backup_count_for", _mutant_backup_max),
}


class TestCleanStackChecksClean:
    def test_default_spec_has_no_violations(self):
        assert check_spec(ScenarioSpec(seed=7, loss_kind="bounded")) == []

    def test_seed_1342382291_no_digests_pair_clean(self):
        """Permanent regression repro: soak seed 7 at defaults sampled
        this spec, whose digest-free ablation pair flagged
        ``audit:round-structure`` transmissions past the active window
        (offset 18.397 > 17.500).  Two fixes keep it clean: stale
        hearsay in forwarded reports no longer re-poisons a CH that
        heard the target's heartbeat, and the round-structure audit
        abstains for digest-free forwarding configs whose conformant
        cascades legitimately chain ladder generations."""
        spec = ScenarioSpec(
            seed=1342382291,
            cluster_count=4,
            members_per_cluster=16,
            crash_count=2,
            executions=7,
            loss_kind="bernoulli",
            loss_p=0.35,
            loss_budget=1,
            spacing_factor=1.25,
            max_backups=1,
        )
        assert check_spec(spec, check_parallel=False) == []

    def test_random_specs_have_no_violations(self):
        rng = np.random.default_rng(1234)
        for _ in range(3):
            spec = random_spec(rng)
            assert check_spec(spec, check_parallel=False) == [], spec

    def test_probes_clean_on_fixed_code(self):
        assert probe_forwarder_conformance(ScenarioSpec(seed=3)) == []


class TestDifferentialPairs:
    def test_vectorized_scalar_bit_identical(self):
        spec = ScenarioSpec(seed=11, loss_kind="bernoulli", loss_p=0.25)
        a = run_scenario(spec.to_config(vectorized=True))
        b = run_scenario(spec.to_config(vectorized=False))
        assert trace_fingerprint(a.tracer) == trace_fingerprint(b.tracer)

    def test_fingerprint_distinguishes_seeds(self):
        a = run_scenario(ScenarioSpec(seed=1).to_config())
        b = run_scenario(ScenarioSpec(seed=2).to_config())
        assert trace_fingerprint(a.tracer) != trace_fingerprint(b.tracer)


class TestMutationsCaughtAndShrunk:
    @pytest.mark.parametrize("name", sorted(MUTANTS))
    def test_mutant_yields_shrunk_seeded_repro(self, name):
        attr, fn = MUTANTS[name]
        spec = ScenarioSpec(seed=7, loss_kind="bounded")
        with mock.patch.object(InterclusterForwarder, attr, fn):
            failure = soak_iteration(
                spec, check_parallel=False, max_shrink_evals=16
            )
            assert failure is not None, f"mutant {name} was not caught"
            assert failure.violations
            # The shrunk spec still reproduces under the mutant ...
            assert check_spec(failure.shrunk, check_parallel=False)
        # ... the snippet is a valid, ready-to-paste pytest module ...
        compile(failure.snippet, "<repro>", "exec")
        assert "ScenarioSpec(" in failure.snippet
        assert f"seed={failure.shrunk.seed}" in failure.snippet
        # ... and names the violation it reproduces.
        assert failure.violations[0].kind in failure.snippet

    def test_backup_count_mutant_caught_end_to_end(self):
        # The trace audit (not just the directed probe) catches the
        # wrong-ladder bug in a real multi-boundary scenario.
        from repro.audit.invariants import audit_forwarder_conformance

        attr, fn = MUTANTS["backup-count-max"]
        cfg = ScenarioConfig(
            cluster_count=4,
            members_per_cluster=16,
            crash_count=3,
            executions=5,
            seed=18,
            loss_kind="bernoulli",
            loss_params=(("p", 0.25),),
            spacing_factor=1.25,
            max_backups=3,
            fds=ScenarioSpec().fds_config(),
        )
        with mock.patch.object(InterclusterForwarder, attr, fn):
            result = run_scenario(cfg)
            findings = audit_forwarder_conformance(result.tracer, cfg.fds)
        assert findings
        assert "ladder" in findings[0].description


class TestShrinking:
    def test_shrink_respects_floors(self):
        spec = ScenarioSpec(
            seed=1,
            cluster_count=4,
            members_per_cluster=16,
            crash_count=3,
            executions=7,
            loss_kind="bounded",
        )
        small = shrink_spec(spec, still_fails=lambda s: True, max_evals=64)
        assert small.cluster_count == 2
        assert small.members_per_cluster == 4
        assert small.crash_count == 0
        assert small.executions == 3
        assert small.loss_kind == "perfect"

    def test_shrink_keeps_spec_when_nothing_simpler_fails(self):
        spec = ScenarioSpec(seed=1)
        assert shrink_spec(spec, still_fails=lambda s: False) == spec


class TestSoakLoop:
    def test_bounded_soak_runs_clean(self, tmp_path):
        result = run_soak(
            SoakOptions(iterations=2, seed=9, out_dir=tmp_path)
        )
        assert result.clean
        assert result.iterations == 2
        assert list(tmp_path.iterdir()) == []

    def test_violations_written_as_repro_files(self, tmp_path):
        attr, fn = MUTANTS["origin-superset-ack"]
        with mock.patch.object(InterclusterForwarder, attr, fn):
            result = run_soak(
                SoakOptions(
                    iterations=4,
                    seed=9,
                    out_dir=tmp_path,
                    check_parallel=False,
                    max_shrink_evals=8,
                )
            )
        assert not result.clean
        failure = result.failures[0]
        assert failure.repro_path is not None and failure.repro_path.exists()
        content = failure.repro_path.read_text(encoding="utf-8")
        compile(content, str(failure.repro_path), "exec")
        assert "check_spec" in content


class TestScenarioConfigLossSpec:
    def test_unknown_loss_kind_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            ScenarioConfig(loss_kind="quantum")

    def test_bounded_kind_threads_through(self):
        cfg = ScenarioConfig(
            cluster_count=2,
            members_per_cluster=8,
            crash_count=1,
            executions=4,
            loss_kind="bounded",
            loss_params=(("p", 0.3), ("budget", 2.0)),
        )
        result = run_scenario(cfg)
        assert result.network.medium.loss_model.budget == 2
        assert result.messages.losses <= 2
