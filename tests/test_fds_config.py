"""Tests for FDS configuration and timing derivations."""

import pytest

from repro.errors import ConfigurationError
from repro.fds.config import FdsConfig


class TestValidation:
    def test_defaults_valid(self):
        FdsConfig()

    def test_phi_must_fit_execution(self):
        with pytest.raises(ConfigurationError, match="phi"):
            FdsConfig(phi=1.0, thop=0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"phi": -1.0},
            {"thop": 0.0},
            {"max_forward_retries": -1},
            {"energy_floor": 0.0},
            {"wait_modulus": 1},
        ],
    )
    def test_invalid_fields(self, kwargs):
        with pytest.raises(ConfigurationError):
            FdsConfig(**kwargs)


class TestTiming:
    def test_round_starts(self):
        cfg = FdsConfig(phi=30.0, thop=0.5)
        assert cfg.round_start(60.0, 0) == 60.0
        assert cfg.round_start(60.0, 2) == 61.0

    def test_execution_duration(self):
        cfg = FdsConfig(phi=30.0, thop=0.5, recovery_rounds=2.0)
        assert cfg.execution_duration() == pytest.approx(2.5)
        assert cfg.r3_end_offset == pytest.approx(1.5)

    def test_implicit_ack_window_is_2_thop(self):
        # Figure 3: the sender retransmits after 2 * Thop.
        assert FdsConfig(thop=0.7).implicit_ack_window == pytest.approx(1.4)

    def test_bgw_standby_ladder(self):
        # Section 4.3: BGW rank k waits k * 2*Thop.
        cfg = FdsConfig(thop=0.5)
        assert cfg.bgw_standby(1) == pytest.approx(1.0)
        assert cfg.bgw_standby(3) == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            cfg.bgw_standby(0)

    def test_post_forward_wait(self):
        # Section 4.3: after forwarding, wait (n + 1) * 2*Thop.
        cfg = FdsConfig(thop=0.5)
        assert cfg.post_forward_wait(0) == pytest.approx(1.0)
        assert cfg.post_forward_wait(2) == pytest.approx(3.0)
        with pytest.raises(ConfigurationError):
            cfg.post_forward_wait(-1)
