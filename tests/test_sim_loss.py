"""Tests for loss models."""

import numpy as np
import pytest

from repro.sim.loss import (
    BernoulliLoss,
    CompositeLoss,
    DistanceDependentLoss,
    GilbertElliottLoss,
    PerfectLinks,
)


@pytest.fixture
def gen():
    return np.random.default_rng(0)


class TestPerfectLinks:
    def test_never_loses(self, gen):
        model = PerfectLinks()
        assert not any(
            model.is_lost(0, 1, 50.0, 0.0, gen) for _ in range(100)
        )


class TestBernoulliLoss:
    def test_empirical_rate(self, gen):
        model = BernoulliLoss(0.3)
        losses = sum(model.is_lost(0, 1, 10.0, 0.0, gen) for _ in range(20_000))
        assert 0.28 <= losses / 20_000 <= 0.32

    def test_degenerate_probabilities(self, gen):
        assert not BernoulliLoss(0.0).is_lost(0, 1, 1.0, 0.0, gen)
        assert BernoulliLoss(1.0).is_lost(0, 1, 1.0, 0.0, gen)

    def test_invalid_probability(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BernoulliLoss(1.5)

    def test_describe(self):
        assert "0.3" in BernoulliLoss(0.3).describe()


class TestGilbertElliott:
    def test_stationary_rate_formula(self):
        model = GilbertElliottLoss(p_good=0.0, p_bad=1.0, p_gb=0.1, p_bg=0.3)
        assert model.stationary_loss_rate == pytest.approx(0.25)

    def test_empirical_matches_stationary(self, gen):
        model = GilbertElliottLoss(p_good=0.02, p_bad=0.7, p_gb=0.05, p_bg=0.25)
        n = 60_000
        losses = sum(model.is_lost(0, 1, 10.0, 0.0, gen) for _ in range(n))
        assert losses / n == pytest.approx(model.stationary_loss_rate, abs=0.02)

    def test_burstiness(self, gen):
        # Consecutive losses should be positively correlated.
        model = GilbertElliottLoss(p_good=0.01, p_bad=0.95, p_gb=0.02, p_bg=0.1)
        outcomes = [model.is_lost(0, 1, 10.0, 0.0, gen) for _ in range(40_000)]
        after_loss = [
            b for a, b in zip(outcomes, outcomes[1:]) if a
        ]
        after_ok = [b for a, b in zip(outcomes, outcomes[1:]) if not a]
        assert sum(after_loss) / len(after_loss) > sum(after_ok) / len(after_ok) + 0.2

    def test_per_link_state_isolated(self, gen):
        model = GilbertElliottLoss(p_good=0.0, p_bad=1.0, p_gb=1.0, p_bg=0.0)
        # Link (0,1) goes bad immediately and stays bad.
        model.is_lost(0, 1, 1.0, 0.0, gen)
        assert model.is_lost(0, 1, 1.0, 0.0, gen)
        model.reset()
        # After reset the chain re-enters Good... and then transitions to
        # Bad again on the same call (p_gb=1), so loss resumes; the reset
        # is observable through the state dict being empty beforehand.
        assert not model._state

    def test_non_ergodic_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_gb=0.0, p_bg=0.0)


class TestDistanceDependent:
    def test_monotone_in_distance(self):
        model = DistanceDependentLoss(100.0, p_near=0.05, p_far=0.5)
        probs = [model.loss_probability(d) for d in (0, 25, 50, 75, 100)]
        assert all(a <= b for a, b in zip(probs, probs[1:]))
        assert probs[0] == pytest.approx(0.05)
        assert probs[-1] == pytest.approx(0.5)

    def test_clipping_beyond_range(self):
        model = DistanceDependentLoss(100.0, p_near=0.1, p_far=0.9)
        assert model.loss_probability(500.0) == pytest.approx(0.9)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            DistanceDependentLoss(0.0)


class TestComposite:
    def test_survival_requires_all(self, gen):
        model = CompositeLoss(BernoulliLoss(0.0), BernoulliLoss(1.0))
        assert model.is_lost(0, 1, 1.0, 0.0, gen)

    def test_all_pass(self, gen):
        model = CompositeLoss(PerfectLinks(), BernoulliLoss(0.0))
        assert not model.is_lost(0, 1, 1.0, 0.0, gen)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeLoss()

    def test_describe_nests(self):
        text = CompositeLoss(PerfectLinks(), BernoulliLoss(0.2)).describe()
        assert "PerfectLinks" in text and "0.2" in text


class TestBoundedAdversary:
    def test_stops_dropping_at_budget(self, gen):
        from repro.sim.loss import BoundedAdversaryLoss

        model = BoundedAdversaryLoss(p=1.0, budget=3)
        outcomes = [model.is_lost(0, 1, 50.0, 0.0, gen) for _ in range(10)]
        assert outcomes == [True] * 3 + [False] * 7
        assert model.dropped == 3

    def test_zero_budget_is_perfect(self, gen):
        from repro.sim.loss import BoundedAdversaryLoss

        model = BoundedAdversaryLoss(p=0.9, budget=0)
        assert not any(
            model.is_lost(0, 1, 50.0, 0.0, gen) for _ in range(100)
        )

    def test_negative_budget_rejected(self):
        from repro.sim.loss import BoundedAdversaryLoss

        with pytest.raises(ValueError):
            BoundedAdversaryLoss(p=0.5, budget=-1)


class TestBuildLossModel:
    def test_kinds_construct(self):
        from repro.sim.loss import LOSS_KINDS, build_loss_model

        for kind in LOSS_KINDS:
            model = build_loss_model(kind, loss_probability=0.2)
            assert hasattr(model, "is_lost")

    def test_bounded_params(self):
        from repro.sim.loss import build_loss_model

        model = build_loss_model(
            "bounded", (("p", 0.5), ("budget", 2.0))
        )
        assert model.p == 0.5 and model.budget == 2

    def test_unknown_kind_rejected(self):
        from repro.sim.loss import build_loss_model

        with pytest.raises(ValueError):
            build_loss_model("quantum")

    def test_unused_params_rejected(self):
        from repro.sim.loss import build_loss_model

        with pytest.raises(ValueError):
            build_loss_model("perfect", (("p", 0.5),))
