"""Tests for the average-case (position-integrated) measures."""

import numpy as np
import pytest

from repro.analysis.expected import (
    expected_cluster_false_detections,
    expected_false_detection,
    expected_incompleteness,
)
from repro.analysis.false_detection import p_false_detection
from repro.analysis.incompleteness import p_incompleteness


class TestExpectedMeasures:
    @pytest.mark.parametrize("n,p", [(50, 0.5), (50, 0.3), (100, 0.5)])
    def test_below_worst_case(self, n, p):
        assert expected_false_detection(n, p) < p_false_detection(n, p)
        assert expected_incompleteness(n, p) < p_incompleteness(n, p)

    @pytest.mark.parametrize("n,p", [(50, 0.5), (100, 0.4)])
    def test_above_best_case(self, n, p):
        assert expected_false_detection(n, p) > p_false_detection(
            n, p, distance=0.0
        )

    def test_matches_direct_monte_carlo(self):
        # Sample member positions, average the closed form.
        n, p = 50, 0.5
        rng = np.random.default_rng(0)
        d = 100.0 * np.sqrt(rng.uniform(size=40_000))
        mc = float(
            np.mean([p_false_detection(n, p, distance=float(x)) for x in d[:4000]])
        )
        quad = expected_false_detection(n, p)
        assert quad == pytest.approx(mc, rel=0.1)

    def test_zero_loss(self):
        assert expected_false_detection(50, 0.0) == 0.0
        assert expected_incompleteness(50, 0.0) == 0.0

    def test_monotone_in_p(self):
        values = [expected_false_detection(50, p) for p in (0.1, 0.3, 0.5)]
        assert values[0] < values[1] < values[2]

    def test_cluster_rate_linearity(self):
        n, p = 50, 0.4
        assert expected_cluster_false_detections(n, p) == pytest.approx(
            (n - 1) * expected_false_detection(n, p)
        )

    def test_maintenance_planning_magnitude(self):
        # Even at the harshest grid point (N=50, p=0.5): about one false
        # detection per cluster per fifty executions, and effectively zero
        # in the paper's nominal regime.
        assert expected_cluster_false_detections(50, 0.5) < 5e-2
        assert expected_cluster_false_detections(100, 0.1) < 1e-12
