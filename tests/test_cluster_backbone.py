"""Tests for the backbone-graph utilities."""

import pytest

from repro.cluster.backbone import (
    backbone_components,
    backbone_diameter,
    backbone_distances,
    backbone_edges,
    backbone_neighbors,
    is_backbone_connected,
)
from repro.cluster.geometric import build_clusters
from repro.cluster.state import Boundary, Cluster, ClusterLayout
from repro.errors import ClusteringError
from repro.topology.generators import corridor_field
from repro.topology.graph import UnitDiskGraph


def chain_layout():
    """Three clusters in a chain: 0 - 10 - 20 (boundaries owned low)."""
    clusters = [
        Cluster(head=0, members=frozenset({0, 1, 2})),
        Cluster(head=10, members=frozenset({10, 11, 12})),
        Cluster(head=20, members=frozenset({20, 21})),
    ]
    boundaries = [
        Boundary(owner=0, peer=10, gateway=1),
        Boundary(owner=10, peer=20, gateway=11),
    ]
    return ClusterLayout(clusters, boundaries)


def split_layout():
    clusters = [
        Cluster(head=0, members=frozenset({0, 1})),
        Cluster(head=10, members=frozenset({10, 11})),
        Cluster(head=20, members=frozenset({20, 21})),
    ]
    boundaries = [Boundary(owner=0, peer=10, gateway=1)]
    return ClusterLayout(clusters, boundaries)


class TestBackboneStructure:
    def test_edges_are_undirected_and_deduped(self):
        layout = chain_layout()
        assert backbone_edges(layout) == frozenset({(0, 10), (10, 20)})

    def test_neighbors(self):
        layout = chain_layout()
        assert backbone_neighbors(layout) == {
            0: (10,), 10: (0, 20), 20: (10,)
        }

    def test_components_connected(self):
        assert backbone_components(chain_layout()) == [frozenset({0, 10, 20})]
        assert is_backbone_connected(chain_layout())

    def test_components_split(self):
        components = backbone_components(split_layout())
        assert components == [frozenset({0, 10}), frozenset({20})]
        assert not is_backbone_connected(split_layout())


class TestDistances:
    def test_bfs_hops(self):
        distances = backbone_distances(chain_layout(), 0)
        assert distances == {0: 0, 10: 1, 20: 2}

    def test_unknown_source(self):
        with pytest.raises(ClusteringError):
            backbone_distances(chain_layout(), 99)

    def test_unreachable_absent(self):
        distances = backbone_distances(split_layout(), 0)
        assert 20 not in distances

    def test_diameter(self):
        assert backbone_diameter(chain_layout()) == 2
        assert backbone_diameter(split_layout()) is None


class TestOnRealLayouts:
    def test_corridor_diameter_matches_length(self, rng):
        placement = corridor_field(4, 35, 100.0, rng)
        layout = build_clusters(UnitDiskGraph(placement, 100.0))
        if is_backbone_connected(layout) and len(layout.heads) == 4:
            assert backbone_diameter(layout) == 3

    def test_diameter_bounds_dissemination_time(self, rng):
        # The structural claim the FDS relies on: news crosses one
        # boundary per execution, so diameter executions suffice.
        from repro.failure.injection import FailureInjector
        from tests.fds_helpers import deploy

        placement = corridor_field(3, 30, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        if not is_backbone_connected(layout):
            pytest.skip("sparse draw: backbone not connected")
        diameter = backbone_diameter(layout)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(
            layout.clusters[layout.heads[0]].ordinary_members
        )[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(1 + diameter + 1)
        for nid in network.operational_ids():
            if layout.is_clustered(nid):
                assert victim in deployment.protocols[nid].history
