"""Tests for the distributed cluster-formation protocol."""

import pytest

from repro.cluster.formation import (
    FormationConfig,
    extract_layout,
    install_formation,
    run_formation,
)
from repro.cluster.geometric import build_clusters
from repro.errors import ClusteringError
from repro.sim.network import NetworkConfig, build_network
from repro.topology.generators import multi_cluster_field
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import uniform_rect_placement
from repro.types import NodeRole


def lossless_network(placement, seed=0):
    return build_network(
        placement, NetworkConfig(loss_probability=0.0, seed=seed)
    )


class TestFormationConfig:
    def test_iteration_duration(self):
        cfg = FormationConfig(thop=0.5, iterations=2)
        assert cfg.iteration_duration == 3.0
        assert cfg.total_duration() == 6.5

    def test_thop_must_exceed_medium_delay(self, rng):
        placement = multi_cluster_field(2, 5, 100.0, rng)
        network = build_network(
            placement, NetworkConfig(loss_probability=0.0, max_delay=0.6)
        )
        with pytest.raises(ClusteringError):
            run_formation(network, FormationConfig(thop=0.5))


class TestPerfectLinkConvergence:
    def test_matches_oracle_partition(self, rng):
        placement = multi_cluster_field(4, 20, 100.0, rng)
        graph = UnitDiskGraph(placement, 100.0)
        oracle = build_clusters(graph)
        network = lossless_network(placement)
        layout = run_formation(network, FormationConfig(thop=0.5, iterations=3))
        assert layout.heads == oracle.heads
        for head in layout.heads:
            assert layout.clusters[head].members == oracle.clusters[head].members

    def test_everyone_marked(self, rng):
        placement = uniform_rect_placement(80, 400.0, 400.0, rng)
        network = lossless_network(placement)
        layout = run_formation(network, FormationConfig(thop=0.5, iterations=3))
        graph = UnitDiskGraph(placement, 100.0)
        from repro.topology.analysis import isolated_nodes

        assert set(layout.unclustered) <= set(isolated_nodes(graph))

    def test_gateways_assigned_where_clusters_meet(self, rng):
        placement = multi_cluster_field(2, 25, 100.0, rng)
        network = lossless_network(placement)
        layout = run_formation(network, FormationConfig(thop=0.5, iterations=3))
        assert len(layout.heads) == 2
        assert layout.boundaries, "adjacent clusters should get a boundary"
        for boundary in layout.boundaries.values():
            graph = UnitDiskGraph(placement, 100.0)
            for forwarder in boundary.all_forwarders:
                assert graph.are_neighbors(forwarder, boundary.peer)

    def test_deputies_announced(self, rng):
        placement = multi_cluster_field(2, 20, 100.0, rng)
        network = lossless_network(placement)
        layout = run_formation(
            network, FormationConfig(thop=0.5, iterations=2, deputy_count=2)
        )
        for cluster in layout.clusters.values():
            if cluster.size > 2:
                assert len(cluster.deputies) == 2


class TestLossyFormation:
    def test_f3_holds_under_loss(self, rng):
        # Whatever the losses, extraction must never double-affiliate.
        placement = uniform_rect_placement(120, 500.0, 500.0, rng)
        network = build_network(
            placement, NetworkConfig(loss_probability=0.3, seed=9)
        )
        layout = run_formation(network, FormationConfig(thop=0.5, iterations=4))
        # ClusterLayout construction itself enforces F3; also check roles.
        for nid in layout.clustered_nodes():
            assert layout.role_of(nid) is not NodeRole.UNMARKED

    def test_more_iterations_cover_more_nodes(self, rng):
        placement = uniform_rect_placement(120, 500.0, 500.0, rng)

        def coverage(iterations):
            network = build_network(
                placement, NetworkConfig(loss_probability=0.35, seed=4)
            )
            layout = run_formation(
                network, FormationConfig(thop=0.5, iterations=iterations)
            )
            return len(layout.clustered_nodes())

        assert coverage(5) >= coverage(1)

    def test_adjacent_head_conflicts_resolved(self, rng):
        # Under heavy loss two neighbors can both declare; RCC resignation
        # must leave no two adjacent heads by the end.
        placement = uniform_rect_placement(100, 400.0, 400.0, rng)
        graph = UnitDiskGraph(placement, 100.0)
        network = build_network(
            placement, NetworkConfig(loss_probability=0.4, seed=78)
        )
        layout = run_formation(network, FormationConfig(thop=0.5, iterations=8))
        heads = list(layout.heads)
        for i, a in enumerate(heads):
            for b in heads[i + 1:]:
                assert not graph.are_neighbors(a, b), (
                    f"adjacent heads {a}, {b} survived RCC"
                )


class TestExtraction:
    def test_extract_before_run_is_all_unclustered(self, rng):
        placement = multi_cluster_field(2, 10, 100.0, rng)
        network = lossless_network(placement)
        cfg = FormationConfig()
        protocols = install_formation(network, cfg)
        layout = extract_layout(protocols, cfg)
        assert len(layout.clusters) == 0
        assert len(layout.unclustered) == len(placement)
