"""The vectorized radio hot path: delay bounds, caches, batched loss masks.

Three properties guard the PR that vectorized ``RadioMedium.transmit``:

- delivery delays live on the half-open interval ``(0, max_delay]`` (the
  paper's per-hop bound, met without the old zero-delay remapping hack);
- the per-sender ``(neighbors, distances)`` array cache is dropped on every
  topology change, together with the neighbor cache;
- every ``LossModel.lost_mask`` consumes the generator exactly like the
  sequential ``is_lost`` loop, so vectorized and scalar simulations are
  bit-identical for any seed.
"""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.loss import (
    BernoulliLoss,
    CompositeLoss,
    DistanceDependentLoss,
    GilbertElliottLoss,
    PerfectLinks,
)
from repro.sim.medium import RadioMedium, draw_delays
from repro.sim.trace import RecordingTracer
from repro.util.geometry import Vec2


class StubRng:
    """A fake generator returning scripted uniforms, for exact-bound tests."""

    def __init__(self, value: float) -> None:
        self.value = value

    def random(self, size=None):
        if size is None:
            return self.value
        return np.full(size, self.value)


def make_medium(loss=None, rng_seed=0, vectorized=True, tracer=None,
                max_delay=0.1):
    sim = Simulator()
    medium = RadioMedium(
        sim,
        transmission_range=100.0,
        loss_model=loss if loss is not None else PerfectLinks(),
        rng=np.random.default_rng(rng_seed),
        max_delay=max_delay,
        tracer=tracer,
        vectorized=vectorized,
    )
    return sim, medium


def register_cluster(medium, inboxes, count=12, spacing=5.0):
    """``count`` nodes in a tight line -- everyone hears everyone."""
    for i in range(count):
        inboxes[i] = []
        medium.register(
            i, Vec2(spacing * i, 0.0),
            (lambda n: (lambda env: inboxes[n].append(env)))(i),
        )


class TestDelayBounds:
    def test_delays_in_half_open_interval(self):
        rng = np.random.default_rng(42)
        delays = draw_delays(rng, 0.1, 100_000)
        assert np.all(delays > 0.0)
        assert np.all(delays <= 0.1)

    def test_upper_bound_attained_exactly(self):
        # A zero uniform draw maps to *exactly* max_delay, never beyond.
        delays = draw_delays(StubRng(0.0), 0.1, 4)
        assert np.all(delays == 0.1)

    def test_zero_delay_impossible(self):
        # The largest double below 1.0 is the worst case for underflow.
        worst = np.nextafter(1.0, 0.0)
        delays = draw_delays(StubRng(worst), 0.1, 4)
        assert np.all(delays > 0.0)

    def test_batch_matches_scalar_stream(self):
        a = np.random.default_rng(7)
        b = np.random.default_rng(7)
        batch = draw_delays(a, 0.25, 16)
        scalars = [float(0.25 * (1.0 - b.random())) for _ in range(16)]
        assert batch.tolist() == scalars

    def test_transmitted_copies_respect_bound(self):
        sim, medium = make_medium(max_delay=0.05)
        inboxes = {}
        register_cluster(medium, inboxes, count=10)
        for sender in range(10):
            medium.transmit(sender, "ping")
        sim.run()
        delays = [
            env.received_at - env.sent_at
            for box in inboxes.values()
            for env in box
        ]
        assert delays, "expected deliveries"
        assert all(0.0 < d <= 0.05 for d in delays)


class TestArrayCacheInvalidation:
    def test_arrays_are_cached(self):
        _sim, medium = make_medium()
        inboxes = {}
        register_cluster(medium, inboxes, count=5)
        first = medium.neighbor_arrays(0)
        assert medium.neighbor_arrays(0) is first

    def test_arrays_align_with_neighbors(self):
        _sim, medium = make_medium()
        inboxes = {}
        register_cluster(medium, inboxes, count=5, spacing=30.0)
        neighbors, distances = medium.neighbor_arrays(1)
        assert neighbors == medium.neighbors_of(1)
        for nid, dist in zip(neighbors, distances):
            assert dist == pytest.approx(medium.distance(1, nid))

    def test_move_invalidates(self):
        _sim, medium = make_medium()
        medium.register(0, Vec2(0, 0), lambda e: None)
        medium.register(1, Vec2(50.0, 0), lambda e: None)
        neighbors, distances = medium.neighbor_arrays(0)
        assert neighbors == (1,) and distances[0] == pytest.approx(50.0)
        medium.move(1, Vec2(80.0, 0))
        neighbors, distances = medium.neighbor_arrays(0)
        assert neighbors == (1,) and distances[0] == pytest.approx(80.0)
        medium.move(1, Vec2(300.0, 0))
        neighbors, distances = medium.neighbor_arrays(0)
        assert neighbors == () and len(distances) == 0
        assert medium.neighbors_of(0) == ()

    def test_register_invalidates(self):
        _sim, medium = make_medium()
        medium.register(0, Vec2(0, 0), lambda e: None)
        assert medium.neighbor_arrays(0)[0] == ()
        medium.register(1, Vec2(40.0, 0), lambda e: None)
        neighbors, distances = medium.neighbor_arrays(0)
        assert neighbors == (1,) and distances[0] == pytest.approx(40.0)

    def test_unregister_invalidates(self):
        _sim, medium = make_medium()
        medium.register(0, Vec2(0, 0), lambda e: None)
        medium.register(1, Vec2(40.0, 0), lambda e: None)
        medium.register(2, Vec2(0, 40.0), lambda e: None)
        assert medium.neighbor_arrays(0)[0] == (1, 2)
        medium.unregister(1)
        neighbors, distances = medium.neighbor_arrays(0)
        assert neighbors == (2,) and distances[0] == pytest.approx(40.0)


class TestLostMaskEquivalence:
    """Every mask must consume the RNG exactly like the scalar loop."""

    RECEIVERS = tuple(range(1, 9))
    DISTANCES = np.linspace(5.0, 95.0, 8)

    def _scalar_reference(self, model, rng):
        return [
            model.is_lost(0, r, float(d), 0.0, rng)
            for r, d in zip(self.RECEIVERS, self.DISTANCES)
        ]

    def test_bernoulli_matches_scalar_stream(self):
        a, b = np.random.default_rng(3), np.random.default_rng(3)
        mask = BernoulliLoss(0.3).lost_mask(
            0, self.RECEIVERS, self.DISTANCES, 0.0, a
        )
        assert mask.tolist() == self._scalar_reference(BernoulliLoss(0.3), b)
        # Both consumed identical amounts: the streams still agree.
        assert a.random() == b.random()

    def test_bernoulli_edge_probabilities_draw_nothing(self):
        for p, expected in ((0.0, False), (1.0, True)):
            rng = np.random.default_rng(5)
            before = rng.bit_generator.state
            mask = BernoulliLoss(p).lost_mask(
                0, self.RECEIVERS, self.DISTANCES, 0.0, rng
            )
            assert mask.tolist() == [expected] * len(self.RECEIVERS)
            assert rng.bit_generator.state == before

    def test_perfect_links_draw_nothing(self):
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        mask = PerfectLinks().lost_mask(
            0, self.RECEIVERS, self.DISTANCES, 0.0, rng
        )
        assert not mask.any()
        assert rng.bit_generator.state == before

    def test_distance_dependent_matches_scalar_stream(self):
        model = DistanceDependentLoss(
            transmission_range=100.0, p_near=0.05, p_far=0.6
        )
        a, b = np.random.default_rng(9), np.random.default_rng(9)
        mask = model.lost_mask(0, self.RECEIVERS, self.DISTANCES, 0.0, a)
        assert mask.tolist() == self._scalar_reference(model, b)
        assert a.random() == b.random()

    def test_gilbert_elliott_state_advances_per_receiver(self):
        # The stateful model rides the sequential fallback: same outcomes
        # *and* same per-link Markov state as the scalar loop.
        masked = GilbertElliottLoss(p_gb=0.4, p_bg=0.3)
        looped = GilbertElliottLoss(p_gb=0.4, p_bg=0.3)
        a, b = np.random.default_rng(11), np.random.default_rng(11)
        for _ in range(5):  # several rounds so chains actually transition
            mask = masked.lost_mask(0, self.RECEIVERS, self.DISTANCES, 0.0, a)
            assert mask.tolist() == self._scalar_reference(looped, b)
        assert masked._state == looped._state
        assert a.random() == b.random()

    def test_composite_short_circuit_preserved(self):
        # ``any`` stops at the first losing component; the fallback must
        # reproduce that exact RNG consumption pattern.
        model = CompositeLoss(BernoulliLoss(0.5), BernoulliLoss(0.5))
        reference = CompositeLoss(BernoulliLoss(0.5), BernoulliLoss(0.5))
        a, b = np.random.default_rng(13), np.random.default_rng(13)
        for _ in range(5):
            mask = model.lost_mask(0, self.RECEIVERS, self.DISTANCES, 0.0, a)
            assert mask.tolist() == self._scalar_reference(reference, b)
        assert a.random() == b.random()


class TestVectorizedScalarEquivalence:
    def test_paths_bit_identical_at_medium_level(self):
        # Same seed, same topology, same transmissions: the two transmit
        # implementations must produce identical envelopes, counters, and
        # trace records.
        captured = {}
        for vectorized in (True, False):
            tracer = RecordingTracer()
            sim, medium = make_medium(
                loss=BernoulliLoss(0.3), rng_seed=21,
                vectorized=vectorized, tracer=tracer,
            )
            inboxes = {}
            register_cluster(medium, inboxes, count=12)
            medium.set_receiving(3, False)  # a muted node in the mix
            for round_ in range(4):
                for sender in range(12):
                    medium.transmit(sender, f"m{round_}", recipient=(sender + 1) % 12)
                sim.run()
            records = tuple(
                (r.time, r.kind, r.node, tuple(sorted(r.detail.items())))
                for r in tracer.records
            )
            captured[vectorized] = (
                {n: box for n, box in inboxes.items()},
                medium.message_stats(),
                records,
            )
        assert captured[True] == captured[False]
