"""Whole-simulation determinism: identical seeds replay bit-exactly.

Replayability is a design rule of the library (README): any run -- message
losses, delivery timing, protocol decisions, scored properties -- is a
pure function of its seed.  These tests run full scenarios twice and
compare everything observable.
"""

from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.experiments.scenarios import single_cluster_validation


def fingerprint(result):
    """Everything observable about a scenario run, hashable-comparable."""
    histories = {
        int(nid): tuple(sorted(map(int, p.history.known)))
        for nid, p in sorted(result.deployment.protocols.items())
    }
    trace = tuple(
        (round(r.time, 9), r.kind, r.node) for r in result.tracer.records
    )
    return (
        result.messages,
        result.properties.completeness,
        result.properties.accuracy_violations,
        histories,
        trace,
    )


class TestDeterminism:
    def test_identical_seeds_identical_everything(self):
        config = ScenarioConfig(
            cluster_count=3,
            members_per_cluster=15,
            loss_probability=0.2,
            crash_count=2,
            executions=4,
            seed=99,
        )
        a = fingerprint(run_scenario(config))
        b = fingerprint(run_scenario(config))
        assert a == b

    def test_vectorized_and_scalar_paths_identical(self):
        # The batched-RNG transmit path must replay the scalar reference
        # loop bit-exactly: same losses, same delivery times, same trace.
        config = ScenarioConfig(
            cluster_count=3,
            members_per_cluster=15,
            loss_probability=0.2,
            crash_count=2,
            executions=4,
            seed=99,
        )
        from dataclasses import replace

        a = fingerprint(run_scenario(config))
        b = fingerprint(run_scenario(replace(config, vectorized=False)))
        assert a == b

    def test_different_seeds_differ(self):
        base = ScenarioConfig(
            cluster_count=3,
            members_per_cluster=15,
            loss_probability=0.2,
            crash_count=2,
            executions=4,
            seed=99,
        )
        from dataclasses import replace

        a = fingerprint(run_scenario(base))
        b = fingerprint(run_scenario(replace(base, seed=100)))
        assert a != b

    def test_formation_protocol_deterministic(self):
        config = ScenarioConfig(
            cluster_count=2,
            members_per_cluster=15,
            loss_probability=0.15,
            crash_count=1,
            executions=3,
            seed=7,
            formation="protocol",
        )
        a = run_scenario(config)
        b = run_scenario(config)
        assert a.layout.heads == b.layout.heads
        assert {h: c.members for h, c in a.layout.clusters.items()} == {
            h: c.members for h, c in b.layout.clusters.items()
        }
        assert fingerprint(a) == fingerprint(b)

    def test_validation_runs_replay(self):
        a = single_cluster_validation(n=30, p=0.4, executions=40, seed=5)
        b = single_cluster_validation(n=30, p=0.4, executions=40, seed=5)
        assert a.false_detections == b.false_detections
        assert a.incompleteness_events == b.incompleteness_events
