"""Tests for the trace auditor: clean runs audit clean; injected
violations are caught."""

import pytest

from repro.audit.invariants import (
    AuditFinding,
    audit_crash_silence,
    audit_detection_timing,
    audit_refutation_soundness,
    audit_round_structure,
    run_all_audits,
)
from repro.failure.injection import FailureInjector
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.sim.trace import RecordingTracer
from repro.topology.generators import corridor_field
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import deploy


@pytest.fixture(scope="module")
def audited_run():
    import numpy as np

    rng = np.random.default_rng(12345)
    placement = corridor_field(2, 20, 100.0, rng)
    deployment, layout, tracer, network = deploy(placement, p=0.2, seed=6)
    injector = FailureInjector(network, deployment.config)
    victim = sorted(layout.clusters[0].ordinary_members)[2]
    event = injector.crash_before_execution(victim, execution=1)
    deployment.run_executions(4)
    return deployment, tracer, {victim: event.time}


class TestCleanRunsAuditClean:
    def test_full_audit_empty(self, audited_run):
        deployment, tracer, crash_times = audited_run
        findings = run_all_audits(
            tracer, deployment.config, crash_times=crash_times
        )
        assert findings == []

    def test_each_audit_individually(self, audited_run):
        deployment, tracer, crash_times = audited_run
        assert audit_crash_silence(tracer, crash_times) == []
        assert audit_detection_timing(tracer, deployment.config) == []
        assert audit_refutation_soundness(tracer) == []
        assert audit_round_structure(tracer, deployment.config) == []


class TestViolationsCaught:
    def test_crash_silence_violation(self):
        tracer = RecordingTracer()
        tracer.record(5.0, "radio.tx", node=3)
        findings = audit_crash_silence(tracer, {3: 2.0})
        assert len(findings) == 1
        assert findings[0].audit == "crash-silence"
        assert findings[0].node == 3

    def test_crash_silence_allows_pre_crash_tx(self):
        tracer = RecordingTracer()
        tracer.record(1.0, "radio.tx", node=3)
        assert audit_crash_silence(tracer, {3: 2.0}) == []

    def test_detection_timing_violation(self):
        tracer = RecordingTracer()
        config = FdsConfig(phi=10.0, thop=0.5)
        # Legal: offset 1.0 (R-3) within some interval.
        tracer.record(21.0, ev.DETECTION, node=0, target=5, execution=2)
        # Illegal: offset 4.2.
        tracer.record(34.2, ev.DETECTION, node=0, target=6, execution=3)
        findings = audit_detection_timing(tracer, config)
        assert len(findings) == 1
        assert "4.2" in findings[0].description

    def test_refutation_without_detection(self):
        tracer = RecordingTracer()
        tracer.record(3.0, ev.REFUTATION, node=1, target=9)
        findings = audit_refutation_soundness(tracer)
        assert len(findings) == 1

    def test_refutation_before_detection(self):
        tracer = RecordingTracer()
        tracer.record(1.0, ev.REFUTATION, node=1, target=9)
        tracer.record(2.0, ev.DETECTION, node=0, target=9, execution=0)
        assert len(audit_refutation_soundness(tracer)) == 1

    def test_refutation_after_detection_clean(self):
        tracer = RecordingTracer()
        tracer.record(1.0, ev.DETECTION, node=0, target=9, execution=0)
        tracer.record(2.0, ev.REFUTATION, node=1, target=9)
        assert audit_refutation_soundness(tracer) == []

    def test_round_structure_violation(self):
        tracer = RecordingTracer()
        config = FdsConfig(phi=30.0, thop=0.5)
        tracer.record(29.0, "radio.tx", node=4)  # deep in the silent tail
        findings = audit_round_structure(tracer, config)
        assert len(findings) == 1

    def test_round_structure_skipped_when_whole_interval_active(self):
        tracer = RecordingTracer()
        config = FdsConfig(phi=4.0, thop=0.5)  # allowance exceeds phi
        tracer.record(3.9, "radio.tx", node=4)
        assert audit_round_structure(tracer, config) == []


class TestSleepRunsAuditClean:
    def test_power_managed_run(self, rng):
        from repro.power import DutyCycleSchedule, install_power_management

        placement = cluster_disk_placement(18, 100.0, rng)
        cfg = FdsConfig(phi=8.0, thop=0.5)
        deployment, _layout, tracer, _network = deploy(
            placement, p=0.05, seed=4, fds_config=cfg
        )
        install_power_management(
            deployment, DutyCycleSchedule(awake=2, asleep_count=1)
        )
        deployment.run_executions(6)
        findings = run_all_audits(tracer, cfg)
        assert findings == []
