"""Tests for the trace auditor: clean runs audit clean; injected
violations are caught."""

import pytest

from repro.audit.invariants import (
    AuditFinding,
    audit_crash_silence,
    audit_detection_timing,
    audit_forwarder_conformance,
    audit_refutation_soundness,
    audit_round_structure,
    round_structure_applicable,
    run_all_audits,
    run_audit_statuses,
)
from repro.failure.injection import FailureInjector
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.sim.trace import RecordingTracer
from repro.topology.generators import corridor_field
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import deploy


@pytest.fixture(scope="module")
def audited_run():
    import numpy as np

    rng = np.random.default_rng(12345)
    placement = corridor_field(2, 20, 100.0, rng)
    deployment, layout, tracer, network = deploy(placement, p=0.2, seed=6)
    injector = FailureInjector(network, deployment.config)
    victim = sorted(layout.clusters[0].ordinary_members)[2]
    event = injector.crash_before_execution(victim, execution=1)
    deployment.run_executions(4)
    return deployment, tracer, {victim: event.time}


class TestCleanRunsAuditClean:
    def test_full_audit_empty(self, audited_run):
        deployment, tracer, crash_times = audited_run
        findings = run_all_audits(
            tracer, deployment.config, crash_times=crash_times
        )
        assert findings == []

    def test_each_audit_individually(self, audited_run):
        deployment, tracer, crash_times = audited_run
        assert audit_crash_silence(tracer, crash_times) == []
        assert audit_detection_timing(tracer, deployment.config) == []
        assert audit_refutation_soundness(tracer) == []
        assert audit_round_structure(tracer, deployment.config) == []


class TestViolationsCaught:
    def test_crash_silence_violation(self):
        tracer = RecordingTracer()
        tracer.record(5.0, "radio.tx", node=3)
        findings = audit_crash_silence(tracer, {3: 2.0})
        assert len(findings) == 1
        assert findings[0].audit == "crash-silence"
        assert findings[0].node == 3

    def test_crash_silence_allows_pre_crash_tx(self):
        tracer = RecordingTracer()
        tracer.record(1.0, "radio.tx", node=3)
        assert audit_crash_silence(tracer, {3: 2.0}) == []

    def test_detection_timing_violation(self):
        tracer = RecordingTracer()
        config = FdsConfig(phi=10.0, thop=0.5)
        # Legal: offset 1.0 (R-3) within some interval.
        tracer.record(21.0, ev.DETECTION, node=0, target=5, execution=2)
        # Illegal: offset 4.2.
        tracer.record(34.2, ev.DETECTION, node=0, target=6, execution=3)
        findings = audit_detection_timing(tracer, config)
        assert len(findings) == 1
        assert "4.2" in findings[0].description

    def test_refutation_without_detection(self):
        tracer = RecordingTracer()
        tracer.record(3.0, ev.REFUTATION, node=1, target=9)
        findings = audit_refutation_soundness(tracer)
        assert len(findings) == 1

    def test_refutation_before_detection(self):
        tracer = RecordingTracer()
        tracer.record(1.0, ev.REFUTATION, node=1, target=9)
        tracer.record(2.0, ev.DETECTION, node=0, target=9, execution=0)
        assert len(audit_refutation_soundness(tracer)) == 1

    def test_refutation_after_detection_clean(self):
        tracer = RecordingTracer()
        tracer.record(1.0, ev.DETECTION, node=0, target=9, execution=0)
        tracer.record(2.0, ev.REFUTATION, node=1, target=9)
        assert audit_refutation_soundness(tracer) == []

    def test_round_structure_violation(self):
        tracer = RecordingTracer()
        config = FdsConfig(phi=30.0, thop=0.5)
        tracer.record(29.0, "radio.tx", node=4)  # deep in the silent tail
        findings = audit_round_structure(tracer, config)
        assert len(findings) == 1

    def test_round_structure_skipped_when_whole_interval_active(self):
        tracer = RecordingTracer()
        config = FdsConfig(phi=4.0, thop=0.5)  # allowance exceeds phi
        tracer.record(3.9, "radio.tx", node=4)
        # No findings -- but that is "not checked", not "clean", and the
        # status report must say so rather than silently return all-clear.
        assert audit_round_structure(tracer, config) == []
        assert not round_structure_applicable(config)
        status = next(
            s
            for s in run_audit_statuses(tracer, config)
            if s.audit == "round-structure"
        )
        assert not status.applicable
        assert not status.clean
        assert "whole interval" in status.note

    def test_round_structure_abstains_for_digest_free_forwarding(self):
        """Digest-free configurations legitimately chain forwarding
        generations (relay -> fresh gateway duty -> forwarded report ->
        relay), so no single-ladder window short of phi is sound and the
        audit must abstain instead of flagging conformant cascades
        (found by soak spec seed 1342382291)."""
        tracer = RecordingTracer()
        config = FdsConfig(phi=20.0, thop=0.5, use_digests=False)
        tracer.record(18.4, "radio.tx", node=4)  # past the one-ladder window
        assert audit_round_structure(tracer, config) == []
        assert not round_structure_applicable(config)
        status = next(
            s
            for s in run_audit_statuses(tracer, config)
            if s.audit == "round-structure"
        )
        assert not status.applicable
        assert "digest-free" in status.note

    def test_round_structure_applies_without_forwarding_or_with_digests(self):
        assert round_structure_applicable(FdsConfig(phi=20.0, thop=0.5))
        assert round_structure_applicable(
            FdsConfig(
                phi=20.0,
                thop=0.5,
                use_digests=False,
                intercluster_forwarding=False,
            )
        )


class TestSleepRunsAuditClean:
    def test_power_managed_run(self, rng):
        from repro.power import DutyCycleSchedule, install_power_management

        placement = cluster_disk_placement(18, 100.0, rng)
        cfg = FdsConfig(phi=8.0, thop=0.5)
        deployment, _layout, tracer, _network = deploy(
            placement, p=0.05, seed=4, fds_config=cfg
        )
        install_power_management(
            deployment, DutyCycleSchedule(awake=2, asleep_count=1)
        )
        deployment.run_executions(6)
        findings = run_all_audits(tracer, cfg)
        assert findings == []


class TestAuditStatuses:
    def test_statuses_cover_every_audit(self):
        tracer = RecordingTracer()
        config = FdsConfig(phi=20.0, thop=0.5)
        statuses = run_audit_statuses(tracer, config, crash_times={3: 1.0})
        assert {s.audit for s in statuses} == {
            "crash-silence",
            "detection-timing",
            "refutation-soundness",
            "forwarder-conformance",
            "round-structure",
        }
        assert all(s.applicable for s in statuses)

    def test_no_crash_schedule_reported_not_applicable(self):
        tracer = RecordingTracer()
        config = FdsConfig(phi=20.0, thop=0.5)
        status = next(
            s
            for s in run_audit_statuses(tracer, config)
            if s.audit == "crash-silence"
        )
        assert not status.applicable
        assert "no crash schedule" in status.note

    def test_forwarding_disabled_reported_not_applicable(self):
        tracer = RecordingTracer()
        config = FdsConfig(phi=20.0, thop=0.5, intercluster_forwarding=False)
        status = next(
            s
            for s in run_audit_statuses(tracer, config)
            if s.audit == "forwarder-conformance"
        )
        assert not status.applicable

    def test_run_all_audits_concatenates_status_findings(self):
        tracer = RecordingTracer()
        tracer.record(5.0, "radio.tx", node=3)
        config = FdsConfig(phi=20.0, thop=0.5)
        findings = run_all_audits(tracer, config, crash_times={3: 2.0})
        assert [f.audit for f in findings] == ["crash-silence"]


class TestForwarderConformanceAudit:
    def _config(self):
        return FdsConfig(phi=20.0, thop=0.5)

    def test_dropped_coverage_flagged(self):
        config = self._config()
        tracer = RecordingTracer()
        tracer.record(0.0, ev.INTER_DUTY, node=1, dest=9, origin=5, rank=0,
                      backup_count=1, failures=[7])
        tracer.record(0.0, ev.REPORT_FORWARDED, node=1, peer=9, origin=5,
                      failures=[7])
        tracer.record(0.0, ev.INTER_ARM, node=1, dest=9, origin=5, delay=2.0,
                      failures=[7], standby=False)
        # Re-arm that forgets failure 7 with retries still in budget.
        tracer.record(1.0, ev.INTER_ARM, node=1, dest=9, origin=5, delay=2.0,
                      failures=[8], standby=False)
        findings = audit_forwarder_conformance(tracer, config)
        assert len(findings) == 1
        assert "dropped retry coverage" in findings[0].description

    def test_wrong_ladder_wait_flagged(self):
        config = self._config()
        tracer = RecordingTracer()
        tracer.record(0.0, ev.INTER_DUTY, node=1, dest=9, origin=5, rank=0,
                      backup_count=1, failures=[7])
        tracer.record(0.0, ev.INTER_ARM, node=1, dest=9, origin=5,
                      delay=config.post_forward_wait(3), failures=[7],
                      standby=False)
        findings = audit_forwarder_conformance(tracer, config)
        assert len(findings) == 1
        assert "ladder" in findings[0].description

    def test_spurious_origin_rebroadcast_flagged(self):
        config = self._config()
        tracer = RecordingTracer()
        tracer.record(0.0, ev.ORIGIN_WATCH, node=1, failures=[7, 8])
        tracer.record(0.2, ev.ORIGIN_COVERED, node=1, covered=[7])
        tracer.record(0.4, ev.ORIGIN_COVERED, node=1, covered=[8])
        tracer.record(1.0, ev.ORIGIN_REBROADCAST, node=1, pending=[7, 8],
                      retry=1)
        findings = audit_forwarder_conformance(tracer, config)
        assert len(findings) == 1
        assert "already covered" in findings[0].description

    def test_acked_and_exhausted_failures_may_be_dropped(self):
        config = self._config()
        tracer = RecordingTracer()
        max_attempts = config.max_forward_retries + 1
        tracer.record(0.0, ev.INTER_DUTY, node=1, dest=9, origin=5, rank=0,
                      backup_count=1, failures=[6, 7, 8])
        for _ in range(max_attempts):
            tracer.record(0.0, ev.REPORT_FORWARDED, node=1, peer=9, origin=5,
                          failures=[6])
        tracer.record(0.0, ev.INTER_ARM, node=1, dest=9, origin=5, delay=2.0,
                      failures=[6, 7, 8], standby=False)
        tracer.record(0.5, ev.INTER_ACK, node=1, peer=9, covered=[7])
        # 6 exhausted its budget, 7 was acked: dropping both is legal.
        tracer.record(2.0, ev.INTER_ARM, node=1, dest=9, origin=5, delay=2.0,
                      failures=[8], standby=False)
        assert audit_forwarder_conformance(tracer, config) == []
