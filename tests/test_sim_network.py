"""Tests for network assembly."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.loss import GilbertElliottLoss
from repro.sim.network import Network, NetworkConfig, build_network
from repro.util.geometry import Vec2


class TestNetworkConfig:
    def test_defaults_match_paper(self):
        cfg = NetworkConfig()
        assert cfg.transmission_range == 100.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transmission_range": 0.0},
            {"loss_probability": 1.5},
            {"max_delay": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            NetworkConfig(**kwargs)


class TestBuildNetwork:
    def test_from_sequence_assigns_ids(self):
        net = build_network([Vec2(0, 0), Vec2(10, 0)])
        assert sorted(net.nodes) == [0, 1]

    def test_from_mapping_preserves_ids(self):
        net = build_network({5: Vec2(0, 0), 9: Vec2(10, 0)})
        assert sorted(net.nodes) == [5, 9]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            build_network({})

    def test_custom_loss_model_wins(self):
        model = GilbertElliottLoss()
        net = build_network([Vec2(0, 0)], loss_model=model)
        assert net.medium.loss_model is model

    def test_unknown_node_lookup(self):
        net = build_network([Vec2(0, 0)])
        with pytest.raises(ConfigurationError):
            net.node(42)

    def test_crash_bookkeeping(self):
        net = build_network([Vec2(0, 0), Vec2(10, 0), Vec2(20, 0)])
        assert net.operational_ids() == (0, 1, 2)
        net.crash(1)
        assert net.operational_ids() == (0, 2)
        assert net.crashed_ids() == (1,)

    def test_determinism_same_seed(self):
        # Two identically seeded networks produce identical delivery
        # outcomes for the same transmission schedule.
        def run(seed):
            net = build_network(
                [Vec2(0, 0), Vec2(50, 0)],
                NetworkConfig(loss_probability=0.5, seed=seed),
            )
            received = []
            net.medium._handlers[1] = lambda env: received.append(env.payload)
            for i in range(100):
                net.medium.transmit(0, i)
            net.sim.run()
            return received

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_len(self):
        assert len(build_network([Vec2(0, 0)])) == 1
