"""Tests for the geometric (oracle) clustering."""

import pytest

from repro.cluster.geometric import build_clusters, lowest_id_partition
from repro.topology.analysis import isolated_nodes
from repro.topology.generators import multi_cluster_field
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import uniform_rect_placement
from repro.util.geometry import Vec2


def line_graph(spacing, count, radius=100.0):
    return UnitDiskGraph(
        {i: Vec2(spacing * i, 0.0) for i in range(count)}, radius
    )


class TestLowestIdPartition:
    def test_single_clique(self):
        g = UnitDiskGraph({i: Vec2(i * 10.0, 0) for i in range(5)}, 100.0)
        partition = lowest_id_partition(g)
        assert partition == {0: {0, 1, 2, 3, 4}}

    def test_chain_iterates(self):
        # 0-1-2-3-4 with only adjacent links: 0 claims 1; then 2 is lowest
        # unmarked and claims 3; 4 left surrounded -> singleton head.
        g = line_graph(spacing=80.0, count=5)
        partition = lowest_id_partition(g)
        assert partition == {0: {0, 1}, 2: {2, 3}, 4: {4}}

    def test_surrounded_node_becomes_singleton_head(self):
        # 2-1-0: 0 claims 1; 2's only neighbor is marked -> singleton.
        g = UnitDiskGraph(
            {0: Vec2(0, 0), 1: Vec2(80, 0), 2: Vec2(160, 0)}, 100.0
        )
        partition = lowest_id_partition(g)
        assert partition == {0: {0, 1}, 2: {2}}

    def test_isolated_nodes_not_clustered(self):
        # Both nodes have degree 0: neither is clustered (paper: isolated
        # nodes stay unaffiliated).
        g = UnitDiskGraph({0: Vec2(0, 0), 9: Vec2(9999, 9999)}, 100.0)
        assert lowest_id_partition(g) == {}
        layout = build_clusters(g)
        assert set(layout.unclustered) == {0, 9}

    def test_heads_never_adjacent(self, rng):
        placement = uniform_rect_placement(200, 600.0, 600.0, rng)
        g = UnitDiskGraph(placement, 100.0)
        heads = sorted(lowest_id_partition(g))
        for i, a in enumerate(heads):
            for b in heads[i + 1:]:
                assert not g.are_neighbors(a, b)

    def test_every_node_covered_or_isolated(self, rng):
        placement = uniform_rect_placement(200, 600.0, 600.0, rng)
        g = UnitDiskGraph(placement, 100.0)
        partition = lowest_id_partition(g)
        covered = set()
        for members in partition.values():
            covered |= members
        assert covered | set(isolated_nodes(g)) == set(g.nodes())


class TestBuildClusters:
    def test_members_one_hop_from_head(self, rng):
        placement = uniform_rect_placement(150, 500.0, 500.0, rng)
        g = UnitDiskGraph(placement, 100.0)
        layout = build_clusters(g)  # validates against the graph internally
        for cluster in layout.clusters.values():
            for member in cluster.ordinary_members:
                assert g.are_neighbors(cluster.head, member)

    def test_deputy_count_honored(self, rng):
        placement = multi_cluster_field(2, 20, 100.0, rng)
        g = UnitDiskGraph(placement, 100.0)
        layout = build_clusters(g, deputy_count=3)
        for cluster in layout.clusters.values():
            assert len(cluster.deputies) == min(3, cluster.size - 1)

    def test_boundaries_bidirectional_ownership(self, rng):
        # In a lowest-ID world the low cluster claims the whole lens, so
        # boundaries are owned by the lower head toward the higher one.
        placement = multi_cluster_field(2, 30, 100.0, rng)
        g = UnitDiskGraph(placement, 100.0)
        layout = build_clusters(g)
        assert (0, 1) in layout.boundaries
        boundary = layout.boundaries[(0, 1)]
        for forwarder in boundary.all_forwarders:
            assert g.are_neighbors(forwarder, 1)
            assert layout.cluster_of(forwarder).head == 0

    def test_max_backups_honored(self, rng):
        placement = multi_cluster_field(2, 40, 100.0, rng)
        g = UnitDiskGraph(placement, 100.0)
        for max_backups in (0, 1, 2):
            layout = build_clusters(g, max_backups=max_backups)
            for boundary in layout.boundaries.values():
                assert boundary.backup_count <= max_backups

    def test_deterministic(self, rng):
        placement = uniform_rect_placement(100, 400.0, 400.0, rng)
        g = UnitDiskGraph(placement, 100.0)
        a = build_clusters(g)
        b = build_clusters(g)
        assert a.heads == b.heads
        assert {h: c.members for h, c in a.clusters.items()} == {
            h: c.members for h, c in b.clusters.items()
        }

    def test_dense_single_disk_is_one_cluster(self, rng):
        from repro.topology.placement import cluster_disk_placement

        placement = cluster_disk_placement(40, 100.0, rng)
        layout = build_clusters(UnitDiskGraph(placement, 100.0))
        assert layout.heads == (0,)
        assert layout.clusters[0].size == 41
