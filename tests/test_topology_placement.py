"""Tests for placement generators."""

import math

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.placement import (
    cluster_disk_placement,
    gaussian_blobs_placement,
    grid_placement,
    uniform_disk_placement,
    uniform_rect_placement,
)
from repro.util.geometry import Vec2


class TestUniformDisk:
    def test_count_ids_and_bounds(self, rng):
        placement = uniform_disk_placement(50, 100.0, rng, first_id=10)
        assert sorted(placement) == list(range(10, 60))
        for pos in placement.values():
            assert pos.norm() <= 100.0 + 1e-9

    def test_center_offset(self, rng):
        center = Vec2(500.0, 500.0)
        placement = uniform_disk_placement(20, 50.0, rng, center=center)
        for pos in placement.values():
            assert pos.distance_to(center) <= 50.0 + 1e-9


class TestUniformRect:
    def test_bounds(self, rng):
        placement = uniform_rect_placement(100, 300.0, 200.0, rng)
        for pos in placement.values():
            assert 0.0 <= pos.x <= 300.0
            assert 0.0 <= pos.y <= 200.0

    def test_invalid_count(self, rng):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            uniform_rect_placement(0, 10.0, 10.0, rng)


class TestGrid:
    def test_exact_lattice(self):
        placement = grid_placement(2, 3, spacing=10.0)
        assert len(placement) == 6
        assert placement[0] == Vec2(0.0, 0.0)
        assert placement[2] == Vec2(20.0, 0.0)
        assert placement[3] == Vec2(0.0, 10.0)

    def test_jitter_requires_rng(self):
        with pytest.raises(TopologyError):
            grid_placement(2, 2, spacing=10.0, jitter=1.0)

    def test_jitter_bounded(self, rng):
        placement = grid_placement(3, 3, spacing=10.0, jitter=0.5, rng=rng)
        clean = grid_placement(3, 3, spacing=10.0)
        for nid in placement:
            assert placement[nid].distance_to(clean[nid]) <= math.sqrt(2) * 0.5


class TestGaussianBlobs:
    def test_counts_per_blob(self, rng):
        placement = gaussian_blobs_placement(
            [5, 7], [Vec2(0, 0), Vec2(1000, 0)], sigma=10.0, rng=rng
        )
        assert len(placement) == 12
        near_second = sum(
            1 for p in placement.values() if p.distance_to(Vec2(1000, 0)) < 100
        )
        assert near_second == 7

    def test_mismatched_lengths(self, rng):
        with pytest.raises(TopologyError):
            gaussian_blobs_placement([5], [Vec2(0, 0), Vec2(1, 1)], 1.0, rng)


class TestClusterDisk:
    def test_ch_at_center_with_lowest_id(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        assert placement[0] == Vec2(0.0, 0.0)
        assert min(placement) == 0
        assert len(placement) == 11

    def test_worst_case_member_on_circumference(self, rng):
        placement = cluster_disk_placement(
            10, 100.0, rng, worst_case_member=True
        )
        edge = placement[max(placement)]
        assert edge.norm() == pytest.approx(100.0)

    def test_all_members_within_ch_range(self, rng):
        placement = cluster_disk_placement(40, 100.0, rng)
        for pos in placement.values():
            assert pos.norm() <= 100.0 + 1e-9
