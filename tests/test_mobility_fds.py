"""Mobility extension tests: the FDS with periodic re-formation.

The paper defers host migration but claims the framework extends to it;
these tests exercise that claim with slow random-waypoint mobility and the
oracle re-clustering policy.
"""

import numpy as np
import pytest

from repro.cluster.remediation import ReclusteringPolicy
from repro.errors import ConfigurationError
from repro.failure.injection import FailureInjector
from repro.fds.config import FdsConfig
from repro.metrics.properties import evaluate_properties
from repro.sim.mobility import RandomWaypoint
from repro.topology.generators import multi_cluster_field

from tests.fds_helpers import deploy


def mobile_world(rng, speed=1.0, p=0.05, phi=10.0):
    placement = multi_cluster_field(3, 20, 100.0, rng)
    cfg = FdsConfig(phi=phi, thop=0.5)
    deployment, layout, tracer, network = deploy(
        placement, p=p, seed=8, fds_config=cfg
    )
    mobility = RandomWaypoint(
        width=500.0, height=300.0, speed_min=speed * 0.5,
        speed_max=speed, rng=np.random.default_rng(3),
    )
    mobility.install(network.sim, network.medium, tick=1.0, until=1000.0)
    return deployment, layout, tracer, network


class TestReclustering:
    def test_recluster_refreshes_views(self, rng):
        deployment, layout, _tracer, network = mobile_world(rng)
        policy = ReclusteringPolicy(deployment)
        deployment.run_executions(2)
        new_layout = policy.recluster_now()
        assert policy.reclusterings == 1
        # Every operational node's protocol matches the fresh layout.
        for nid in network.operational_ids():
            protocol = deployment.protocols[nid]
            assert protocol.head == new_layout.local_view(nid).head

    def test_crashed_nodes_left_out(self, rng):
        deployment, layout, _tracer, network = mobile_world(rng)
        policy = ReclusteringPolicy(deployment)
        deployment.run_executions(2)
        victim = sorted(layout.clusters[layout.heads[0]].ordinary_members)[0]
        network.crash(victim)
        new_layout = policy.recluster_now()
        assert not new_layout.is_clustered(victim)

    def test_history_preserved_across_reclustering(self, rng):
        deployment, layout, _tracer, network = mobile_world(rng)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[layout.heads[0]].ordinary_members)[0]
        injector.crash_before_execution(victim, execution=1)
        policy = ReclusteringPolicy(deployment)
        deployment.run_executions(2)
        assert victim in deployment.protocols[layout.heads[0]].history
        policy.recluster_now()
        assert victim in deployment.protocols[layout.heads[0]].history

    def test_invalid_cadence(self, rng):
        deployment, _layout, _tracer, _network = mobile_world(rng)
        policy = ReclusteringPolicy(deployment)
        with pytest.raises(ConfigurationError):
            policy.run_with_reclustering(4, recluster_every=0)


class TestMobileFds:
    def test_slow_mobility_with_reclustering_keeps_properties(self, rng):
        # ~1 m/s over phi=10s: a node drifts ~10 m between executions --
        # well within a 100 m radio disk if re-formed every 2 executions.
        deployment, layout, tracer, network = mobile_world(rng, speed=1.0)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[layout.heads[1]].ordinary_members)[0]
        injector.crash_before_execution(victim, execution=1)
        policy = ReclusteringPolicy(deployment)
        policy.run_with_reclustering(6, recluster_every=2)
        assert policy.reclusterings == 2
        report = evaluate_properties(deployment)
        assert report.completeness[victim] >= 0.9
        # Transient role churn must not leave lasting false suspicions.
        assert len(report.accuracy_violations) == 0

    def test_detection_still_exact_under_mobility(self, rng):
        deployment, layout, tracer, network = mobile_world(rng, speed=0.5)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[layout.heads[0]].ordinary_members)[2]
        injector.crash_before_execution(victim, execution=1)
        policy = ReclusteringPolicy(deployment)
        policy.run_with_reclustering(4, recluster_every=2)
        from repro.fds import events as ev

        targets = {
            r.detail["target"] for r in tracer.iter_kind(ev.DETECTION)
        }
        assert int(victim) in targets
