"""Tests for the event queue."""

import pytest

from repro.errors import SchedulingError
from repro.sim.events import Event, EventQueue


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        q.push(3.0, lambda: fired.append("c"))
        while q:
            q.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_orders_by_priority_then_insertion(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append("later"), priority=1)
        q.push(1.0, lambda: fired.append("first"), priority=0)
        q.push(1.0, lambda: fired.append("second"), priority=0)
        while q:
            q.pop().callback()
        assert fired == ["first", "second", "later"]

    def test_len_counts_active_only(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.cancel(e1)
        assert len(q) == 1

    def test_cancelled_events_skipped_on_pop(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None, label="first")
        q.push(2.0, lambda: None, label="second")
        q.cancel(e1)
        assert q.pop().label == "second"

    def test_double_cancel_is_safe(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        e = q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0
        q.cancel(e)
        assert q.peek_time() is None

    def test_nan_time_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(float("nan"), lambda: None)

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert not q

    def test_event_repr_and_active(self):
        e = Event(time=1.0, priority=0, sequence=0, callback=lambda: None)
        assert e.active
        e.cancel()
        assert not e.active
