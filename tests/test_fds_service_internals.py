"""FDS service internals: stale filtering, energy charging, relay flags."""

import pytest

from repro.energy.model import EnergyConfig, EnergyModel
from repro.fds.config import FdsConfig
from repro.fds.messages import Heartbeat, HealthStatusUpdate
from repro.fds.service import install_fds
from repro.cluster.geometric import build_clusters
from repro.sim.network import NetworkConfig, build_network
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import deploy


class TestStaleFiltering:
    def test_stale_heartbeat_is_not_evidence(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, _layout, _tracer, _network = deploy(placement)
        deployment.run_executions(2)
        head = deployment.protocols[0]
        before = set(head._heard)
        head._on_heartbeat(Heartbeat(sender=5, execution=99, marked=True))
        assert set(head._heard) == before

    def test_stale_update_not_stored(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, _layout, _tracer, _network = deploy(placement)
        deployment.run_executions(2)
        member = deployment.protocols[3]
        # A (forged-era) update for a future execution from our own head
        # is merged into history but must not satisfy peer-forwarding
        # bookkeeping for the current execution.
        current = member.execution
        member._on_update(
            HealthStatusUpdate(head=member.head, execution=current + 7)
        )
        assert current + 7 in member.updates_received  # stored by index
        assert member.execution == current  # counters untouched

    def test_report_hearsay_beaten_by_direct_liveness(self, rng):
        """A forwarded report re-asserting a node whose heartbeat the CH
        heard this execution is stale hearsay: adopting it would restart
        the refutation/relay cycle (the no-digests soak finding, seed
        1342382291).  A casualty the CH has no direct evidence about is
        still adopted -- crashed nodes are silent, so the filter can
        never mask a real failure."""
        from repro.fds.messages import FailureReport

        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, _layout, _tracer, _network = deploy(placement)
        deployment.run_executions(1)
        head = deployment.protocols[0]
        heard = next(iter(head._heard))
        unheard = 999  # a foreign casualty, never heard by this CH
        head._on_report(
            FailureReport(
                sender=5,
                origin=42,
                target_head=0,
                failures=frozenset({heard, unheard}),
            )
        )
        assert unheard in head.history
        assert heard not in head.history


class TestEnergyCharging:
    def test_tx_and_rx_charged(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        graph = UnitDiskGraph(placement, radius=100.0)
        layout = build_clusters(graph)
        network = build_network(
            placement, NetworkConfig(loss_probability=0.0, seed=1)
        )
        energy = EnergyModel(EnergyConfig(harvest_rate=0.0))
        deployment = install_fds(network, layout, FdsConfig(phi=5.0, thop=0.5),
                                 energy=energy)
        deployment.run_executions(2)
        totals = energy.totals()
        # 11 nodes x 2 executions x (heartbeat + digest) + 2 updates.
        assert totals["tx_total"] == pytest.approx(11 * 2 * 2 + 2)
        assert totals["rx_total"] > totals["tx_total"]

    def test_energy_fraction_feeds_waiting_policy(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        graph = UnitDiskGraph(placement, radius=100.0)
        layout = build_clusters(graph)
        network = build_network(
            placement, NetworkConfig(loss_probability=0.0, seed=1)
        )
        energy = EnergyModel(EnergyConfig(harvest_rate=0.0))
        deployment = install_fds(network, layout, FdsConfig(phi=5.0, thop=0.5),
                                 energy=energy)
        protocol = deployment.protocols[3]
        assert protocol._energy_fraction() == 1.0
        deployment.run_executions(3)
        assert protocol._energy_fraction() < 1.0


class TestRelayHandling:
    def test_relay_updates_do_not_count_as_r3_delivery(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, _layout, _tracer, _network = deploy(placement)
        deployment.run_executions(1)
        member = deployment.protocols[4]
        before = member.updates_received
        member._on_update(
            HealthStatusUpdate(
                head=member.head,
                execution=member.execution,
                new_failures=frozenset({9}),
                known_failures=frozenset({9}),
                relay=True,
            )
        )
        assert member.updates_received == before  # relays are not R-3
        assert 9 in member.history  # but the knowledge is merged

    def test_foreign_update_ignored_by_plain_member(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, _layout, _tracer, _network = deploy(placement)
        deployment.run_executions(1)
        member = deployment.protocols[4]
        member._on_update(
            HealthStatusUpdate(
                head=999,  # nobody we know
                execution=member.execution,
                new_failures=frozenset({7}),
                known_failures=frozenset({7}),
            )
        )
        assert 7 not in member.history
        assert 7 in member.members  # membership untouched


class TestRebroadcast:
    def test_rebroadcast_noop_for_non_head(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, _layout, _tracer, network = deploy(placement)
        deployment.run_executions(1)
        member = deployment.protocols[4]
        sent_before = network.nodes[4].sent_count
        member._rebroadcast_current_update()
        assert network.nodes[4].sent_count == sent_before

    def test_rebroadcast_resends_for_head(self, rng):
        placement = cluster_disk_placement(10, 100.0, rng)
        deployment, _layout, _tracer, network = deploy(placement)
        deployment.run_executions(1)
        head = deployment.protocols[0]
        sent_before = network.nodes[0].sent_count
        head._rebroadcast_current_update()
        assert network.nodes[0].sent_count == sent_before + 1
