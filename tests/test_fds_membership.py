"""Tests for membership views over the FDS."""

import pytest

from repro.failure.injection import FailureInjector
from repro.fds.membership import attach_view_trackers
from repro.topology.placement import cluster_disk_placement
from repro.util.geometry import Vec2

from tests.fds_helpers import deploy


class TestViewTracker:
    def test_first_view_installed_after_first_update(self, rng):
        placement = cluster_disk_placement(12, 100.0, rng)
        deployment, layout, _tracer, _network = deploy(placement)
        trackers = attach_view_trackers(deployment)
        member = sorted(layout.clusters[0].ordinary_members)[0]
        assert trackers[member].current is None
        deployment.run_executions(1)
        view = trackers[member].current
        assert view is not None
        assert view.view_id == 1
        assert view.members == layout.clusters[0].members

    def test_stable_membership_means_one_view(self, rng):
        placement = cluster_disk_placement(12, 100.0, rng)
        deployment, layout, _tracer, _network = deploy(placement)
        trackers = attach_view_trackers(deployment)
        deployment.run_executions(4)
        member = sorted(layout.clusters[0].ordinary_members)[0]
        assert trackers[member].view_count() == 1

    def test_failure_advances_view(self, rng):
        placement = cluster_disk_placement(12, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        trackers = attach_view_trackers(deployment)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[1]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        member = sorted(
            layout.clusters[0].ordinary_members - {victim}
        )[0]
        tracker = trackers[member]
        assert tracker.view_count() == 2
        assert victim in tracker.history[0]
        assert victim not in tracker.current.members

    def test_views_converge_across_cluster(self, rng):
        placement = cluster_disk_placement(12, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        trackers = attach_view_trackers(deployment)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[1]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        survivors = [
            nid for nid in layout.clusters[0].ordinary_members
            if network.nodes[nid].is_operational
        ]
        final_sets = {trackers[nid].current.members for nid in survivors}
        assert len(final_sets) == 1

    def test_admission_advances_view(self, rng):
        from tests.test_fds_admission import add_unmarked_node

        placement = cluster_disk_placement(12, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        trackers = attach_view_trackers(deployment)
        deployment.run_executions(1)
        nid, _protocol = add_unmarked_node(
            deployment, network, Vec2(30.0, 10.0), executions=2
        )
        deployment.run_executions(2)
        member = sorted(layout.clusters[0].ordinary_members)[0]
        tracker = trackers[member]
        assert tracker.view_count() >= 2
        assert nid in tracker.current.members

    def test_takeover_changes_head_in_view(self, rng):
        placement = cluster_disk_placement(12, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        trackers = attach_view_trackers(deployment)
        injector = FailureInjector(network, deployment.config)
        injector.crash_before_execution(0, execution=1)  # kill the CH
        deployment.run_executions(3)
        member = sorted(layout.clusters[0].ordinary_members)[3]
        current = trackers[member].current
        assert current.head != 0
        assert 0 not in current.members
