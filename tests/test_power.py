"""Tests for sleep/wakeup power management (Section 6 extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.failure.injection import FailureInjector
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.metrics.properties import evaluate_properties
from repro.power.manager import install_power_management
from repro.power.schedule import DutyCycleSchedule, RandomSleepSchedule
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import deploy


class TestSchedules:
    def test_duty_cycle_pattern(self):
        schedule = DutyCycleSchedule(awake=2, asleep_count=1, phase_stride=0)
        pattern = [schedule.asleep(5, e) for e in range(6)]
        assert pattern == [False, False, True, False, False, True]

    def test_phase_staggering(self):
        schedule = DutyCycleSchedule(awake=2, asleep_count=1, phase_stride=1)
        sleeping_at_0 = {n for n in range(9) if schedule.asleep(n, 0)}
        # One third of nodes sleeps at any execution, not everyone at once.
        assert 0 < len(sleeping_at_0) < 9

    def test_span_ahead(self):
        schedule = DutyCycleSchedule(awake=1, asleep_count=2, phase_stride=0)
        # Node awake at exec 0, sleeps execs 1-2.
        assert schedule.span_ahead(0, 0) == 2
        assert schedule.span_ahead(0, 3) == 2

    def test_zero_sleep(self):
        schedule = DutyCycleSchedule(awake=2, asleep_count=0)
        assert not any(schedule.asleep(1, e) for e in range(10))

    def test_random_schedule_is_memoized(self):
        schedule = RandomSleepSchedule(q=0.5, seed=1)
        draws = [schedule.asleep(3, 7) for _ in range(5)]
        assert len(set(draws)) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DutyCycleSchedule(awake=0)
        with pytest.raises(ConfigurationError):
            RandomSleepSchedule(q=1.0)


class TestSleepManager:
    def _run(self, rng, sleep_aware, announce, executions=9, p=0.05):
        placement = cluster_disk_placement(24, 100.0, rng)
        cfg = FdsConfig(phi=5.0, thop=0.5, sleep_aware=sleep_aware)
        deployment, layout, tracer, network = deploy(
            placement, p=p, seed=5, fds_config=cfg
        )
        managers = install_power_management(
            deployment,
            DutyCycleSchedule(awake=2, asleep_count=1),
            announce_sleep=announce,
        )
        deployment.run_executions(executions)
        return deployment, layout, tracer, network, managers

    def test_nodes_actually_sleep(self, rng):
        _dep, _layout, _tracer, _network, managers = self._run(
            rng, sleep_aware=True, announce=True
        )
        slept = sum(m.sleep_executions for m in managers.values())
        assert slept > 20

    def test_backbone_never_sleeps(self, rng):
        deployment, layout, _tracer, _network, managers = self._run(
            rng, sleep_aware=True, announce=True
        )
        head = layout.heads[0]
        assert managers[head].sleep_executions == 0

    def test_naive_sleeping_causes_false_detections(self, rng):
        _dep, _layout, tracer, network, _mgrs = self._run(
            rng, sleep_aware=False, announce=False
        )
        assert tracer.count(ev.DETECTION) > 10

    def test_announced_sleep_is_excused(self, rng):
        deployment, _layout, tracer, _network, _mgrs = self._run(
            rng, sleep_aware=True, announce=True
        )
        assert tracer.count(ev.DETECTION) <= 2
        report = evaluate_properties(deployment)
        assert len(report.accuracy_violations) <= 2

    def test_crash_during_sleep_detected_after_excuse_expires(self, rng):
        placement = cluster_disk_placement(24, 100.0, rng)
        cfg = FdsConfig(phi=5.0, thop=0.5, sleep_aware=True)
        deployment, layout, tracer, network = deploy(
            placement, p=0.0, seed=4, fds_config=cfg
        )
        schedule = DutyCycleSchedule(awake=2, asleep_count=1)
        install_power_management(deployment, schedule, announce_sleep=True)
        # Pick a non-backbone member and crash it while excused.
        boundary_nodes = set()
        victim = None
        cluster = layout.clusters[layout.heads[0]]
        for candidate in sorted(cluster.ordinary_members):
            if candidate not in cluster.deputies:
                victim = candidate
                break
        assert victim is not None
        injector = FailureInjector(network, cfg)
        injector.crash_before_execution(victim, execution=3)
        deployment.run_executions(9)
        # Detected eventually (once no valid excuse covers the silence).
        assert victim in deployment.protocols[layout.heads[0]].history
        report = evaluate_properties(deployment)
        assert report.completeness[victim] == 1.0

    def test_energy_savings(self, rng):
        from repro.energy import EnergyConfig, EnergyModel

        def run(with_sleep):
            rng2 = __import__("numpy").random.default_rng(9)
            placement = cluster_disk_placement(24, 100.0, rng2)
            cfg = FdsConfig(phi=5.0, thop=0.5)
            from repro.cluster.geometric import build_clusters
            from repro.fds.service import install_fds
            from repro.sim.network import NetworkConfig, build_network
            from repro.topology.graph import UnitDiskGraph

            layout = build_clusters(UnitDiskGraph(placement, 100.0))
            network = build_network(
                placement, NetworkConfig(loss_probability=0.05, seed=4)
            )
            energy = EnergyModel(EnergyConfig(harvest_rate=0.0))
            deployment = install_fds(network, layout, cfg, energy=energy)
            if with_sleep:
                install_power_management(
                    deployment, DutyCycleSchedule(awake=2, asleep_count=1)
                )
            deployment.run_executions(9)
            return energy.totals()["rx_total"] + energy.totals()["tx_total"]

        assert run(True) < run(False)
