"""Wire-codec conformance: every FDS message type must survive a
frame round-trip bit-exactly, and every malformed frame must raise a
typed :class:`~repro.rt.codec.CodecError` -- never a bare exception.

The round-trip cases are property-style: seeded random instances of
each dataclass in :mod:`repro.fds.messages`, including the nested
``PeerForward(update=HealthStatusUpdate(...))`` shape and frozenset /
Optional / tuple fields.
"""

import json
import struct

import numpy as np
import pytest

from repro.fds.messages import (
    Digest,
    FailureReport,
    Heartbeat,
    HealthStatusUpdate,
    PeerForward,
    PeerForwardAck,
    PeerForwardRequest,
)
from repro.rt.codec import (
    MAX_FRAME_BODY,
    MESSAGE_TYPES,
    CodecError,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
)


def _node_set(rng, low=0, high=40):
    return frozenset(
        int(v) for v in rng.integers(low, high, size=int(rng.integers(0, 5)))
    )


def _random_update(rng):
    return HealthStatusUpdate(
        head=int(rng.integers(0, 40)),
        execution=int(rng.integers(0, 100)),
        new_failures=_node_set(rng),
        known_failures=_node_set(rng),
        admissions=_node_set(rng),
        takeover_from=(
            None if rng.random() < 0.5 else int(rng.integers(0, 40))
        ),
        relay=bool(rng.random() < 0.5),
        membership=(
            None if rng.random() < 0.5 else _node_set(rng)
        ),
        refutations=_node_set(rng),
        deputies=(
            None
            if rng.random() < 0.5
            else tuple(int(v) for v in rng.integers(0, 40, size=2))
        ),
        piggyback={"hop": int(rng.integers(0, 5))} if rng.random() < 0.3
        else None,
    )


def _random_message(rng, cls):
    if cls is Heartbeat:
        return Heartbeat(
            sender=int(rng.integers(0, 40)),
            execution=int(rng.integers(0, 100)),
            marked=bool(rng.random() < 0.5),
            piggyback=None if rng.random() < 0.5 else {"k": 1},
            sleep_span=int(rng.integers(0, 4)),
        )
    if cls is Digest:
        return Digest(
            sender=int(rng.integers(0, 40)),
            execution=int(rng.integers(0, 100)),
            heard=_node_set(rng),
        )
    if cls is HealthStatusUpdate:
        return _random_update(rng)
    if cls is FailureReport:
        return FailureReport(
            sender=int(rng.integers(0, 40)),
            origin=int(rng.integers(0, 40)),
            target_head=int(rng.integers(0, 40)),
            failures=_node_set(rng),
            history=_node_set(rng),
            refutations=_node_set(rng),
        )
    if cls is PeerForwardRequest:
        return PeerForwardRequest(
            sender=int(rng.integers(0, 40)),
            execution=int(rng.integers(0, 100)),
        )
    if cls is PeerForward:
        return PeerForward(
            sender=int(rng.integers(0, 40)),
            requester=int(rng.integers(0, 40)),
            update=_random_update(rng),
        )
    if cls is PeerForwardAck:
        return PeerForwardAck(
            sender=int(rng.integers(0, 40)),
            execution=int(rng.integers(0, 100)),
        )
    raise AssertionError(f"unhandled message type {cls}")


@pytest.mark.parametrize("cls", MESSAGE_TYPES, ids=lambda c: c.__name__)
def test_roundtrip_every_message_type(cls):
    rng = np.random.default_rng(hash(cls.__name__) % (2**32))
    for _ in range(25):
        message = _random_message(rng, cls)
        frame = encode_frame(3, None, 1.25, message)
        decoded = decode_frame(frame)
        assert decoded.sender == 3
        assert decoded.recipient is None
        assert decoded.sent_at == 1.25
        assert decoded.payload == message
        assert type(decoded.payload) is cls


def test_roundtrip_unicast_recipient():
    message = PeerForwardAck(sender=1, execution=2)
    decoded = decode_frame(encode_frame(1, 9, 0.5, message))
    assert decoded.recipient == 9
    assert decoded.payload == message


def test_encoding_is_deterministic():
    rng = np.random.default_rng(7)
    update = _random_update(rng)
    assert encode_frame(2, None, 0.0, update) == encode_frame(
        2, None, 0.0, update
    )


def test_frame_is_length_prefixed_canonical_json():
    frame = encode_frame(0, 1, 2.0, PeerForwardAck(sender=0, execution=1))
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    body = json.loads(frame[4:].decode("utf-8"))
    assert body["v"] == 1
    assert body["type"] == "PeerForwardAck"


# ----------------------------------------------------------------------
# Adversarial frames: typed errors, never crashes.
# ----------------------------------------------------------------------
def _valid_frame():
    return encode_frame(0, None, 0.0, PeerForwardAck(sender=0, execution=1))


@pytest.mark.parametrize(
    "mutilate",
    [
        lambda f: b"",
        lambda f: f[:3],
        lambda f: f[:4],
        lambda f: f[: len(f) // 2],
        lambda f: f + b"extra",
        lambda f: struct.pack(">I", MAX_FRAME_BODY + 1) + f[4:],
        lambda f: f[:4] + b"\xff\xfe" + f[6:],
        lambda f: f[:4] + b"not json".ljust(len(f) - 4, b" "),
        lambda f: f[:4] + b"[1, 2, 3]".ljust(len(f) - 4, b" "),
    ],
    ids=[
        "empty",
        "short-prefix",
        "no-body",
        "truncated-body",
        "trailing-garbage",
        "oversized-claim",
        "bad-utf8",
        "not-json",
        "non-dict-body",
    ],
)
def test_mutilated_frames_raise_codec_error(mutilate):
    with pytest.raises(CodecError):
        decode_frame(mutilate(_valid_frame()))


def _reframe(body: dict) -> bytes:
    data = json.dumps(body).encode("utf-8")
    return struct.pack(">I", len(data)) + data


def _valid_body() -> dict:
    return json.loads(_valid_frame()[4:].decode("utf-8"))


@pytest.mark.parametrize(
    "corrupt",
    [
        lambda b: {**b, "v": 99},
        lambda b: {k: v for k, v in b.items() if k != "v"},
        lambda b: {k: v for k, v in b.items() if k != "sender"},
        lambda b: {k: v for k, v in b.items() if k != "type"},
        lambda b: {k: v for k, v in b.items() if k != "body"},
        lambda b: {**b, "sender": "zero"},
        lambda b: {**b, "sender": True},
        lambda b: {**b, "recipient": "all"},
        lambda b: {**b, "sent_at": "soon"},
        lambda b: {**b, "type": "NotAMessage"},
        lambda b: {**b, "body": []},
        lambda b: {**b, "body": {}},
        lambda b: {**b, "body": {**b["body"], "surplus": 1}},
        lambda b: {**b, "body": {**b["body"], "execution": "one"}},
    ],
    ids=[
        "wrong-version",
        "missing-version",
        "missing-sender",
        "missing-type",
        "missing-body",
        "string-sender",
        "bool-sender",
        "string-recipient",
        "string-sent-at",
        "unknown-type",
        "non-dict-inner-body",
        "missing-fields",
        "extra-field",
        "bad-field-type",
    ],
)
def test_corrupted_bodies_raise_codec_error(corrupt):
    with pytest.raises(CodecError):
        decode_frame(_reframe(corrupt(_valid_body())))


def test_nested_update_validation():
    frame_body = json.loads(
        encode_frame(
            0, None, 0.0,
            PeerForward(sender=0, requester=1, update=_random_update(
                np.random.default_rng(0)
            )),
        )[4:].decode("utf-8")
    )
    frame_body["body"]["update"]["head"] = "boom"
    with pytest.raises(CodecError):
        decode_frame(_reframe(frame_body))


def test_nodeset_rejects_non_int_members():
    body = _valid_body()
    body["type"] = "Digest"
    body["body"] = {"sender": 0, "execution": 1, "heard": [1, "two"]}
    with pytest.raises(CodecError):
        decode_frame(_reframe(body))


def test_unencodable_payload_raises():
    with pytest.raises(CodecError):
        encode_message(object())
    with pytest.raises(CodecError):
        encode_frame(
            0, None, 0.0,
            Heartbeat(sender=0, execution=0, piggyback={"bad": object()}),
        )


def test_decode_message_rejects_non_dict():
    with pytest.raises(CodecError):
        decode_message("Heartbeat", [1, 2])


def test_fuzz_random_bytes_never_crash():
    rng = np.random.default_rng(42)
    for _ in range(200):
        size = int(rng.integers(0, 64))
        blob = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
        try:
            decode_frame(blob)
        except CodecError:
            pass  # the only acceptable failure mode
