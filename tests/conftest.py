"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.geometric import build_clusters
from repro.sim.network import NetworkConfig, build_network
from repro.topology.generators import corridor_field
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import cluster_disk_placement
from repro.util.rng import RngFactory


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_cluster_placement(rng):
    """One cluster: CH (NID 0) at the origin plus 19 uniform members."""
    return cluster_disk_placement(member_count=19, radius=100.0, rng=rng)


@pytest.fixture
def small_cluster(small_cluster_placement):
    """(placement, graph, layout) for the single small cluster."""
    graph = UnitDiskGraph(small_cluster_placement, radius=100.0)
    layout = build_clusters(graph)
    return small_cluster_placement, graph, layout


@pytest.fixture
def two_cluster_world(rng):
    """(placement, graph, layout) for two overlapping clusters."""
    placement = corridor_field(
        cluster_count=2, members_per_cluster=15, radius=100.0, rng=rng
    )
    graph = UnitDiskGraph(placement, radius=100.0)
    layout = build_clusters(graph)
    return placement, graph, layout


def make_lossless_network(placement, seed: int = 0):
    """A network over ``placement`` with perfect links."""
    return build_network(
        placement,
        NetworkConfig(transmission_range=100.0, loss_probability=0.0, seed=seed),
    )


def make_lossy_network(placement, p: float, seed: int = 0, tracer=None):
    """A network over ``placement`` with Bernoulli loss probability p."""
    return build_network(
        placement,
        NetworkConfig(transmission_range=100.0, loss_probability=p, seed=seed),
        tracer=tracer,
    )
