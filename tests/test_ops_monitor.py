"""Tests for the operations health monitor."""

import pytest

from repro.errors import ConfigurationError
from repro.failure.injection import FailureInjector
from repro.ops.monitor import HealthMonitor
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import deploy


class TestHealthMonitor:
    def _world(self, rng, crashes=(), executions=4):
        placement = cluster_disk_placement(15, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        for i, victim in enumerate(crashes):
            injector.crash_before_execution(victim, execution=i + 1)
        monitor = HealthMonitor(
            deployment, vantage=0, capacity_threshold=14
        )
        deployment.run_executions(executions)
        return deployment, monitor, network

    def test_healthy_network_no_advisory(self, rng):
        _deployment, monitor, _network = self._world(rng)
        snapshot = monitor.poll()
        assert snapshot.believed_operational == 16
        assert snapshot.believed_loss_fraction == 0.0
        assert monitor.advisories == []

    def test_advisory_below_threshold(self, rng):
        _deployment, monitor, _network = self._world(
            rng, crashes=(3, 5, 7)
        )
        snapshot = monitor.poll()
        assert snapshot.believed_operational == 13
        assert len(monitor.advisories) == 1
        advisory = monitor.advisories[0]
        assert advisory.replacements_needed == 1  # back to the threshold
        assert advisory.believed_operational == 13

    def test_target_population_sizing(self, rng):
        placement = cluster_disk_placement(15, 100.0, rng)
        deployment, _layout, _tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        for i, victim in enumerate((3, 5, 7)):
            injector.crash_before_execution(victim, execution=i + 1)
        monitor = HealthMonitor(
            deployment, vantage=0, capacity_threshold=14,
            target_population=16,
        )
        deployment.run_executions(4)
        monitor.poll()
        assert monitor.advisories[0].replacements_needed == 3

    def test_accuracy_against_truth(self, rng):
        _deployment, monitor, _network = self._world(rng, crashes=(3,))
        monitor.poll()
        assert monitor.accuracy_against_truth() == 1.0

    def test_latest_and_history(self, rng):
        _deployment, monitor, _network = self._world(rng)
        assert monitor.latest is None
        monitor.poll()
        monitor.poll()
        assert len(monitor.snapshots) == 2
        assert monitor.latest is monitor.snapshots[-1]

    def test_validation(self, rng):
        placement = cluster_disk_placement(8, 100.0, rng)
        deployment, _layout, _tracer, _network = deploy(placement)
        with pytest.raises(ConfigurationError):
            HealthMonitor(deployment, vantage=999, capacity_threshold=5)
        with pytest.raises(ConfigurationError):
            HealthMonitor(deployment, vantage=0, capacity_threshold=-1)
        with pytest.raises(ConfigurationError):
            HealthMonitor(
                deployment, vantage=0, capacity_threshold=5,
                target_population=3,
            )
