"""Real-network runtime tests: a scenario over actual localhost UDP
sockets, substrate conformance of both node types, spooling under
concurrent emitters, timebase-aware analysis, and the sim/real
differential (``differential:realnet``).

Runs here keep the field small (a dozen nodes, 3 executions) so each
wall-clock run stays around a second; CI's smoke job covers the
>= 20-node scale.
"""

import json
import threading

import pytest

from repro.audit.differential import ScenarioSpec
from repro.audit.realnet import (
    check_realnet,
    realnet_repro_snippet,
    realnet_spec,
)
from repro.errors import NodeStateError
from repro.fds.substrate import Substrate, TimerHandle, TimerScheduler
from repro.obs.analyze import TraceMeta, summarize
from repro.obs.spool import SpoolingTracer, read_spool
from repro.rt.collector import merge_spools, spool_files
from repro.rt.runtime import WALL_TIMEBASE, RtScenario, run_rt_scenario
from repro.sim.trace import RecordingTracer, TraceRecord

SMALL = RtScenario(
    seed=7,
    cluster_count=2,
    members_per_cluster=5,
    crash_count=1,
    executions=3,
)


@pytest.fixture(scope="module")
def small_run():
    """One shared runtime run (real sockets; ~1 s of wall clock)."""
    return run_rt_scenario(SMALL)


@pytest.fixture(scope="module")
def spooled_run(tmp_path_factory):
    spool_dir = tmp_path_factory.mktemp("rt-spool")
    return run_rt_scenario(SMALL, spool_dir=spool_dir), spool_dir


# ----------------------------------------------------------------------
# Substrate conformance
# ----------------------------------------------------------------------
def test_both_substrates_satisfy_the_protocols(small_run):
    from repro.sim.engine import Simulator
    from repro.sim.medium import RadioMedium
    from repro.sim.node import SimNode
    from repro.util.geometry import Vec2

    rt_node = next(iter(small_run.nodes.values()))
    assert isinstance(rt_node, Substrate)
    assert isinstance(rt_node.timers, TimerScheduler)
    assert isinstance(rt_node.timers.create(lambda: None), TimerHandle)

    sim = Simulator()
    medium = RadioMedium(sim, transmission_range=100.0, max_delay=0.01)
    sim_node = SimNode(0, Vec2(0.0, 0.0), sim, medium)
    assert isinstance(sim_node, Substrate)
    assert isinstance(sim_node.timers, TimerScheduler)


# ----------------------------------------------------------------------
# The runtime itself
# ----------------------------------------------------------------------
def test_rt_run_detects_the_injected_crash(small_run):
    result = small_run
    # Each cluster is members_per_cluster members plus its head.
    assert len(result.nodes) == 2 * (SMALL.members_per_cluster + 1)
    assert len(result.crash_times) == 1
    [(victim, crashed_at)] = result.crash_times.items()
    assert not result.nodes[victim].is_operational
    latency = result.detection_latencies[victim]
    assert latency is not None
    # Loss-independent anchor: 0.4 phi + 2 thop, in wall seconds, with
    # a generous band for scheduler jitter.
    phi, thop = result.config.phi, result.config.thop
    anchor = 0.4 * phi + 2 * thop
    assert latency == pytest.approx(anchor, abs=0.3 * phi)
    assert result.codec_errors == 0
    assert result.properties.mean_completeness == 1.0


def test_rt_messages_really_crossed_sockets(small_run):
    sent = sum(n.sent_count for n in small_run.nodes.values())
    received = sum(n.received_count for n in small_run.nodes.values())
    assert sent > 0
    assert received > sent  # broadcast fan-out multiplies deliveries
    assert small_run.tracer.count("radio.tx") == sent


def test_rt_crashed_node_is_silent_after_the_kill(small_run):
    [(victim, crashed_at)] = small_run.crash_times.items()
    for record in small_run.tracer.iter_kind("radio.tx"):
        if record.node == int(victim):
            assert record.time <= crashed_at + 1e-9


def test_rt_crash_twice_raises(small_run):
    [(victim, _)] = small_run.crash_times.items()
    with pytest.raises(NodeStateError):
        small_run.nodes[victim].crash()


def test_rt_meta_record_carries_wall_timebase(small_run):
    [meta_record] = list(small_run.tracer.iter_kind("meta.scenario"))
    assert meta_record.detail["timebase"] == WALL_TIMEBASE
    assert meta_record.detail["time_scale"] == SMALL.time_scale
    assert meta_record.detail["phi"] == pytest.approx(
        SMALL.phi * SMALL.time_scale
    )


def test_rt_scenario_rejects_bad_knobs():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        RtScenario(time_scale=0.0)
    with pytest.raises(ConfigurationError):
        RtScenario(warmup=-1.0)


# ----------------------------------------------------------------------
# Spool mode: per-node JSONL, merged for the analyzers
# ----------------------------------------------------------------------
def test_spooled_run_merges_into_one_analyzable_trace(spooled_run):
    result, spool_dir = spooled_run
    files = spool_files(spool_dir)
    # One spool per node plus the run spool, all non-empty.
    assert len(files) == len(result.nodes) + 1
    assert result.merged_spool is not None
    merged = read_spool(result.merged_spool)
    assert merged
    times = [r.time for r in merged]
    assert times == sorted(times)

    summary = summarize(merged)
    assert summary.meta.found
    assert summary.meta.timebase == WALL_TIMEBASE
    assert summary.meta.wall_clock
    assert summary.kinds["sim.crash"] == 1
    assert summary.kinds["fds.detection"] >= 1
    [(victim, _)] = result.crash_times.items()
    latencies = summary.detection_latencies_phi()
    assert latencies[int(victim)] == pytest.approx(0.525, abs=0.3)
    # The disk path agrees with the in-memory result object (small slack:
    # the result anchors on the *scheduled* crash time, the trace on the
    # instant the kill callback actually ran).
    assert result.detection_latencies[victim] == pytest.approx(
        latencies[int(victim)] * result.config.phi, abs=0.05 * result.config.phi
    )


def test_merge_is_idempotent_and_excludes_itself(spooled_run):
    result, spool_dir = spooled_run
    first = result.merged_spool.read_text(encoding="utf-8")
    merge_spools(spool_dir)
    assert result.merged_spool.read_text(encoding="utf-8") == first


# ----------------------------------------------------------------------
# Satellite: concurrent spool emission
# ----------------------------------------------------------------------
def test_spooling_tracer_concurrent_emit(tmp_path):
    path = tmp_path / "contended.jsonl"
    tracer = SpoolingTracer(path, flush_every=7)
    threads = 8
    per_thread = 500
    barrier = threading.Barrier(threads)

    def hammer(worker: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            tracer.emit(TraceRecord(
                time=float(i),
                kind="contention.test",
                node=worker,
                detail={"i": i},
            ))

    workers = [
        threading.Thread(target=hammer, args=(w,)) for w in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    tracer.close()

    assert tracer.spooled == threads * per_thread
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == threads * per_thread
    # Every line is intact JSON (no interleaved partial writes), and
    # every (node, i) pair survived exactly once.
    seen = set()
    for line in lines:
        payload = json.loads(line)
        seen.add((payload["node"], payload["i"]))
    assert len(seen) == threads * per_thread


def test_spooling_tracer_close_is_safe_under_emit(tmp_path):
    from repro.errors import ConfigurationError

    tracer = SpoolingTracer(tmp_path / "closing.jsonl")
    tracer.emit(TraceRecord(time=0.0, kind="x", node=None, detail={}))
    tracer.close()
    tracer.close()  # idempotent
    with pytest.raises(ConfigurationError):
        tracer.emit(TraceRecord(time=1.0, kind="x", node=None, detail={}))


# ----------------------------------------------------------------------
# Satellite: timebase-aware analysis
# ----------------------------------------------------------------------
def test_trace_meta_timebase_defaults_to_phi_for_old_spools():
    old_style = TraceRecord(
        time=0.0,
        kind="meta.scenario",
        node=None,
        detail={"phi": 8.0, "thop": 0.5, "nodes": 4},
    )
    meta = TraceMeta.from_record(old_style)
    assert meta.timebase == "phi"
    assert not meta.wall_clock


def test_trace_latency_cli_labels_wall_units(spooled_run, capsys):
    from repro.obs.cli import cmd_trace
    import argparse

    result, _spool_dir = spooled_run
    args = argparse.Namespace(
        trace_action="latency", spool=str(result.merged_spool)
    )
    assert cmd_trace(args) == 0
    out = capsys.readouterr().out
    assert "latency (ms)" in out
    assert "wall seconds" in out


def test_trace_latency_cli_keeps_phi_units_for_sim(tmp_path, capsys):
    from repro.experiments.runner import ScenarioConfig, run_scenario
    from repro.obs.cli import cmd_trace
    from repro.sim.trace import record_to_dict
    import argparse

    sim = run_scenario(ScenarioConfig(
        cluster_count=2, members_per_cluster=5, crash_count=1,
        executions=3, seed=7, loss_probability=0.0,
    ))
    spool = tmp_path / "sim.jsonl"
    with spool.open("w", encoding="utf-8") as handle:
        for record in sim.tracer.records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")
    args = argparse.Namespace(trace_action="latency", spool=str(spool))
    assert cmd_trace(args) == 0
    out = capsys.readouterr().out
    assert "latency (phi)" in out
    assert "latency (ms)" not in out


# ----------------------------------------------------------------------
# differential:realnet
# ----------------------------------------------------------------------
def test_realnet_spec_distribution_is_deterministic():
    assert realnet_spec(3) == realnet_spec(3)
    assert realnet_spec(3) != realnet_spec(4)


def test_realnet_differential_perfect_loss():
    spec = ScenarioSpec(
        seed=11, cluster_count=2, members_per_cluster=5, crash_count=1,
        executions=3, loss_kind="perfect", loss_p=0.0, loss_budget=0,
        spacing_factor=1.25, max_backups=2, phi=8.0, thop=0.5,
    )
    assert check_realnet(spec) == []


def test_realnet_differential_bounded_loss():
    spec = ScenarioSpec(
        seed=5, cluster_count=2, members_per_cluster=6, crash_count=2,
        executions=3, loss_kind="bounded", loss_p=0.15, loss_budget=2,
        spacing_factor=1.25, max_backups=2, phi=8.0, thop=0.5,
    )
    assert check_realnet(spec) == []


def test_realnet_repro_snippet_is_valid_python():
    spec = realnet_spec(0)
    from repro.audit.differential import Violation

    snippet = realnet_repro_snippet(
        spec, [Violation(kind="differential:realnet", description="demo")]
    )
    compile(snippet, "<repro>", "exec")
    assert f"seed={spec.seed}" in snippet
    assert "check_realnet" in snippet
