"""Tail (follow) mode of ``iter_spool``: live spools, torn lines, stop.

The dashboard's ``/events`` endpoint sits on this iterator, so the
contract under test is the live one: a reader thread must see records a
writer thread appends within a poll interval, must never yield a
half-written line, and must never block or corrupt the writer.
"""

import gzip
import json
import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs.spool import SpoolingTracer, iter_spool
from repro.sim.trace import TraceRecord


def _record(t, kind="fds.ping", node=0, **detail):
    return TraceRecord(time=t, kind=kind, node=node, detail=detail)


class TestFollowValidation:
    def test_refuses_gzip_suffix(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write('{"time": 0.0, "kind": "x"}\n')
        with pytest.raises(ConfigurationError, match="gzip"):
            next(iter_spool(path, follow=True))

    def test_refuses_gzip_magic_without_suffix(self, tmp_path):
        path = tmp_path / "renamed.jsonl"
        path.write_bytes(
            gzip.compress(b'{"time": 0.0, "kind": "x"}\n')
        )
        with pytest.raises(ConfigurationError, match="gzip"):
            next(iter_spool(path, follow=True))

    def test_rejects_nonpositive_poll_interval(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="poll_interval"):
            next(iter_spool(path, follow=True, poll_interval=0.0))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no trace spool"):
            next(iter_spool(tmp_path / "absent.jsonl", follow=True))


class TestFollowStop:
    def test_stop_drains_existing_records_then_returns(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with SpoolingTracer(path) as tracer:
            for i in range(5):
                tracer.emit(_record(float(i)))
        stop = threading.Event()
        stop.set()
        records = list(
            iter_spool(path, follow=True, poll_interval=0.01, stop=stop)
        )
        assert [r.time for r in records] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_idle_marker_yields_none_on_empty_poll(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"time": 1.0, "kind": "fds.ping", "node": 3}\n')
        stop = threading.Event()
        out = []
        it = iter_spool(
            path, follow=True, poll_interval=0.01, stop=stop,
            idle_marker=True,
        )
        out.append(next(it))   # the record
        out.append(next(it))   # first empty poll -> None
        stop.set()
        out.extend(it)         # drains (nothing new) and returns
        assert out[0].time == 1.0 and out[0].node == 3
        assert out[1] is None

    def test_kind_filter_applies_in_follow_mode(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with SpoolingTracer(path) as tracer:
            tracer.emit(_record(0.0, kind="radio.tx"))
            tracer.emit(_record(1.0, kind="fds.detection"))
            tracer.emit(_record(2.0, kind="fdsx.not_nested"))
        stop = threading.Event()
        stop.set()
        records = list(
            iter_spool(path, kinds=["fds"], follow=True,
                       poll_interval=0.01, stop=stop)
        )
        assert [r.kind for r in records] == ["fds.detection"]


class TestFollowLive:
    def test_reader_thread_sees_writer_thread_appends(self, tmp_path):
        """A writer thread spools records while a reader tails the file;
        every record arrives intact, in order, without blocking either
        side (the acceptance criterion for live ``/events``)."""
        path = tmp_path / "live.jsonl"
        stop = threading.Event()
        total = 200
        seen = []

        def read():
            for record in iter_spool(
                path, follow=True, poll_interval=0.01, stop=stop
            ):
                seen.append(record)

        with SpoolingTracer(path, flush_every=1) as tracer:
            tracer.emit(_record(0.0))   # file exists before the reader starts
            reader = threading.Thread(target=read)
            reader.start()
            for i in range(1, total):
                tracer.emit(_record(float(i), payload="x" * (i % 37)))
                if i % 50 == 0:
                    time.sleep(0.02)   # let the reader interleave mid-stream
        # Writer done and flushed; give the reader one poll to drain.
        deadline = time.monotonic() + 5.0
        while len(seen) < total and time.monotonic() < deadline:
            time.sleep(0.01)
        stop.set()
        reader.join(timeout=5.0)
        assert not reader.is_alive()
        assert [r.time for r in seen] == [float(i) for i in range(total)]

    def test_torn_trailing_line_is_retried_not_dropped(self, tmp_path):
        """Bytes after the last newline are held back until the writer
        completes the line -- the record is yielded exactly once, whole."""
        path = tmp_path / "torn.jsonl"
        line = json.dumps(
            {"time": 2.5, "kind": "fds.detection", "node": 9, "target": 4}
        )
        with path.open("w", encoding="utf-8") as handle:
            handle.write('{"time": 1.0, "kind": "sim.crash", "node": 4}\n')
            handle.write(line[:10])   # torn: no newline, invalid JSON prefix
            handle.flush()

            stop = threading.Event()
            it = iter_spool(
                path, follow=True, poll_interval=0.01, stop=stop,
                idle_marker=True,
            )
            first = next(it)
            assert first.kind == "sim.crash"
            # While the line is torn the reader idles instead of parsing
            # the fragment.
            assert next(it) is None
            # Writer completes the line; the reader now yields it whole.
            handle.write(line[10:] + "\n")
            handle.flush()
        record = next(r for r in it if r is not None)
        assert record.kind == "fds.detection"
        assert record.detail == {"target": 4}
        stop.set()
        assert all(r is None for r in it)

    def test_non_follow_mode_unchanged(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with SpoolingTracer(path) as tracer:
            tracer.emit(_record(0.0))
            tracer.emit(_record(1.0))
        assert [r.time for r in iter_spool(path)] == [0.0, 1.0]
