"""The parallel experiment fabric: ordering, seeding, bit-identity.

The fabric's contract is that ``workers`` is *purely* a throughput knob:
``repeat_scenario``, ``mc_chunked``, and ``sweep_measure`` return
bit-identical results for any worker count, because work is split by fixed
rules (per-seed configs, a constant chunk count, the full grid), each unit
carries its own seed material, and aggregation happens in input order.
"""

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    DEFAULT_MC_CHUNKS,
    McEstimate,
    mc_chunked,
    mc_false_detection,
    merge_estimates,
)
from repro.analysis.sweep import sweep_measure
from repro.errors import AnalysisError, ConfigurationError, ExperimentError
from repro.experiments.parallel import (
    parallel_map,
    run_scenario_summaries,
    spawn_rngs,
    spawn_seed_sequences,
)
from repro.experiments.repeat import repeat_scenario
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.util.parallel import chunk_sizes, resolve_workers


def _square(x):  # module-level: must be picklable for the pool
    return x * x


def _np_measure(n, p):  # deterministic, picklable sweep measure
    return float(n) * p + 0.5


SMALL = ScenarioConfig(
    cluster_count=2,
    members_per_cluster=8,
    loss_probability=0.15,
    crash_count=1,
    executions=2,
)


class TestPrimitives:
    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ExperimentError):
            resolve_workers(0)

    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        serial = parallel_map(_square, items, workers=1)
        pooled = parallel_map(_square, items, workers=3)
        assert serial == [x * x for x in items]
        assert pooled == serial

    def test_parallel_map_empty_and_singleton(self):
        assert parallel_map(_square, [], workers=4) == []
        assert parallel_map(_square, [7], workers=4) == [49]

    def test_chunk_sizes_balanced(self):
        sizes = chunk_sizes(10, 3)
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        # More chunks than items: empty chunks are dropped, not emitted.
        assert all(s > 0 for s in chunk_sizes(2, 8))
        # Purely a function of (total, chunks).
        assert chunk_sizes(1000, 8) == chunk_sizes(1000, 8)

    def test_spawn_seed_sequences_deterministic_and_distinct(self):
        first = [np.random.default_rng(s).random() for s in spawn_seed_sequences(5, 4)]
        second = [np.random.default_rng(s).random() for s in spawn_seed_sequences(5, 4)]
        assert first == second
        assert len(set(first)) == 4  # children draw distinct streams

    def test_spawn_rngs(self):
        a, b = spawn_rngs(9, 2)
        assert a.random() != b.random()
        again = spawn_rngs(9, 2)
        assert again[0].random() != again[1].random()


class TestRepeatParallel:
    def test_repeat_bit_identical_to_serial(self):
        seeds = [1, 2, 3, 4]
        serial = repeat_scenario(SMALL, seeds, workers=1)
        pooled = repeat_scenario(SMALL, seeds, workers=2)
        assert pooled.metrics == serial.metrics
        assert pooled.seeds == serial.seeds

    def test_summaries_match_direct_runs(self):
        from dataclasses import replace

        configs = [replace(SMALL, seed=s) for s in (11, 12)]
        pooled = run_scenario_summaries(configs, workers=2)
        direct = [run_scenario(c).summary() for c in configs]
        assert pooled == direct


class TestMonteCarloParallel:
    def test_mc_bit_identical_to_serial(self):
        serial = mc_chunked(
            mc_false_detection, 60, 0.2, 4000, seed=3, workers=1
        )
        pooled = mc_chunked(
            mc_false_detection, 60, 0.2, 4000, seed=3, workers=3
        )
        assert pooled == serial
        assert serial.trials == 4000

    def test_chunking_is_fixed_not_worker_derived(self):
        # The estimate depends on the chunk count, which is a constant --
        # if it ever tracked ``workers`` the bit-identity guarantee dies.
        assert DEFAULT_MC_CHUNKS == 8
        one = mc_chunked(
            mc_false_detection, 60, 0.2, 3000, seed=5, workers=1
        )
        two = mc_chunked(
            mc_false_detection, 60, 0.2, 3000, seed=5, workers=2
        )
        assert one == two

    def test_merge_estimates_pools_counts(self):
        parts = [
            McEstimate(estimate=0.5, prefactor=1.0,
                       conditional_successes=5, trials=10),
            McEstimate(estimate=0.25, prefactor=1.0,
                       conditional_successes=5, trials=20),
        ]
        merged = merge_estimates(parts)
        assert merged.trials == 30
        assert merged.conditional_successes == 10
        assert merged.estimate == pytest.approx(10 / 30)

    def test_merge_rejects_mismatched_prefactors(self):
        parts = [
            McEstimate(estimate=0.5, prefactor=1.0,
                       conditional_successes=1, trials=2),
            McEstimate(estimate=0.5, prefactor=2.0,
                       conditional_successes=1, trials=2),
        ]
        with pytest.raises(AnalysisError):
            merge_estimates(parts)

    def test_merge_rejects_empty_sequence(self):
        with pytest.raises(ConfigurationError):
            merge_estimates([])

    def test_merge_rejects_mismatched_parameters(self):
        # Chunks from different (n, p) experiments must never be pooled.
        parts = [
            McEstimate(estimate=0.5, prefactor=1.0,
                       conditional_successes=1, trials=2, n=40, p=0.4),
            McEstimate(estimate=0.5, prefactor=1.0,
                       conditional_successes=1, trials=2, n=41, p=0.4),
        ]
        with pytest.raises(ConfigurationError):
            merge_estimates(parts)

    def test_merge_carries_parameters(self):
        parts = [
            McEstimate(estimate=0.5, prefactor=1.0,
                       conditional_successes=1, trials=2, n=40, p=0.4),
            McEstimate(estimate=0.5, prefactor=1.0,
                       conditional_successes=1, trials=2, n=40, p=0.4),
        ]
        merged = merge_estimates(parts)
        assert merged.n == 40
        assert merged.p == 0.4


class TestSweepParallel:
    def test_sweep_bit_identical_to_serial(self):
        serial = sweep_measure(
            "toy", _np_measure,
            p_values=(0.1, 0.2, 0.3), n_values=(10, 20), workers=1,
        )
        pooled = sweep_measure(
            "toy", _np_measure,
            p_values=(0.1, 0.2, 0.3), n_values=(10, 20), workers=2,
        )
        assert pooled.curves == serial.curves
        assert pooled.p_values == serial.p_values
        assert serial.value_at(20, 0.3) == pytest.approx(20 * 0.3 + 0.5)
