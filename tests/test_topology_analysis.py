"""Tests for topology analysis (connectivity, components)."""

import networkx as nx
import pytest

from repro.topology.analysis import (
    connected_components,
    degree_statistics,
    is_connected,
    isolated_nodes,
    largest_component,
    reachable_from,
    to_networkx,
)
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import uniform_rect_placement
from repro.util.geometry import Vec2


def two_islands():
    positions = {
        0: Vec2(0, 0), 1: Vec2(50, 0), 2: Vec2(100, 0),
        3: Vec2(1000, 0), 4: Vec2(1050, 0),
        5: Vec2(5000, 5000),  # isolated
    }
    return UnitDiskGraph(positions, 100.0)


class TestComponents:
    def test_island_decomposition(self):
        g = two_islands()
        components = connected_components(g)
        assert [sorted(c) for c in components] == [[0, 1, 2], [3, 4], [5]]

    def test_largest_first(self):
        g = two_islands()
        assert largest_component(g) == {0, 1, 2}

    def test_is_connected(self):
        assert not is_connected(two_islands())
        g = UnitDiskGraph({0: Vec2(0, 0), 1: Vec2(50, 0)}, 100.0)
        assert is_connected(g)

    def test_isolated_nodes(self):
        assert isolated_nodes(two_islands()) == (5,)

    def test_matches_networkx(self, rng):
        placement = uniform_rect_placement(120, 600.0, 600.0, rng)
        g = UnitDiskGraph(placement, 90.0)
        ours = sorted(sorted(c) for c in connected_components(g))
        theirs = sorted(
            sorted(c) for c in nx.connected_components(to_networkx(g))
        )
        assert ours == theirs


class TestReachability:
    def test_reachable_from_single_source(self):
        g = two_islands()
        assert reachable_from(g, [0]) == {0, 1, 2}

    def test_reachable_from_multiple_sources(self):
        g = two_islands()
        assert reachable_from(g, [0, 3]) == {0, 1, 2, 3, 4}

    def test_source_always_included(self):
        g = two_islands()
        assert reachable_from(g, [5]) == {5}


class TestDegreeStats:
    def test_values(self):
        g = two_islands()
        stats = degree_statistics(g)
        assert stats["min"] == 0.0
        assert stats["max"] == 2.0

    def test_networkx_export_positions(self):
        g = two_islands()
        nxg = to_networkx(g)
        assert nxg.nodes[0]["pos"] == (0.0, 0.0)
        assert nxg.number_of_edges() == g.edge_count()
