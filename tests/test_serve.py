"""The dashboard service: endpoint/CLI byte-identity, SSE, metrics.

The acceptance contract: every ``/api/*`` JSON body is byte-for-byte
the output of the matching ``repro trace ... --json`` (or ``repro
campaign status --json``) invocation on the same spool/store, and
``/events`` streams records appended to a *growing* spool within one
poll interval without disturbing the writer.
"""

import contextlib
import io
import json
import re
import socket
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.obs.spool import SpoolingTracer
from repro.serve.http import DashboardServer
from repro.serve.state import SpoolView, StoreView
from repro.sim.trace import TraceRecord


@pytest.fixture(scope="module")
def spool(tmp_path_factory):
    """One small traced scenario shared by the read-only endpoint tests."""
    path = tmp_path_factory.mktemp("serve") / "trace.jsonl"
    config = ScenarioConfig(
        cluster_count=2, members_per_cluster=8, crash_count=2,
        executions=3, seed=13,
    )
    with SpoolingTracer(path) as tracer:
        run_scenario(config, tracer=tracer)
    return path


@contextlib.contextmanager
def serving(spool_path, store_root=None, poll_interval=0.05):
    store_view = StoreView(store_root) if store_root is not None else None
    server = DashboardServer(
        ("127.0.0.1", 0), SpoolView(spool_path),
        store_view=store_view, poll_interval=poll_interval,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def _get(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, response.headers.get("Content-Type"), \
            response.read()


def _cli(*argv):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        rc = main(list(argv))
    assert rc == 0
    return buffer.getvalue().encode("utf-8")


class TestEndpointCliAgreement:
    def test_summary_bytes_match_cli(self, spool):
        with serving(spool) as port:
            _, ctype, body = _get(port, "/api/summary")
        assert ctype == "application/json; charset=utf-8"
        assert body == _cli("trace", "summarize", str(spool), "--json")

    def test_timeline_bytes_match_cli(self, spool):
        with serving(spool) as port:
            _, _, default = _get(port, "/api/timeline")
            _, _, bucketed = _get(port, "/api/timeline?bucket=5.0")
        assert default == _cli("trace", "timeline", str(spool), "--json")
        assert bucketed == _cli(
            "trace", "timeline", str(spool), "--json", "--bucket", "5.0"
        )

    def test_latency_bytes_match_cli(self, spool):
        with serving(spool) as port:
            _, _, body = _get(port, "/api/latency")
        assert body == _cli("trace", "latency", str(spool), "--json")

    def test_lineage_bytes_match_cli(self, spool):
        crashed = json.loads(
            _cli("trace", "latency", str(spool), "--json")
        )["crashes"]
        target = crashed[0]["node"]
        with serving(spool) as port:
            _, _, body = _get(port, f"/api/lineage?target={target}")
        assert body == _cli(
            "trace", "lineage", str(spool), str(target), "--json"
        )


class TestTopologyEndpoint:
    def test_topology_reconstructs_cluster_map(self, spool):
        with serving(spool) as port:
            _, _, body = _get(port, "/api/topology")
        topo = json.loads(body)
        assert topo["found"] is True
        assert len(topo["clusters"]) == 2
        assert topo["meta"]["nodes"] == len(topo["nodes"])
        roles = {n["role"] for n in topo["nodes"]}
        assert "head" in roles and "member" in roles
        heads = {c["head"] for c in topo["clusters"]}
        assert {n["id"] for n in topo["nodes"] if n["role"] == "head"} \
            == heads
        # Both injected crashes appear with their detection stamps.
        assert topo["crashed"] == 2
        stamped = [n for n in topo["nodes"] if n["crashed_at"] is not None]
        assert len(stamped) == 2
        # Every node carries plottable coordinates.
        assert all(
            isinstance(n["x"], float) and isinstance(n["y"], float)
            for n in topo["nodes"]
        )


class TestErrorsAndPage:
    def test_unknown_route_is_json_404(self, spool):
        with serving(spool) as port:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, "/api/nope")
            assert excinfo.value.code == 404
            assert json.loads(excinfo.value.read())["status"] == 404

    def test_campaigns_without_store_is_404(self, spool):
        with serving(spool) as port:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, "/api/campaigns")
            assert excinfo.value.code == 404

    def test_lineage_without_target_is_400(self, spool):
        with serving(spool) as port:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, "/api/lineage")
            assert excinfo.value.code == 400

    def test_index_page_embeds_the_dashboard(self, spool):
        with serving(spool) as port:
            status, ctype, body = _get(port, "/")
        assert status == 200
        assert ctype == "text/html; charset=utf-8"
        html = body.decode("utf-8")
        for anchor in ('id="map"', 'id="timeline"', 'id="latency"',
                       "EventSource", "/api/summary"):
            assert anchor in html


class TestMetricsEndpoint:
    #: One 0.0.4 exposition line: comment, sample (optionally with a
    #: ``le`` label), blank terminator handled by the caller.
    SAMPLE_RE = re.compile(
        r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
        r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
        r"[-+]?([0-9.]+([eE][-+]?[0-9]+)?|inf|nan))$"
    )

    def test_metrics_exposition_format_and_server_counters(self, spool):
        with serving(spool) as port:
            _get(port, "/api/summary")
            status, ctype, body = _get(port, "/metrics")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        text = body.decode("utf-8")
        assert text.endswith("\n")
        for line in text.rstrip("\n").split("\n"):
            assert self.SAMPLE_RE.match(line), f"bad exposition line: {line!r}"
        # The server's own request instrumentation is present, counters
        # under the _total convention, histogram with the +Inf bucket.
        assert "repro_serve_requests_total" in text
        assert 'repro_serve_request_seconds_bucket{le="+Inf"}' in text
        assert "repro_serve_request_seconds_sum" in text
        # At least the summary request and this scrape were counted.
        match = re.search(r"^repro_serve_requests_total (\d+)$", text, re.M)
        assert match and int(match.group(1)) >= 2


class TestCampaignsEndpoint:
    def test_campaigns_bytes_match_cli_status_json(self, spool, tmp_path):
        store = tmp_path / "store"
        _cli(
            "campaign", "run", "--kind", "mc", "--n", "20", "--p", "0.3",
            "--trials", "4000", "--chunks", "2", "--store", str(store),
        )
        with serving(spool, store_root=store) as port:
            _, _, body = _get(port, "/api/campaigns")
        cli_bytes = _cli("campaign", "status", "--store", str(store), "--json")
        assert body == cli_bytes
        payload = json.loads(body)
        assert len(payload["campaigns"]) == 1
        assert payload["campaigns"][0]["complete"] is True

    def test_store_metrics_fold_into_exposition(self, spool, tmp_path):
        store = tmp_path / "store"
        _cli(
            "campaign", "run", "--kind", "mc", "--n", "20", "--p", "0.3",
            "--trials", "4000", "--chunks", "2", "--store", str(store),
        )
        with serving(spool, store_root=store) as port:
            _, _, body = _get(port, "/metrics")
        text = body.decode("utf-8")
        assert "repro_campaign_chunks_done_total" in text \
            or "repro_campaign" in text


class TestLiveEvents:
    def _open_sse(self, port, query=""):
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock.sendall(
            f"GET /events{query} HTTP/1.1\r\nHost: dash\r\n\r\n".encode()
        )
        return sock

    def _read_until(self, sock, needle, timeout=5.0):
        deadline = time.monotonic() + timeout
        buffer = b""
        sock.settimeout(0.2)
        while time.monotonic() < deadline:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                continue
            if not chunk:
                break
            buffer += chunk
            if needle in buffer:
                return buffer
        raise AssertionError(
            f"{needle!r} not seen on the SSE stream; got {buffer!r}"
        )

    def test_events_stream_new_records_within_poll_interval(self, tmp_path):
        """A live writer appends while an SSE client is connected: the
        new record must arrive promptly and the writer must not block."""
        path = tmp_path / "live.jsonl"
        with SpoolingTracer(path, flush_every=1) as tracer:
            tracer.emit(TraceRecord(
                time=0.0, kind="meta.scenario", node=None,
                detail={"nodes": 2, "phi": 30.0},
            ))
            with serving(path, poll_interval=0.05) as port:
                sock = self._open_sse(port)
                header = self._read_until(sock, b"data: ")
                assert b"200" in header.split(b"\r\n", 1)[0]
                assert b"text/event-stream" in header

                started = time.monotonic()
                tracer.emit(TraceRecord(
                    time=1.0, kind="fds.detection", node=1,
                    detail={"target": 0},
                ))
                buffer = self._read_until(sock, b"fds.detection")
                elapsed = time.monotonic() - started
                assert elapsed < 2.0  # poll_interval is 0.05 s
                frame = next(
                    line for line in buffer.split(b"\n\n")
                    if b"fds.detection" in line
                )
                payload = json.loads(frame.split(b"data: ", 1)[1])
                assert payload == {
                    "time": 1.0, "kind": "fds.detection",
                    "node": 1, "target": 0,
                }
                sock.close()
        # The writer's spool survived the concurrent reader intact.
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 2
        assert all(json.loads(line) for line in lines)

    def test_events_kind_filter(self, tmp_path):
        path = tmp_path / "live.jsonl"
        with SpoolingTracer(path, flush_every=1) as tracer:
            tracer.emit(TraceRecord(
                time=0.0, kind="radio.tx", node=0, detail={},
            ))
            tracer.emit(TraceRecord(
                time=0.5, kind="fds.relay", node=1, detail={},
            ))
            with serving(path, poll_interval=0.05) as port:
                sock = self._open_sse(port, "?kinds=fds")
                buffer = self._read_until(sock, b"fds.relay")
                assert b"radio.tx" not in buffer
                sock.close()

    def test_shutdown_terminates_open_streams(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text('{"time": 0.0, "kind": "meta.scenario"}\n')
        server = DashboardServer(
            ("127.0.0.1", 0), SpoolView(path), poll_interval=0.05
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        sock = self._open_sse(server.server_address[1])
        self._read_until(sock, b"data: ")
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        sock.close()
