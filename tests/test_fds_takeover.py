"""DCH takeover tests: real CH failures and false-detection reverts."""

import pytest

from repro.failure.injection import FailureInjector
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.metrics.properties import evaluate_properties
from repro.topology.placement import cluster_disk_placement

from tests.fds_helpers import TargetedLoss, deploy


class TestRealTakeover:
    def test_primary_deputy_takes_over(self, rng):
        placement = cluster_disk_placement(20, 100.0, rng)
        deployment, layout, tracer, network = deploy(placement)
        dch = layout.clusters[0].primary_deputy
        injector = FailureInjector(network, deployment.config)
        injector.crash_before_execution(0, execution=1)
        deployment.run_executions(3)
        takeovers = tracer.filter(ev.TAKEOVER)
        assert len(takeovers) == 1
        assert takeovers[0].detail["old_head"] == 0
        assert takeovers[0].detail["new_head"] == int(dch)

    def test_members_adopt_new_head(self, rng):
        placement = cluster_disk_placement(20, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        dch = layout.clusters[0].primary_deputy
        injector = FailureInjector(network, deployment.config)
        injector.crash_before_execution(0, execution=1)
        deployment.run_executions(3)
        for nid in network.operational_ids():
            assert deployment.protocols[nid].head == dch

    def test_new_head_serves_updates(self, rng):
        placement = cluster_disk_placement(20, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        injector.crash_before_execution(0, execution=1)
        deployment.run_executions(4)
        # Executions after the takeover are served by the new head.
        for nid in network.operational_ids():
            received = deployment.protocols[nid].updates_received
            assert {2, 3} <= received

    def test_ch_failure_completeness(self, rng):
        placement = cluster_disk_placement(20, 100.0, rng)
        deployment, _layout, _tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        injector.crash_before_execution(0, execution=1)
        deployment.run_executions(3)
        report = evaluate_properties(deployment)
        assert report.completeness[0] == 1.0
        assert report.is_accurate

    def test_second_deputy_takes_over_if_first_also_dead(self, rng):
        # Pin the deputy chain (no coverage re-ranking) so the succession
        # order is exactly the installed one.
        placement = cluster_disk_placement(20, 100.0, rng)
        cfg = FdsConfig(phi=5.0, thop=0.5, rerank_deputies=False)
        deployment, layout, tracer, network = deploy(placement, fds_config=cfg)
        first, second = layout.clusters[0].deputies[:2]
        injector = FailureInjector(network, deployment.config)
        injector.crash_before_execution(first, execution=1)
        injector.crash_before_execution(0, execution=2)
        deployment.run_executions(4)
        takeovers = tracer.filter(ev.TAKEOVER)
        assert len(takeovers) == 1
        assert takeovers[0].detail["new_head"] == int(second)
        report = evaluate_properties(deployment)
        assert report.completeness[0] == 1.0

    def test_dch_disabled_means_no_takeover(self, rng):
        placement = cluster_disk_placement(20, 100.0, rng)
        cfg = FdsConfig(phi=5.0, thop=0.5, dch_enabled=False)
        deployment, _layout, tracer, network = deploy(placement, fds_config=cfg)
        injector = FailureInjector(network, deployment.config)
        injector.crash_before_execution(0, execution=1)
        deployment.run_executions(3)
        assert tracer.count(ev.TAKEOVER) == 0
        # Nobody detects the CH failure: completeness is lost.
        report = evaluate_properties(deployment)
        assert report.completeness[0] == 0.0


class TestTakeoverCrossClusterPropagation:
    def test_foreign_gateways_learn_new_head_via_overheard_peer_forwards(
        self, rng
    ):
        """After a takeover, the neighbor cluster's gateways may be out of
        the new head's radio range (the boundary was built around the old
        center).  The overheard peer-forward channel must still deliver
        the takeover news inbound; the failure must reach every cluster.

        Regression for a live bug: seed/topology chosen so that every
        (0,1)-boundary forwarder is >100 m from the post-takeover head.
        """
        import numpy as np

        from repro.energy.model import EnergyConfig, EnergyModel
        from repro.fds.service import install_fds
        from repro.sim.network import NetworkConfig, build_network
        from repro.topology.generators import corridor_field
        from repro.topology.graph import UnitDiskGraph
        from repro.cluster.geometric import build_clusters
        from repro.metrics.properties import evaluate_properties

        local_rng = np.random.default_rng(seed=23)
        positions = corridor_field(3, 24, 100.0, local_rng)
        layout = build_clusters(UnitDiskGraph(positions, radius=100.0))
        middle = layout.heads[1]
        network = build_network(
            positions, NetworkConfig(loss_probability=0.1, seed=23)
        )
        config = FdsConfig(phi=20.0, thop=0.5)
        energy = EnergyModel(EnergyConfig(capacity=500.0, harvest_rate=0.02))
        deployment = install_fds(network, layout, config, energy=energy)
        injector = FailureInjector(network, config)
        injector.crash_before_execution(middle, execution=2)
        deployment.run_executions(7)
        report = evaluate_properties(deployment)
        assert report.completeness[middle] == 1.0
        assert report.is_accurate


class TestFalseTakeoverRevert:
    def _deploy_with_dch_blackout(self, rng, blackout):
        """All copies from the CH (node 0) to the DCH are lost during
        ``blackout`` = (t0, t1), and every digest/heartbeat that could
        witness the CH at the DCH is suppressed too -- forcing the DCH
        to falsely conclude the CH failed."""
        placement = cluster_disk_placement(15, 100.0, rng)
        # Determine the DCH first (geometric oracle is deterministic).
        probe_deployment, layout, _t, _n = deploy(placement)
        dch = int(layout.clusters[0].primary_deputy)
        t0, t1 = blackout

        def predicate(sender, receiver, time):
            # The DCH hears nothing at all during the blackout window, so
            # no digest can witness the CH either (conditions C1'-C3').
            return receiver == dch and t0 <= time <= t1

        loss = TargetedLoss(predicate)
        deployment, layout, tracer, network = deploy(
            placement, loss_model=loss
        )
        return deployment, layout, tracer, network, dch

    def test_false_takeover_then_revert(self, rng):
        # Execution 1 spans t=[5.0, 7.5]; black out the DCH for it.
        deployment, layout, tracer, network, dch = (
            self._deploy_with_dch_blackout(rng, blackout=(4.9, 7.6))
        )
        deployment.run_executions(4)
        takeovers = tracer.filter(ev.TAKEOVER)
        assert len(takeovers) == 1
        assert takeovers[0].detail["new_head"] == dch
        # The CH is alive; its next heartbeat must trigger the revert.
        reverts = tracer.filter(ev.TAKEOVER_REVERTED)
        assert len(reverts) == 1
        assert reverts[0].detail["old_head"] == 0
        # Authority restored and no residual suspicion of the CH.
        assert deployment.protocols[dch].head == 0
        report = evaluate_properties(deployment)
        assert report.is_accurate

    def test_members_follow_revert(self, rng):
        deployment, layout, tracer, network, dch = (
            self._deploy_with_dch_blackout(rng, blackout=(4.9, 7.6))
        )
        deployment.run_executions(4)
        for nid in network.operational_ids():
            assert deployment.protocols[nid].head == 0
