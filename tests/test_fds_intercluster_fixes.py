"""Regression tests for the inter-cluster forwarding fixes.

Three bugs, each driven directly on a unit forwarder:

1. a second duty toward a destination used to *replace* the armed
   timer's watch set, silently dropping the first report's retries;
2. the origin watch used to demand one overheard report covering *all*
   watched failures (superset match), spuriously rebroadcasting when
   forwarders legitimately carried partial subsets;
3. an inbound duty's retry wait used to take ``max`` over all serviced
   boundaries instead of the boundary the report actually crossed.
"""

import pytest

from repro.audit.invariants import audit_forwarder_conformance
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.fds.intercluster import InterclusterForwarder
from repro.fds.messages import FailureReport, HealthStatusUpdate
from repro.sim.engine import Simulator
from repro.sim.medium import RadioMedium
from repro.sim.node import SimNode
from repro.sim.trace import RecordingTracer
from repro.util.geometry import Vec2

MY_ID = 1
MY_HEAD = 50
PEER_B = 55
PEER_C = 99


def make_node():
    sim = Simulator()
    tracer = RecordingTracer()
    medium = RadioMedium(
        sim, transmission_range=100.0, max_delay=0.01, tracer=tracer
    )
    node = SimNode(MY_ID, Vec2(0, 0), sim, medium)
    # Addressable but out-of-range peers, so unicasts to them are legal.
    for i, extra in enumerate((MY_HEAD, PEER_B, PEER_C)):
        SimNode(extra, Vec2(5000.0 + i * 300.0, 5000.0), sim, medium)
    return sim, node, tracer


def cfg(**kwargs):
    defaults = dict(phi=20.0, thop=0.5)
    defaults.update(kwargs)
    return FdsConfig(**defaults)


def make_forwarder(node, config, duties, head_boundaries=(), head=MY_HEAD):
    rebroadcasts = []
    forwarder = InterclusterForwarder(
        node,
        config,
        duties=dict(duties),
        head_boundaries=dict(head_boundaries),
        get_head=lambda: head,
        get_history=lambda: frozenset(),
        rebroadcast_update=lambda: rebroadcasts.append(node.sim.now),
    )
    return forwarder, rebroadcasts


def update(head, failures, execution=1, **kwargs):
    return HealthStatusUpdate(
        head=head,
        execution=execution,
        new_failures=frozenset(failures),
        **kwargs,
    )


class TestMergedDutyKeepsRetryCoverage:
    def test_second_duty_merges_watch_set(self):
        sim, node, tracer = make_node()
        config = cfg()
        fwd, _ = make_forwarder(node, config, {PEER_B: (0, 1)})
        fwd.on_local_update(update(MY_HEAD, {7}))
        sim.run_until(config.thop)
        fwd.on_local_update(update(MY_HEAD, {8}))
        arms = [r for r in tracer.iter_kind(ev.INTER_ARM)]
        assert arms[-1].detail["failures"] == [7, 8]

    def test_acked_half_does_not_cancel_other_halfs_retries(self):
        sim, node, tracer = make_node()
        config = cfg()
        fwd, _ = make_forwarder(node, config, {PEER_B: (0, 1)})
        fwd.on_local_update(update(MY_HEAD, {7}))
        sim.run_until(config.thop)
        fwd.on_local_update(update(MY_HEAD, {8}))
        # Peer B's overheard broadcast acknowledges only the second report.
        fwd.on_foreign_update(
            HealthStatusUpdate(
                head=PEER_B, execution=1, known_failures=frozenset({8})
            )
        )
        sim.run()
        retries = [
            r
            for r in tracer.iter_kind(ev.REPORT_FORWARDED)
            if r.time > config.thop + 1e-9
        ]
        assert retries, "failure 7 was never retried after the merge"
        assert all(r.detail["failures"] == [7] for r in retries)
        assert audit_forwarder_conformance(tracer, config) == []


class TestOriginWatchAccumulatesCoverage:
    def _watch(self, config):
        sim, node, tracer = make_node()
        fwd, rebroadcasts = make_forwarder(
            node,
            config,
            {},
            head_boundaries={PEER_B: 1, PEER_C: 1},
            head=MY_ID,
        )
        fwd.on_local_update(update(MY_ID, {7, 8}))
        return sim, fwd, tracer, rebroadcasts

    def overheard(self, fwd, failures):
        fwd.on_overheard_report(
            FailureReport(
                sender=PEER_B,
                origin=MY_ID,
                target_head=PEER_C,
                failures=frozenset(failures),
            )
        )

    def test_partial_reports_accumulate_and_cancel(self):
        config = cfg()
        sim, fwd, tracer, rebroadcasts = self._watch(config)
        self.overheard(fwd, {7})
        self.overheard(fwd, {8})
        sim.run()
        assert rebroadcasts == []
        assert fwd.origin_retransmissions == 0
        assert audit_forwarder_conformance(tracer, config) == []

    def test_uncovered_remainder_still_rebroadcasts(self):
        config = cfg()
        sim, fwd, tracer, rebroadcasts = self._watch(config)
        self.overheard(fwd, {7})  # 8 remains uncovered
        sim.run()
        assert rebroadcasts, "watch with uncovered failures must rebroadcast"
        pending = [
            r.detail["pending"]
            for r in tracer.iter_kind(ev.ORIGIN_REBROADCAST)
        ]
        assert pending[0] == [8]
        assert audit_forwarder_conformance(tracer, config) == []


class TestInboundRetryWaitFollowsOriginBoundary:
    def test_retry_waits_match_crossed_boundary(self):
        sim, node, tracer = make_node()
        config = cfg()
        # Two boundaries with different ladders; the report crosses B's.
        fwd, _ = make_forwarder(node, config, {PEER_B: (0, 1), PEER_C: (0, 3)})
        fwd.on_foreign_update(update(PEER_B, {7}))
        sim.run()  # never acknowledged: retries until the budget runs out
        arms = [
            r
            for r in tracer.iter_kind(ev.INTER_ARM)
            if r.detail["dest"] == MY_HEAD and not r.detail["standby"]
        ]
        assert len(arms) == config.max_forward_retries + 1
        expected = config.post_forward_wait(1)
        assert all(r.detail["delay"] == pytest.approx(expected) for r in arms)
        assert audit_forwarder_conformance(tracer, config) == []

    def test_unknown_origin_falls_back_to_longest_ladder(self):
        sim, node, _tracer = make_node()
        config = cfg()
        fwd, _ = make_forwarder(node, config, {PEER_B: (0, 1), PEER_C: (0, 3)})
        assert fwd._backup_count_for(MY_HEAD, origin=77) == 3


class TestResetClearsWatchState:
    def test_reset_forgets_armed_failures(self):
        sim, node, _tracer = make_node()
        fwd, _ = make_forwarder(node, cfg(), {PEER_B: (0, 1)})
        fwd.on_local_update(update(MY_HEAD, {7}))
        assert fwd._armed_failures
        fwd.reset()
        assert fwd._armed_failures == {}
        assert fwd._timers == {}
