"""CLI surface of campaigns: exit codes, SIGINT handling, status/gc.

The hard exit-path contract (tested with a real subprocess, per the
issue): a SIGINT mid-campaign must flush the journal and exit 130, and
the subsequent resume must produce a merged result bit-identical to a
never-interrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.campaign.cli import find_repo_root
from repro.campaign.telemetry import read_events

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

SCENARIO_ARGS = [
    "--kind", "scenario", "--clusters", "2", "--members", "8",
    "--loss-p", "0.15", "--crashes", "1", "--executions", "2",
    "--seeds", "6", "--seed-base", "1",
]

MC_ARGS = [
    "--kind", "mc", "--estimator", "false_detection",
    "--n", "40", "--p", "0.4", "--trials", "12000",
    "--chunks", "6", "--seed", "3",
]


def _campaign_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _journal_paths(store: Path):
    return list((store / "campaigns").glob("*/journal.jsonl"))


class TestExitCodes:
    def test_stop_after_exits_partial(self, tmp_path, capsys):
        code = main([
            "campaign", "run", *MC_ARGS,
            "--store", str(tmp_path / "store"), "--stop-after", "2",
        ])
        assert code == 3
        assert "partial" in capsys.readouterr().out

    def test_complete_exits_zero_and_writes_result(self, tmp_path, capsys):
        result_path = tmp_path / "result.json"
        code = main([
            "campaign", "run", *MC_ARGS,
            "--store", str(tmp_path / "store"),
            "--result-json", str(result_path),
        ])
        assert code == 0
        payload = json.loads(result_path.read_text())
        assert payload["status"] == "complete"
        assert payload["merged"]["trials"] == 12000

    def test_resume_by_id_and_status(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "campaign", "run", *MC_ARGS, "--store", store,
            "--stop-after", "1",
        ]) == 3
        out = capsys.readouterr().out
        campaign_id = out.split()[1].rstrip(":")
        assert main([
            "campaign", "resume", "--id", campaign_id, "--store", store,
        ]) == 0
        assert main(["campaign", "status", "--store", store]) == 0
        status_out = capsys.readouterr().out
        assert campaign_id in status_out
        assert "6/6" in status_out

    def test_resume_unknown_id_fails(self, tmp_path, capsys):
        assert main([
            "campaign", "resume", "--id", "doesnotexist",
            "--store", str(tmp_path / "store"),
        ]) == 1

    def test_gc_runs(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["campaign", "run", *MC_ARGS, "--store", store])
        assert main(["campaign", "gc", "--store", store, "--dry-run"]) == 0
        assert main(["campaign", "gc", "--store", store, "--all"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out


class TestSigint:
    def test_sigint_flushes_journal_and_resume_matches(self, tmp_path):
        """kill -INT mid-campaign -> 130, journal intact, resume identical."""
        store = tmp_path / "store"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run",
             *SCENARIO_ARGS, "--store", str(store)],
            env=_campaign_env(), cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            # Wait for at least one journaled chunk, then interrupt.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                journals = _journal_paths(store)
                if journals and any(
                    e.get("event") == "chunk_done"
                    for e in read_events(journals[0])
                ):
                    break
                time.sleep(0.05)
                if proc.poll() is not None:
                    pytest.fail(
                        "campaign finished before it could be interrupted:\n"
                        + proc.stdout.read()
                    )
            else:
                pytest.fail("no chunk journaled within 60s")
            proc.send_signal(signal.SIGINT)
            code = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert code == 130

        # The write-ahead log survived the signal: every line parses and
        # every journaled chunk's object exists in the store.
        journal = read_events(_journal_paths(store)[0])
        done = [e for e in journal if e["event"] == "chunk_done"]
        assert done
        for event in done:
            key = event["key"]
            assert (store / "objects" / key[:2] / f"{key}.json").is_file()

        # Resume and compare against an uninterrupted run, byte for byte.
        resumed_json = tmp_path / "resumed.json"
        fresh_json = tmp_path / "fresh.json"
        assert main([
            "campaign", "run", *SCENARIO_ARGS, "--store", str(store),
            "--result-json", str(resumed_json),
        ]) == 0
        assert main([
            "campaign", "run", *SCENARIO_ARGS,
            "--store", str(tmp_path / "fresh-store"),
            "--result-json", str(fresh_json),
        ]) == 0
        assert resumed_json.read_bytes() == fresh_json.read_bytes()


class TestFormationKnobs:
    def test_campaign_run_roundtrips_formation_config(self, tmp_path, capsys):
        """``campaign run --formation protocol`` must store the formation
        knobs in the manifest so a resume replays the same formation."""
        from repro.campaign.plans import plan_from_manifest
        from repro.campaign.store import config_from_canonical

        store = tmp_path / "store"
        args = [
            "campaign", "run", "--kind", "scenario",
            "--clusters", "2", "--members", "8", "--loss-p", "0.1",
            "--crashes", "1", "--executions", "2",
            "--seeds", "2", "--seed-base", "1",
            "--engine", "array", "--formation", "protocol",
            "--formation-iterations", "2", "--formation-backoff", "0.3",
        ]
        first = tmp_path / "first.json"
        assert main([*args, "--store", str(store),
                     "--result-json", str(first)]) == 0
        capsys.readouterr()

        manifests = list((store / "campaigns").glob("*/manifest.json"))
        assert len(manifests) == 1
        plan = plan_from_manifest(json.loads(manifests[0].read_text()))
        config = config_from_canonical(plan.chunks[0].payload["config"])
        assert config.formation == "protocol"
        assert config.formation_iterations == 2
        assert config.formation_backoff_fraction == 0.3
        assert config.engine == "array"

        # A second identical run is pure cache hits, byte-identical.
        second = tmp_path / "second.json"
        assert main([*args, "--store", str(store),
                     "--result-json", str(second)]) == 0
        assert "2 cache hit(s), 0 executed" in capsys.readouterr().out
        assert first.read_bytes() == second.read_bytes()


class TestSoakCli:
    def test_soak_store_caches_verdicts(self, tmp_path, capsys):
        store = str(tmp_path / "soak-store")
        args = ["soak", "--iterations", "1", "--seed", "0", "--store", store]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cached" not in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "(cached)" in second
        assert "1 cached" in second

    def test_soak_keyboard_interrupt_exits_130(self, tmp_path, capsys,
                                               monkeypatch):
        import repro.audit.soak as soak_module

        def _interrupt(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(soak_module, "soak_iteration", _interrupt)
        code = main([
            "soak", "--iterations", "3", "--seed", "0",
            "--store", str(tmp_path / "store"),
        ])
        assert code == 130
        assert "interrupted" in capsys.readouterr().out


class TestBenchCli:
    def test_find_repo_root(self):
        assert find_repo_root() == REPO_ROOT


class TestStatusJson:
    def test_status_json_is_stable_sorted_and_has_progress(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        # Two campaigns so the sort order is observable.
        assert main(["campaign", "run", *MC_ARGS, "--store", store]) == 0
        assert main([
            "campaign", "run", "--kind", "mc", "--estimator",
            "incompleteness", "--n", "30", "--p", "0.3",
            "--trials", "8000", "--chunks", "4", "--store", store,
        ]) == 0
        capsys.readouterr()
        assert main([
            "campaign", "status", "--store", store, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["store"] == store
        ids = [info["id"] for info in payload["campaigns"]]
        assert len(ids) == 2 and ids == sorted(ids)
        for info in payload["campaigns"]:
            assert info["complete"] is True
            progress = info["progress"]
            # Finished campaigns report drained ETA and their final rate.
            assert progress["eta_s"] == 0.0
            assert progress["replications_done"] >= 1
            assert progress["reps_per_s"] is None \
                or progress["reps_per_s"] >= 0.0

    def test_status_json_single_id_filter(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", *MC_ARGS, "--store", store]) == 0
        out = capsys.readouterr().out
        campaign_id = out.split()[1].rstrip(":")
        assert main([
            "campaign", "status", "--store", store,
            "--id", campaign_id, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [info["id"] for info in payload["campaigns"]] == [campaign_id]

    def test_status_table_shows_eta_column(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", "run", *MC_ARGS, "--store", store]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "eta_s" in out
