"""Inter-cluster forwarding tests: implicit ack, BGW standby, dedup."""

import pytest

from repro.failure.injection import FailureInjector
from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.topology.generators import corridor_field

from tests.fds_helpers import TargetedLoss, deploy


def two_clusters(rng, **kwargs):
    placement = corridor_field(2, 30, 100.0, rng)
    return placement, deploy(placement, **kwargs)


class TestBasicForwarding:
    def test_single_forward_suffices_at_p0(self, rng):
        placement, (deployment, layout, tracer, network) = two_clusters(rng)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members - set(
            f for b in layout.boundaries.values() for f in b.all_forwarders
        ))[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        # Exactly one report crosses (GW forwards once; implicit ack via
        # the peer CH's relay suppresses every retry and BGW).
        total_reports = sum(
            p.inter.reports_sent
            for p in deployment.protocols.values()
            if p.inter is not None
        )
        assert total_reports == 1
        assert victim in deployment.protocols[layout.heads[1]].history

    def test_peer_relay_reaches_peer_members(self, rng):
        placement, (deployment, layout, _tracer, network) = two_clusters(rng)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        for nid in layout.clusters[layout.heads[1]].members:
            assert victim in deployment.protocols[nid].history

    def test_inbound_direction(self, rng):
        # The boundary is owned by cluster 0; a failure in cluster 1 must
        # still cross (the GW overhears CH 1's update -- inbound duty).
        placement, (deployment, layout, _tracer, network) = two_clusters(rng)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[layout.heads[1]].ordinary_members)[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        for nid in layout.clusters[layout.heads[0]].members:
            assert victim in deployment.protocols[nid].history


class TestImplicitAckRetransmission:
    def test_gw_retransmits_when_first_forward_lost(self, rng):
        placement, _ignored = two_clusters(rng)
        # Find the primary gateway and the peer head deterministically.
        probe_dep, layout, _t, _n = deploy(placement)
        gw = int(layout.boundaries[(0, 1)].gateway)
        peer = int(layout.heads[1])

        # Crash lands before execution 1 (epoch t=15); the CH detects at
        # R-3 (t=16.0) and the GW forwards right after.  Drop the GW's
        # attempts for a window long enough to force a backup/retry.
        lost_window = (15.9, 18.5)

        def predicate(sender, receiver, time):
            # The GW's first forwarding attempt toward the peer CH is
            # lost; later attempts succeed.
            return (
                sender == gw
                and receiver == peer
                and lost_window[0] <= time <= lost_window[1]
            )

        deployment, layout, tracer, network = deploy(
            placement, loss_model=TargetedLoss(predicate),
            fds_config=FdsConfig(phi=15.0, thop=0.5),
        )
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members - {gw})[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(2)
        # The failure still crossed -- via BGW standby or GW retry.
        assert victim in deployment.protocols[peer].history
        stats = [
            (p.inter.retransmissions, p.inter.bgw_activations)
            for p in deployment.protocols.values()
            if p.inter is not None
        ]
        assert any(r > 0 or b > 0 for r, b in stats)

    def test_no_retries_without_implicit_ack(self, rng):
        placement, _ignored = two_clusters(rng)
        probe_dep, layout, _t, _n = deploy(placement)
        gw = int(layout.boundaries[(0, 1)].gateway)
        peer = int(layout.heads[1])

        def predicate(sender, receiver, time):
            return sender == gw and receiver == peer

        cfg = FdsConfig(phi=15.0, thop=0.5, implicit_ack=False)
        deployment, layout, _tracer, network = deploy(
            placement, loss_model=TargetedLoss(predicate), fds_config=cfg
        )
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members - {gw})[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(2)
        # Forward-and-hope: the single GW shot was lost and nobody retried,
        # so the peer CH never learns within the run.
        assert victim not in deployment.protocols[peer].history
        for p in deployment.protocols.values():
            if p.inter is not None:
                assert p.inter.retransmissions == 0
                assert p.inter.bgw_activations == 0


class TestBgwStandby:
    def test_bgw_steps_in_when_gw_crashed(self, rng):
        placement, _ignored = two_clusters(rng)
        probe_dep, layout, _t, _n = deploy(placement)
        boundary = layout.boundaries[(0, 1)]
        assert boundary.backups, "need a BGW for this test"
        gw = boundary.gateway
        peer = int(layout.heads[1])

        deployment, layout, tracer, network = deploy(
            placement, fds_config=FdsConfig(phi=15.0, thop=0.5)
        )
        injector = FailureInjector(network, deployment.config)
        injector.crash_before_execution(gw, execution=1)
        victim = sorted(
            layout.clusters[0].ordinary_members
            - set(boundary.all_forwarders)
        )[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        # Both the gateway's own crash and the member crash cross over.
        peer_history = deployment.protocols[peer].history
        assert victim in peer_history
        assert gw in peer_history
        bgw_protocol = deployment.protocols[boundary.backups[0]]
        assert bgw_protocol.inter.bgw_activations > 0

    def test_bgw_released_by_implicit_ack(self, rng):
        # With a healthy GW the BGWs never transmit.
        placement, (deployment, layout, tracer, network) = two_clusters(rng)
        boundary = layout.boundaries[(0, 1)]
        injector = FailureInjector(network, deployment.config)
        victim = sorted(
            layout.clusters[0].ordinary_members
            - set(boundary.all_forwarders)
        )[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(3)
        for backup in boundary.backups:
            assert deployment.protocols[backup].inter.bgw_activations == 0


class TestDedup:
    def test_no_infinite_relay_loops(self, rng):
        placement = corridor_field(3, 30, 100.0, rng)
        deployment, layout, tracer, network = deploy(placement)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(
            layout.clusters[layout.heads[1]].ordinary_members
        )[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(4)
        # Bounded traffic: each boundary carries the failure a bounded
        # number of times, not once per execution.
        total_reports = sum(
            p.inter.reports_sent
            for p in deployment.protocols.values()
            if p.inter is not None
        )
        assert total_reports <= 8

    def test_history_not_reforwarded_each_epoch(self, rng):
        placement, (deployment, layout, _tracer, network) = two_clusters(rng)
        injector = FailureInjector(network, deployment.config)
        victim = sorted(layout.clusters[0].ordinary_members)[0]
        injector.crash_before_execution(victim, execution=1)
        deployment.run_executions(5)
        reports_after = sum(
            p.inter.reports_sent
            for p in deployment.protocols.values()
            if p.inter is not None
        )
        # "No news is good news": executions 2..4 add no reports.
        assert reports_after <= 3
