"""Tests for the node runtime and fail-stop semantics."""

import pytest

from repro.errors import NodeStateError
from repro.sim.engine import Simulator
from repro.sim.medium import RadioMedium
from repro.sim.node import Protocol, SimNode
from repro.types import NodeStatus
from repro.util.geometry import Vec2


class Recorder(Protocol):
    name = "recorder"

    def __init__(self):
        super().__init__()
        self.received = []
        self.crashed = False

    def on_receive(self, envelope):
        self.received.append(envelope.payload)

    def on_crash(self):
        self.crashed = True


def make_pair():
    sim = Simulator()
    medium = RadioMedium(sim, transmission_range=100.0, max_delay=0.01)
    a = SimNode(0, Vec2(0, 0), sim, medium)
    b = SimNode(1, Vec2(50, 0), sim, medium)
    return sim, a, b


class TestProtocolStack:
    def test_delivery_reaches_all_protocols_in_order(self):
        sim, a, b = make_pair()
        r1, r2 = Recorder(), Recorder()
        b.add_protocol(r1)
        b.add_protocol(r2)
        a.send("msg")
        sim.run()
        assert r1.received == ["msg"]
        assert r2.received == ["msg"]

    def test_get_protocol(self):
        _sim, a, _b = make_pair()
        r = Recorder()
        a.add_protocol(r)
        assert a.get_protocol(Recorder) is r
        with pytest.raises(NodeStateError):
            a.get_protocol(int)

    def test_counters(self):
        sim, a, b = make_pair()
        b.add_protocol(Recorder())
        a.send("one")
        a.send("two")
        sim.run()
        assert a.sent_count == 2
        assert b.received_count == 2


class TestFailStop:
    def test_crashed_node_sends_nothing(self):
        sim, a, b = make_pair()
        r = Recorder()
        b.add_protocol(r)
        a.crash()
        assert a.send("silent") == 0
        sim.run()
        assert r.received == []

    def test_crashed_node_receives_nothing(self):
        sim, a, b = make_pair()
        r = Recorder()
        b.add_protocol(r)
        b.crash()
        a.send("msg")
        sim.run()
        assert r.received == []

    def test_crash_disarms_timers(self):
        sim, a, _b = make_pair()
        fired = []
        a.timers.after(1.0, lambda: fired.append(1))
        a.crash()
        sim.run()
        assert fired == []

    def test_crash_notifies_protocols(self):
        _sim, a, _b = make_pair()
        r = Recorder()
        a.add_protocol(r)
        a.crash()
        assert r.crashed

    def test_double_crash_raises(self):
        _sim, a, _b = make_pair()
        a.crash()
        with pytest.raises(NodeStateError):
            a.crash()

    def test_status_transitions(self):
        _sim, a, _b = make_pair()
        assert a.status is NodeStatus.ALIVE
        assert a.is_operational
        a.crash()
        assert a.status is NodeStatus.CRASHED
        assert not a.is_operational

    def test_in_flight_message_not_delivered_to_crashed(self):
        # Copy scheduled before the crash must be dropped at delivery.
        sim, a, b = make_pair()
        r = Recorder()
        b.add_protocol(r)
        a.send("msg")
        b.crash()
        sim.run()
        assert r.received == []
