"""Tests for repro.util.logmath."""

import math

import pytest
from scipy import stats

from repro.errors import AnalysisError
from repro.util.logmath import (
    NEG_INF,
    log1mexp,
    log_binomial,
    log_binomial_pmf,
    logsumexp,
    stable_binomial_logsum,
    stable_binomial_sum,
)


class TestLogBinomial:
    def test_small_values_exact(self):
        assert log_binomial(5, 2) == pytest.approx(math.log(10))
        assert log_binomial(10, 0) == pytest.approx(0.0)
        assert log_binomial(10, 10) == pytest.approx(0.0)

    def test_out_of_range_is_neg_inf(self):
        assert log_binomial(5, -1) == NEG_INF
        assert log_binomial(5, 6) == NEG_INF

    def test_negative_n_rejected(self):
        with pytest.raises(AnalysisError):
            log_binomial(-1, 0)

    def test_large_values_match_lgamma_identity(self):
        # C(1000, 500) via direct lgamma.
        expected = (
            math.lgamma(1001) - math.lgamma(501) - math.lgamma(501)
        )
        assert log_binomial(1000, 500) == pytest.approx(expected)


class TestLogBinomialPmf:
    @pytest.mark.parametrize("n,p", [(10, 0.3), (50, 0.05), (100, 0.5)])
    def test_matches_scipy(self, n, p):
        for k in (0, 1, n // 2, n):
            expected = stats.binom.logpmf(k, n, p)
            assert log_binomial_pmf(k, n, p) == pytest.approx(expected, rel=1e-10)

    def test_degenerate_p(self):
        assert log_binomial_pmf(0, 10, 0.0) == pytest.approx(0.0)
        assert log_binomial_pmf(10, 10, 1.0) == pytest.approx(0.0)
        assert log_binomial_pmf(3, 10, 0.0) == NEG_INF

    def test_invalid_p_rejected(self):
        with pytest.raises(AnalysisError):
            log_binomial_pmf(1, 2, 1.5)


class TestLogsumexp:
    def test_basic(self):
        values = [math.log(1), math.log(2), math.log(3)]
        assert logsumexp(values) == pytest.approx(math.log(6))

    def test_empty_and_all_neg_inf(self):
        assert logsumexp([]) == NEG_INF
        assert logsumexp([NEG_INF, NEG_INF]) == NEG_INF

    def test_handles_tiny_magnitudes(self):
        # Sum of two values around e^-1000 must not underflow to -inf.
        result = logsumexp([-1000.0, -1000.0])
        assert result == pytest.approx(-1000.0 + math.log(2))

    def test_mixed_with_neg_inf(self):
        assert logsumexp([NEG_INF, 0.0]) == pytest.approx(0.0)


class TestStableBinomialSum:
    def test_constant_term_sums_to_one(self):
        # sum_k pmf(k) * 1 == 1.
        assert stable_binomial_sum(30, 0.3, lambda k: 0.0) == pytest.approx(1.0)

    def test_geometric_identity(self):
        # E[x^K] for K ~ Binomial(n, p) is (1 - p + p x)^n.
        n, p, x = 25, 0.4, 0.3
        result = stable_binomial_sum(n, p, lambda k: k * math.log(x))
        assert result == pytest.approx((1 - p + p * x) ** n, rel=1e-10)

    def test_logsum_survives_extreme_underflow(self):
        # Terms near e^-5000 would underflow any direct product.
        n, p = 100, 0.5
        log_total = stable_binomial_logsum(n, p, lambda k: -50.0 * (k + 1))
        assert -5100 < log_total < -49

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            stable_binomial_logsum(-1, 0.5, lambda k: 0.0)
        with pytest.raises(AnalysisError):
            stable_binomial_logsum(5, 1.5, lambda k: 0.0)


class TestLog1mexp:
    def test_matches_naive_where_safe(self):
        for log_p in (-0.1, -1.0, -5.0):
            naive = math.log(1 - math.exp(log_p))
            assert log1mexp(log_p) == pytest.approx(naive, rel=1e-12)

    def test_extremes(self):
        assert log1mexp(0.0) == NEG_INF
        # For log_p very negative, log(1 - e^x) ~ -e^x.
        assert log1mexp(-50.0) == pytest.approx(-math.exp(-50.0), rel=1e-6)

    def test_positive_rejected(self):
        with pytest.raises(AnalysisError):
            log1mexp(0.1)
