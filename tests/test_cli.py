"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 7" in out
        assert "N=100" in out

    def test_claims_pass(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_validate_fast(self, capsys):
        assert main(["validate", "--n", "30", "--p", "0.5",
                     "--trials", "20000"]) == 0
        out = capsys.readouterr().out
        assert "in-CI=True" in out

    def test_scenario(self, capsys):
        code = main([
            "scenario", "--clusters", "2", "--members", "12",
            "--executions", "3", "--crashes", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_completeness" in out

    def test_reachability(self, capsys):
        assert main(["reachability", "--p", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "dch_distance" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])
