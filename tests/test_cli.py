"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 7" in out
        assert "N=100" in out

    def test_claims_pass(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_validate_fast(self, capsys):
        assert main(["validate", "--n", "30", "--p", "0.5",
                     "--trials", "20000"]) == 0
        out = capsys.readouterr().out
        assert "in-CI=True" in out

    def test_scenario(self, capsys):
        code = main([
            "scenario", "--clusters", "2", "--members", "12",
            "--executions", "3", "--crashes", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean_completeness" in out

    def test_scenario_protocol_formation_both_engines(self, capsys):
        """The formation knobs ride the CLI into both engines, and under
        lossless channels the two reports are identical.  (The raw
        transmission count is excluded: a mid-round crash silences an
        event-engine node partway through an execution, while the array
        engine quantizes aliveness to whole executions -- one message of
        slack, crash runs only.)"""
        outs = []
        for engine in ("event", "array"):
            code = main([
                "scenario", "--engine", engine,
                "--formation", "protocol",
                "--formation-iterations", "2",
                "--formation-backoff", "0.3",
                "--clusters", "2", "--members", "8", "--p", "0",
                "--executions", "3", "--crashes", "1", "--seed", "5",
            ])
            assert code == 0
            outs.append(capsys.readouterr().out)
        assert "mean_completeness" in outs[0]

        def comparable(out):
            return [line for line in out.splitlines()
                    if "transmissions" not in line]

        assert comparable(outs[0]) == comparable(outs[1])

    def test_reachability(self, capsys):
        assert main(["reachability", "--p", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "dch_distance" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])


class TestTraceCli:
    @pytest.fixture(scope="class")
    def spool(self, tmp_path_factory):
        """One profiled scenario spooled through the real CLI."""
        path = tmp_path_factory.mktemp("trace") / "run.jsonl.gz"
        code = main([
            "scenario", "--clusters", "2", "--members", "12",
            "--executions", "4", "--crashes", "1", "--seed", "5",
            "--trace-out", str(path), "--profile",
        ])
        assert code == 0
        return path

    def test_scenario_reports_spool_and_phases(self, spool, capsys):
        main(["trace", "summarize", str(spool)])
        out = capsys.readouterr().out
        assert "Record kinds" in out
        assert "Phase time shares" in out
        assert "radio.transmit" in out
        assert "Detection latency" in out

    def test_summarize_json_and_metrics_out(self, spool, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        assert main([
            "trace", "summarize", str(spool), "--json",
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        import json as json_mod

        payload = json_mod.loads(out[:out.rindex("}") + 1])
        assert payload["meta"]["nodes"] > 0
        assert payload["phases"]
        text = metrics.read_text(encoding="utf-8")
        assert "# TYPE repro_detection_latency_phi histogram" in text
        assert 'repro_detection_latency_phi_bucket{le="+Inf"}' in text

    def test_latency(self, spool, capsys):
        assert main(["trace", "latency", str(spool)]) == 0
        out = capsys.readouterr().out
        assert "latency (phi)" in out

    def test_timeline(self, spool, capsys):
        assert main(["trace", "timeline", str(spool)]) == 0
        assert "Events per" in capsys.readouterr().out

    def test_lineage_detected_exit_zero(self, spool, capsys):
        from repro.obs.spool import read_spool

        crash = read_spool(spool, kinds=("sim.crash",))[0]
        assert main(["trace", "lineage", str(spool), str(crash.node)]) == 0
        out = capsys.readouterr().out
        assert "sim.crash" in out and "fds.detection" in out

    def test_lineage_unknown_node_exit_one(self, spool, capsys):
        assert main(["trace", "lineage", str(spool), "99999"]) == 1
        assert "error:" in capsys.readouterr().out

    def test_missing_spool_is_an_error(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "no.jsonl")]) == 1
        assert "error:" in capsys.readouterr().out
