"""Tests for RCC conflict resolution and F4/F5 admission bookkeeping."""

import numpy as np
import pytest

from repro.cluster.maintenance import AdmissionBook
from repro.cluster.rcc import declaration_backoff, should_resign


class TestRcc:
    def test_backoff_within_fraction(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            delay = declaration_backoff(rng, round_duration=0.5, fraction=0.4)
            assert 0.0 <= delay < 0.2

    def test_backoff_validates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            declaration_backoff(rng, 0.5, fraction=0.95)

    def test_lowest_id_keeps_cluster(self):
        assert should_resign(my_id=7, heard_head_id=3)
        assert not should_resign(my_id=3, heard_head_id=7)
        assert not should_resign(my_id=3, heard_head_id=3)


class TestAdmissionBook:
    def test_drain_returns_pending_and_clears(self):
        book = AdmissionBook()
        book.note_unmarked_heartbeat(5)
        book.note_unmarked_heartbeat(6)
        book.note_unmarked_heartbeat(5)  # idempotent
        assert book.pending_count == 2
        admitted = book.drain(frozenset({1, 2}))
        assert admitted == frozenset({5, 6})
        assert book.pending_count == 0
        assert book.admitted_total == 2

    def test_existing_members_filtered(self):
        book = AdmissionBook()
        book.note_unmarked_heartbeat(5)
        assert book.drain(frozenset({5})) == frozenset()
        assert book.admitted_total == 0

    def test_empty_drain(self):
        assert AdmissionBook().drain(frozenset()) == frozenset()
