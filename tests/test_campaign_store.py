"""The content-addressed result store: keys, round trips, gc.

The store's correctness currency is the key function: identical
(config, seed, chunk, code) must map to one address, and any difference
in any component must map somewhere else.  JSON round trips must be
exact (``repr``-faithful floats), or a cache-served result would not be
bit-identical to a cold run.
"""

import dataclasses
import json

import pytest

from repro.campaign.store import (
    ResultStore,
    canonical_config_dict,
    canonical_json,
    code_fingerprint,
    config_from_canonical,
    content_key,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import ScenarioConfig
from repro.fds.config import FdsConfig


class TestCanonicalization:
    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_config_round_trip(self):
        config = ScenarioConfig(
            cluster_count=3,
            members_per_cluster=9,
            loss_kind="bounded",
            loss_params=(("p", 0.3), ("budget", 2.0)),
            max_backups=2,
            fds=FdsConfig(phi=20.0, thop=0.5, use_digests=False),
        )
        restored = config_from_canonical(canonical_config_dict(config))
        assert restored == config

    def test_config_round_trip_array_gilbert_energy(self):
        """The newly accepted array-engine knobs (gilbert loss params,
        track_energy) survive canonicalization unchanged -- campaign
        caching must key and restore them faithfully."""
        config = ScenarioConfig(
            cluster_count=3,
            members_per_cluster=9,
            engine="array",
            track_energy=True,
            loss_kind="gilbert",
            loss_params=(
                ("p_good", 0.02),
                ("p_bad", 0.8),
                ("p_gb", 0.05),
                ("p_bg", 0.3),
            ),
        )
        restored = config_from_canonical(canonical_config_dict(config))
        assert restored == config
        assert restored.track_energy and restored.engine == "array"

    def test_config_round_trip_formation_knobs(self):
        """The protocol-formation knobs accepted by both engines must
        survive canonicalization unchanged -- a resumed campaign has to
        re-run the same formation, not silently fall back to oracle."""
        config = ScenarioConfig(
            cluster_count=3,
            members_per_cluster=9,
            engine="array",
            formation="protocol",
            formation_iterations=5,
            formation_backoff_fraction=0.25,
        )
        restored = config_from_canonical(canonical_config_dict(config))
        assert restored == config
        assert restored.formation == "protocol"
        assert restored.formation_iterations == 5
        payload = json.loads(canonical_json(canonical_config_dict(config)))
        assert config_from_canonical(payload) == config

    def test_formation_knobs_change_the_content_key(self):
        base = ScenarioConfig(seed=7)
        variants = [
            dataclasses.replace(base, formation="protocol"),
            dataclasses.replace(base, formation_iterations=4),
            dataclasses.replace(base, formation_backoff_fraction=0.2),
        ]
        base_key = content_key("scenario", canonical_config_dict(base))
        keys = {
            content_key("scenario", canonical_config_dict(v)) for v in variants
        }
        assert base_key not in keys
        assert len(keys) == len(variants)

    def test_round_trip_survives_json(self):
        config = ScenarioConfig(loss_probability=0.1, spacing_factor=1.6)
        payload = json.loads(canonical_json(canonical_config_dict(config)))
        assert config_from_canonical(payload) == config

    def test_unknown_field_rejected(self):
        payload = canonical_config_dict(ScenarioConfig())
        payload["not_a_field"] = 1
        with pytest.raises(ConfigurationError):
            config_from_canonical(payload)


class TestContentKeys:
    def test_key_is_stable(self):
        payload = canonical_config_dict(ScenarioConfig(seed=7))
        assert content_key("scenario", payload) == content_key("scenario", payload)

    def test_any_config_field_change_misses(self):
        # The satellite guarantee: a single config field change must be a
        # store miss, never a stale hit.
        base = ScenarioConfig(seed=7)
        variants = [
            dataclasses.replace(base, loss_probability=0.2),
            dataclasses.replace(base, members_per_cluster=31),
            dataclasses.replace(base, seed=8),
            dataclasses.replace(base, fds=FdsConfig(phi=60.0)),
        ]
        base_key = content_key("scenario", canonical_config_dict(base))
        keys = {
            content_key("scenario", canonical_config_dict(v)) for v in variants
        }
        assert base_key not in keys
        assert len(keys) == len(variants)

    def test_code_fingerprint_is_part_of_the_key(self):
        payload = {"x": 1}
        assert (
            content_key("k", payload, fingerprint="aaa")
            != content_key("k", payload, fingerprint="bbb")
        )

    def test_code_fingerprint_stable_and_hexadecimal(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)


class TestResultStore:
    def test_put_get_round_trip_exact(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        payload = {"mean": 0.1 + 0.2, "count": 3, "tiny": 1.2345678901234567e-12}
        store.put("ab" * 32, payload)
        assert store.get("ab" * 32) == payload

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("cd" * 32) is None
        store.put("cd" * 32, {"v": 1})
        assert store.get("cd" * 32) == {"v": 1}
        assert store.misses == 1
        assert store.hits == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for i in range(5):
            store.put(f"{i:02d}" + "e" * 62, {"i": i})
        assert not list((tmp_path / "store").rglob("*.tmp"))

    def test_gc_removes_stale_code_only(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("11" * 32, {"v": 1})  # current fingerprint
        store.put("22" * 32, {"v": 2}, fingerprint="stale")
        stats = store.gc(stale_only=True)
        assert stats["objects_removed"] == 1
        assert store.get("11" * 32) == {"v": 1}
        assert store.get("22" * 32) is None

    def test_gc_all_wipes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("33" * 32, {"v": 3})
        stats = store.gc(stale_only=False)
        assert stats["objects_removed"] == 1
        assert store.get("33" * 32) is None

    def test_gc_dry_run_deletes_nothing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("44" * 32, {"v": 4}, fingerprint="stale")
        stats = store.gc(stale_only=True, dry_run=True)
        assert stats["objects_removed"] == 1
        assert store.get("44" * 32) == {"v": 4}
