"""End-to-end integration: distributed formation + FDS + failures + loss.

The whole pipeline as a user would run it, with the distributed formation
protocol (not the oracle) building the clusters over the same lossy medium
the FDS then runs on.
"""

import pytest

from repro.cluster.formation import FormationConfig, run_formation
from repro.failure.injection import FailureInjector
from repro.fds.config import FdsConfig
from repro.fds.service import install_fds
from repro.metrics.collectors import collect_message_counts
from repro.metrics.properties import evaluate_properties
from repro.sim.network import NetworkConfig, build_network
from repro.topology.generators import multi_cluster_field
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def pipeline_result():
    rngs = RngFactory(31)
    placement = multi_cluster_field(
        cluster_count=4, members_per_cluster=30, radius=100.0,
        rng=rngs.stream("placement"),
    )
    network = build_network(
        placement, NetworkConfig(loss_probability=0.15, seed=31)
    )
    layout = run_formation(network, FormationConfig(thop=0.5, iterations=4))
    fds_config = FdsConfig(phi=10.0, thop=0.5)
    fds_start = network.sim.now + 1.0
    deployment = install_fds(network, layout, fds_config, start_time=fds_start)
    injector = FailureInjector(network, fds_config, fds_start=fds_start)
    victims = []
    # One ordinary member per cluster, plus one clusterhead.
    for i, head in enumerate(layout.heads[:3]):
        candidates = sorted(layout.clusters[head].ordinary_members)
        victim = candidates[len(candidates) // 2]
        injector.crash_before_execution(victim, execution=i + 1)
        victims.append(victim)
    injector.crash_before_execution(layout.heads[3], execution=2)
    victims.append(layout.heads[3])
    deployment.run_executions(7)
    return network, layout, deployment, victims


class TestPipeline:
    def test_formation_covered_the_field(self, pipeline_result):
        network, layout, _deployment, _victims = pipeline_result
        assert len(layout.clustered_nodes()) >= 0.95 * len(network.nodes)
        assert len(layout.clusters) >= 3

    def test_all_failures_known_everywhere(self, pipeline_result):
        _network, _layout, deployment, victims = pipeline_result
        report = evaluate_properties(deployment)
        for victim in victims:
            assert report.completeness[victim] >= 0.95, (
                f"victim {victim}: {report.completeness[victim]}"
            )

    def test_no_lasting_false_suspicions(self, pipeline_result):
        _network, _layout, deployment, _victims = pipeline_result
        report = evaluate_properties(deployment)
        assert report.accuracy_violations == ()

    def test_ch_failure_survived_by_takeover(self, pipeline_result):
        network, layout, deployment, victims = pipeline_result
        dead_head = victims[-1]
        survivors = [
            nid
            for nid in layout.clusters[dead_head].members
            if network.nodes[nid].is_operational
        ]
        # Most survivors follow a deputy by the end.
        followed = sum(
            1
            for nid in survivors
            if deployment.protocols[nid].head != dead_head
        )
        assert followed >= 0.9 * len(survivors)

    def test_message_economy(self, pipeline_result):
        network, _layout, deployment, victims = pipeline_result
        counts = collect_message_counts(deployment)
        # Per-execution cost is O(N) heartbeats + O(N) digests + O(1)
        # updates per cluster; reports stay bounded per failure.
        per_execution = counts.transmissions / 7
        assert per_execution < 6.0 * len(network.nodes)
        assert counts.reports_sent <= 30 * len(victims)
