"""Tests for the simulation engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_run_executes_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1, 2]
        assert sim.now == 2.0

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(4.0, lambda: None)

    def test_schedule_at_now_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: sim.schedule_at(sim.now, lambda: fired.append("x")))
        sim.run()
        assert fired == ["x"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_cancellation(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append("no"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def outer():
            sim.schedule_in(1.0, lambda: fired.append("inner"))

        sim.schedule_at(1.0, outer)
        sim.run()
        assert fired == ["inner"]
        assert sim.now == 2.0


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(3.0, lambda: fired.append(3))
        sim.run_until(2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run_until(4.0)
        assert fired == [1, 3]

    def test_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append(2))
        sim.run_until(2.0)
        assert fired == [2]

    def test_advances_clock_even_if_queue_empty(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_backwards_run_until_raises(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SchedulingError):
            sim.run_until(4.0)


class TestGuards:
    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule():
            sim.schedule_in(1.0, reschedule)

        sim.schedule_in(1.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 5

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False
