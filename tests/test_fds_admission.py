"""Feature F5 tests: unmarked heartbeats as membership subscriptions."""

import pytest

from repro.cluster.state import LocalClusterView
from repro.fds.config import FdsConfig
from repro.fds.service import FdsProtocol
from repro.sim.node import SimNode
from repro.topology.placement import cluster_disk_placement
from repro.types import NodeId, NodeRole
from repro.util.geometry import Vec2

from tests.fds_helpers import deploy


def add_unmarked_node(deployment, network, position, executions):
    """Insert a fresh unmarked node and start its FDS protocol."""
    nid = NodeId(max(network.nodes) + 1)
    node = SimNode(nid, position, network.sim, network.medium)
    network.nodes[nid] = node
    view = LocalClusterView(
        node_id=nid,
        role=NodeRole.UNMARKED,
        head=nid,
        members=frozenset({nid}),
        deputies=(),
    )
    protocol = FdsProtocol(deployment.config, view)
    node.add_protocol(protocol)
    deployment.protocols[nid] = protocol
    next_epoch = (
        deployment.start_time
        + deployment.executions_scheduled * deployment.config.phi
    )
    protocol.start(
        next_epoch, executions, first_index=deployment.executions_scheduled
    )
    return nid, protocol


class TestAdmission:
    def test_unmarked_node_admitted(self, rng):
        placement = cluster_disk_placement(15, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        deployment.run_executions(1)
        nid, protocol = add_unmarked_node(
            deployment, network, Vec2(30.0, 10.0), executions=2
        )
        deployment.run_executions(2)
        assert protocol.marked
        assert protocol.head == 0
        assert nid in deployment.protocols[0].members

    def test_existing_members_learn_new_membership(self, rng):
        placement = cluster_disk_placement(15, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        deployment.run_executions(1)
        nid, _protocol = add_unmarked_node(
            deployment, network, Vec2(30.0, 10.0), executions=2
        )
        deployment.run_executions(2)
        for member in layout.clusters[0].ordinary_members:
            assert nid in deployment.protocols[member].members

    def test_admitted_node_is_monitored(self, rng):
        # After admission, the node's crash is detected like anyone's.
        placement = cluster_disk_placement(15, 100.0, rng)
        deployment, layout, _tracer, network = deploy(placement)
        deployment.run_executions(1)
        nid, _protocol = add_unmarked_node(
            deployment, network, Vec2(30.0, 10.0), executions=4
        )
        deployment.run_executions(2)
        network.crash(nid)
        deployment.run_executions(2)
        assert nid in deployment.protocols[0].history

    def test_admission_disabled(self, rng):
        placement = cluster_disk_placement(15, 100.0, rng)
        cfg = FdsConfig(phi=5.0, thop=0.5, admit_unmarked=False)
        deployment, _layout, _tracer, network = deploy(placement, fds_config=cfg)
        deployment.run_executions(1)
        _nid, protocol = add_unmarked_node(
            deployment, network, Vec2(30.0, 10.0), executions=2
        )
        deployment.run_executions(2)
        assert not protocol.marked

    def test_unmarked_node_never_falsely_detected(self, rng):
        # The F5 race: the admission update is lost, the node heartbeats
        # unmarked while already a member -- it must not be detected.
        placement = cluster_disk_placement(15, 100.0, rng)

        from tests.fds_helpers import TargetedLoss

        new_id = 16  # the id add_unmarked_node will assign

        def predicate(sender, receiver, time):
            # The fresh node receives nothing for two executions after
            # joining, so it stays unmarked while the CH admits it.
            return receiver == new_id and time <= 16.0

        deployment, layout, tracer, network = deploy(
            placement, loss_model=TargetedLoss(predicate)
        )
        deployment.run_executions(1)
        nid, protocol = add_unmarked_node(
            deployment, network, Vec2(30.0, 10.0), executions=4
        )
        assert nid == new_id
        deployment.run_executions(4)
        from repro.fds import events as ev

        detections = [
            r for r in tracer.iter_kind(ev.DETECTION)
            if r.detail["target"] == int(nid)
        ]
        assert detections == []
        assert protocol.marked  # admitted once the blackout lifted
