"""Tests for deputy and gateway selection."""

import pytest

from repro.cluster.deputies import (
    rank_deputy_candidates,
    select_deputies,
    takeover_order,
)
from repro.cluster.gateways import (
    gateway_candidates,
    rank_gateway_candidates,
    select_boundary,
)
from repro.util.geometry import Vec2


POSITIONS = {
    0: Vec2(0, 0),      # head
    1: Vec2(90, 0),     # far
    2: Vec2(10, 0),     # near -> best deputy
    3: Vec2(50, 0),     # middle
    10: Vec2(160, 0),   # peer head
}
DEGREES = {1: 3, 2: 3, 3: 3}


class TestDeputies:
    def test_ranked_by_distance(self):
        ranked = rank_deputy_candidates(
            0, frozenset({0, 1, 2, 3}), POSITIONS, DEGREES
        )
        assert ranked == (2, 3, 1)

    def test_degree_breaks_distance_ties(self):
        positions = {0: Vec2(0, 0), 1: Vec2(10, 0), 2: Vec2(-10, 0)}
        degrees = {1: 1, 2: 5}
        ranked = rank_deputy_candidates(
            0, frozenset({0, 1, 2}), positions, degrees
        )
        assert ranked == (2, 1)

    def test_nid_final_tiebreak(self):
        positions = {0: Vec2(0, 0), 5: Vec2(10, 0), 3: Vec2(-10, 0)}
        ranked = rank_deputy_candidates(
            0, frozenset({0, 3, 5}), positions, {3: 1, 5: 1}
        )
        assert ranked == (3, 5)

    def test_select_caps_count(self):
        deputies = select_deputies(
            0, frozenset({0, 1, 2, 3}), POSITIONS, DEGREES, count=2
        )
        assert deputies == (2, 3)
        assert select_deputies(
            0, frozenset({0, 1}), POSITIONS, DEGREES, count=5
        ) == (1,)

    def test_takeover_order_passthrough(self):
        assert takeover_order((4, 7)) == (4, 7)


class TestGateways:
    def test_candidates_exclude_head(self):
        candidates = gateway_candidates(
            frozenset({0, 1, 2, 3}), 0, frozenset({0, 1, 3})
        )
        assert candidates == (1, 3)

    def test_ranking_prefers_central_overlap(self):
        # Node 3 at x=50 has worst-link 110 to peer(160); node 1 at x=90
        # has worst-link 90 -> node 1 ranks first.
        ranked = rank_gateway_candidates((1, 3), 0, 10, POSITIONS)
        assert ranked == (1, 3)

    def test_select_boundary_roles(self):
        boundary = select_boundary(
            owner_head=0,
            peer_head=10,
            owner_members=frozenset({0, 1, 2, 3}),
            peer_head_neighbors=frozenset({1, 3}),
            positions=POSITIONS,
            max_backups=1,
        )
        assert boundary is not None
        assert boundary.gateway == 1
        assert boundary.backups == (3,)

    def test_select_boundary_none_when_no_candidates(self):
        assert (
            select_boundary(
                owner_head=0,
                peer_head=10,
                owner_members=frozenset({0, 2}),
                peer_head_neighbors=frozenset({1}),
                positions=POSITIONS,
            )
            is None
        )

    def test_zero_backups(self):
        boundary = select_boundary(
            owner_head=0,
            peer_head=10,
            owner_members=frozenset({0, 1, 3}),
            peer_head_neighbors=frozenset({1, 3}),
            positions=POSITIONS,
            max_backups=0,
        )
        assert boundary is not None and boundary.backups == ()
