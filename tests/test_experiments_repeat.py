"""Tests for the multi-seed repetition harness."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.repeat import repeat_scenario
from repro.experiments.runner import ScenarioConfig


@pytest.fixture(scope="module")
def repeated():
    config = ScenarioConfig(
        cluster_count=2,
        members_per_cluster=12,
        loss_probability=0.1,
        crash_count=1,
        executions=3,
    )
    return repeat_scenario(config, seeds=[1, 2, 3])


class TestRepeat:
    def test_aggregates_all_metrics(self, repeated):
        assert repeated.metrics["mean_completeness"].count == 3
        assert "transmissions" in repeated.metrics

    def test_completeness_across_seeds(self, repeated):
        assert repeated.mean("mean_completeness") == 1.0
        assert repeated.worst("mean_completeness") == 1.0

    def test_accuracy_across_seeds(self, repeated):
        assert repeated.metrics["accuracy_violations"].maximum == 0.0

    def test_loss_rate_tracks_configuration(self, repeated):
        assert repeated.mean("observed_loss_rate") == pytest.approx(0.1, abs=0.02)

    def test_table_rendering(self, repeated):
        table = repeated.as_table()
        assert "3 seeds" in table
        assert "mean_completeness" in table

    def test_validation(self):
        config = ScenarioConfig(cluster_count=2, members_per_cluster=5)
        with pytest.raises(ExperimentError):
            repeat_scenario(config, seeds=[])
        with pytest.raises(ExperimentError):
            repeat_scenario(config, seeds=[1, 1])

    def test_unknown_metric(self, repeated):
        with pytest.raises(ExperimentError):
            repeated.mean("nope")
