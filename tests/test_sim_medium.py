"""Tests for the radio medium: unit-disk propagation, promiscuity, loss."""

import numpy as np
import pytest

from repro.errors import MediumError
from repro.sim.engine import Simulator
from repro.sim.loss import BernoulliLoss, PerfectLinks
from repro.sim.medium import RadioMedium
from repro.sim.trace import RecordingTracer
from repro.util.geometry import Vec2


def make_medium(loss=None, rng_seed=0, tracer=None, max_delay=0.1):
    sim = Simulator()
    medium = RadioMedium(
        sim,
        transmission_range=100.0,
        loss_model=loss if loss is not None else PerfectLinks(),
        rng=np.random.default_rng(rng_seed),
        max_delay=max_delay,
        tracer=tracer,
    )
    return sim, medium


def register_line(medium, inboxes, spacing=60.0, count=4):
    """Nodes 0..count-1 on a line, `spacing` apart; returns positions."""
    for i in range(count):
        nid = i
        inboxes[nid] = []
        medium.register(
            nid, Vec2(spacing * i, 0.0),
            (lambda n: (lambda env: inboxes[n].append(env)))(nid),
        )


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        _sim, medium = make_medium()
        medium.register(1, Vec2(0, 0), lambda e: None)
        with pytest.raises(MediumError):
            medium.register(1, Vec2(1, 1), lambda e: None)

    def test_unregister(self):
        _sim, medium = make_medium()
        medium.register(1, Vec2(0, 0), lambda e: None)
        medium.unregister(1)
        assert medium.node_ids() == ()
        with pytest.raises(MediumError):
            medium.unregister(1)

    def test_unknown_node_queries_raise(self):
        _sim, medium = make_medium()
        with pytest.raises(MediumError):
            medium.position_of(9)
        with pytest.raises(MediumError):
            medium.neighbors_of(9)


class TestNeighborStructure:
    def test_unit_disk_neighbors(self):
        _sim, medium = make_medium()
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=4)
        # 60m spacing, 100m range: each node hears adjacent only.
        assert medium.neighbors_of(0) == (1,)
        assert medium.neighbors_of(1) == (0, 2)
        assert medium.neighbors_of(2) == (1, 3)

    def test_boundary_distance_inclusive(self):
        _sim, medium = make_medium()
        medium.register(0, Vec2(0, 0), lambda e: None)
        medium.register(1, Vec2(100.0, 0), lambda e: None)
        assert medium.neighbors_of(0) == (1,)

    def test_move_updates_neighbors(self):
        _sim, medium = make_medium()
        medium.register(0, Vec2(0, 0), lambda e: None)
        medium.register(1, Vec2(300.0, 0), lambda e: None)
        assert medium.neighbors_of(0) == ()
        medium.move(1, Vec2(50.0, 0))
        assert medium.neighbors_of(0) == (1,)

    def test_grid_matches_brute_force(self):
        # The spatial-hash neighbor structure must equal O(n^2) checking.
        rng = np.random.default_rng(3)
        _sim, medium = make_medium()
        positions = {
            i: Vec2(float(rng.uniform(0, 500)), float(rng.uniform(0, 500)))
            for i in range(120)
        }
        for nid, pos in positions.items():
            medium.register(nid, pos, lambda e: None)
        for nid, pos in positions.items():
            brute = tuple(
                sorted(
                    other
                    for other, opos in positions.items()
                    if other != nid and pos.distance_to(opos) <= 100.0
                )
            )
            assert medium.neighbors_of(nid) == brute


class TestTransmission:
    def test_promiscuous_delivery(self):
        # A unicast is heard by every in-range node, flagged overheard.
        sim, medium = make_medium()
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=3)
        medium.transmit(1, "hello", recipient=2)
        sim.run()
        assert len(inboxes[2]) == 1 and not inboxes[2][0].overheard
        assert len(inboxes[0]) == 1 and inboxes[0][0].overheard
        assert inboxes[0][0].payload == "hello"

    def test_broadcast_has_no_overheard_flag(self):
        sim, medium = make_medium()
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=3)
        medium.transmit(1, "b", recipient=None)
        sim.run()
        assert not inboxes[0][0].overheard
        assert not inboxes[2][0].overheard

    def test_sender_does_not_hear_itself(self):
        sim, medium = make_medium()
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=2)
        medium.transmit(0, "x")
        sim.run()
        assert inboxes[0] == []

    def test_out_of_range_not_delivered(self):
        sim, medium = make_medium()
        inboxes = {}
        register_line(medium, inboxes, spacing=150.0, count=2)
        medium.transmit(0, "x")
        sim.run()
        assert inboxes[1] == []

    def test_delivery_within_max_delay(self):
        sim, medium = make_medium(max_delay=0.05)
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=2)
        medium.transmit(0, "x")
        sim.run()
        env = inboxes[1][0]
        assert env.sent_at == 0.0
        assert 0.0 < env.received_at <= 0.05

    def test_unknown_sender_or_recipient_raise(self):
        _sim, medium = make_medium()
        medium.register(0, Vec2(0, 0), lambda e: None)
        with pytest.raises(MediumError):
            medium.transmit(5, "x")
        with pytest.raises(MediumError):
            medium.transmit(0, "x", recipient=5)


class TestLossIntegration:
    def test_loss_rate_observed(self):
        sim, medium = make_medium(loss=BernoulliLoss(0.4), rng_seed=5)
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=2)
        for _ in range(3000):
            medium.transmit(0, "x")
        sim.run()
        rate = 1 - len(inboxes[1]) / 3000
        assert 0.37 <= rate <= 0.43
        stats = medium.message_stats()
        assert stats["transmissions"] == 3000
        assert stats["deliveries"] + stats["losses"] == 3000

    def test_per_receiver_independence(self):
        # One transmission can reach some receivers and not others.
        sim, medium = make_medium(loss=BernoulliLoss(0.5), rng_seed=7)
        inboxes = {}
        for i in range(5):
            inboxes[i] = []
            medium.register(
                i, Vec2(10.0 * i, 0.0),
                (lambda n: (lambda env: inboxes[n].append(env)))(i),
            )
        for _ in range(200):
            medium.transmit(0, "x")
        sim.run()
        counts = {i: len(inboxes[i]) for i in range(1, 5)}
        assert len(set(counts.values())) > 1  # not all identical


class TestMutedReceivers:
    def test_muted_node_receives_nothing(self):
        sim, medium = make_medium()
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=2)
        medium.set_receiving(1, False)
        medium.transmit(0, "x")
        sim.run()
        assert inboxes[1] == []

    def test_mute_during_flight_drops_copy(self):
        sim, medium = make_medium()
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=2)
        medium.transmit(0, "x")
        medium.set_receiving(1, False)  # before delivery event fires
        sim.run()
        assert inboxes[1] == []


class TestTracing:
    def test_tx_rx_loss_records(self):
        tracer = RecordingTracer()
        sim, medium = make_medium(loss=BernoulliLoss(0.5), rng_seed=2,
                                  tracer=tracer)
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=2)
        for _ in range(50):
            medium.transmit(0, "x")
        sim.run()
        assert tracer.count("radio.tx") == 50
        assert tracer.count("radio.rx") + tracer.count("radio.loss") == 50


class TestUnregisterMidFlight:
    """A copy in flight toward a node that unregisters must be dropped
    silently -- on both radio hot paths."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_unregister_before_delivery_drops_copy(self, vectorized):
        sim = Simulator()
        medium = RadioMedium(
            sim,
            transmission_range=100.0,
            loss_model=PerfectLinks(),
            rng=np.random.default_rng(0),
            max_delay=0.1,
            vectorized=vectorized,
        )
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=3)
        medium.transmit(0, "mid-flight")
        medium.unregister(1)  # before the delivery event fires
        sim.run()
        assert inboxes[1] == []

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_medium_still_usable_after_midflight_unregister(self, vectorized):
        sim = Simulator()
        medium = RadioMedium(
            sim,
            transmission_range=100.0,
            loss_model=PerfectLinks(),
            rng=np.random.default_rng(0),
            max_delay=0.1,
            vectorized=vectorized,
        )
        inboxes = {}
        register_line(medium, inboxes, spacing=60.0, count=3)
        medium.transmit(0, "one")
        medium.unregister(1)
        sim.run()
        medium.register(1, Vec2(60.0, 0.0), inboxes[1].append)
        medium.transmit(0, "two")
        sim.run()
        assert [env.payload for env in inboxes[1]] == ["two"]
