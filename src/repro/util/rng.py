"""Deterministic random-number management.

Every stochastic component of the library (placement, message loss, waiting
periods, Monte Carlo estimators) draws from a :class:`numpy.random.Generator`
handed to it explicitly -- no hidden global state -- so whole simulations
replay bit-exactly from a single root seed.

:class:`RngFactory` derives independent child streams by name, so adding a
new consumer of randomness does not perturb the draws seen by existing ones
(a property the regression tests rely on).
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: object) -> int:
    """A stable 64-bit seed derived from a root seed and a name path.

    Uses BLAKE2b over the textual path, so the mapping is reproducible
    across processes and Python versions (unlike ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root_seed)).encode())
    for name in names:
        h.update(b"/")
        h.update(str(name).encode())
    return int.from_bytes(h.digest(), "big")


class RngFactory:
    """Derives named, independent :class:`numpy.random.Generator` streams.

    Example::

        rngs = RngFactory(seed=42)
        placement_rng = rngs.stream("placement")
        loss_rng = rngs.stream("medium", "loss")
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory derives all streams from."""
        return self._seed

    def stream(self, *names: object) -> np.random.Generator:
        """An independent generator for the given name path.

        Calling twice with the same path returns generators that produce
        identical sequences (each call returns a *fresh* generator at the
        start of its stream).
        """
        return np.random.default_rng(derive_seed(self._seed, *names))

    def child(self, *names: object) -> "RngFactory":
        """A sub-factory whose streams are namespaced under ``names``."""
        return RngFactory(derive_seed(self._seed, *names, "__factory__"))

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed})"
