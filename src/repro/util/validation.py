"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number > 0."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be positive and finite, got {value}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number >= 0."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be >= 0 and finite, got {value}")
    return float(value)


def check_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval ``[low, high]``."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if math.isnan(value) or not low <= value <= high:
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    return float(value)


def check_int_at_least(name: str, value: int, minimum: int) -> int:
    """Validate that ``value`` is an integer >= ``minimum``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value
