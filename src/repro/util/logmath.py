"""Numerically stable probability arithmetic.

The paper's measures span 25+ orders of magnitude (Figure 6's y-axis reaches
1e-120), far below what naive floating-point products of binomial terms can
represent without underflow artifacts.  Everything here works in the log
domain and only exponentiates at the very end.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.errors import AnalysisError

#: Log of zero probability.
NEG_INF = float("-inf")


def log_binomial(n: int, k: int) -> float:
    """``log C(n, k)``, exactly via ``math.lgamma``.

    Returns ``-inf`` for ``k`` outside ``[0, n]`` (an impossible count),
    which lets callers sum over ranges without special-casing bounds.
    """
    if n < 0:
        raise AnalysisError(f"n must be non-negative, got {n}")
    if k < 0 or k > n:
        return NEG_INF
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def _log_pow(base: float, exponent: float) -> float:
    """``exponent * log(base)`` with the 0**0 == 1 convention."""
    if base < 0.0 or base > 1.0:
        raise AnalysisError(f"probability base out of [0, 1]: {base}")
    if exponent == 0:
        return 0.0
    if base == 0.0:
        return NEG_INF
    return exponent * math.log(base)


def log_binomial_pmf(k: int, n: int, p: float) -> float:
    """``log P[Binomial(n, p) == k]`` without underflow."""
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"p must be a probability, got {p}")
    return log_binomial(n, k) + _log_pow(p, k) + _log_pow(1.0 - p, n - k)


def logsumexp(values: Iterable[float]) -> float:
    """``log(sum(exp(v) for v in values))`` computed stably.

    Accepts ``-inf`` entries (zero-probability terms) transparently and
    returns ``-inf`` for an empty or all ``-inf`` input.
    """
    vals: Sequence[float] = list(values)
    if not vals:
        return NEG_INF
    peak = max(vals)
    if peak == NEG_INF:
        return NEG_INF
    acc = sum(math.exp(v - peak) for v in vals)
    return peak + math.log(acc)


def stable_binomial_sum(n: int, p: float, log_term: Callable[[int], float]) -> float:
    """``sum_k C(n, k) p^k (1-p)^(n-k) * exp(log_term(k))`` in probability.

    Evaluates a binomial expectation where each summand may underflow; the
    caller provides the log of the per-``k`` factor.  Returns the sum as a
    plain float (possibly subnormal or exactly 0.0 when below 1e-308 --
    callers that need the log use :func:`stable_binomial_logsum`).
    """
    return math.exp(stable_binomial_logsum(n, p, log_term))


def stable_binomial_logsum(n: int, p: float, log_term: Callable[[int], float]) -> float:
    """Log-domain version of :func:`stable_binomial_sum`."""
    if n < 0:
        raise AnalysisError(f"n must be non-negative, got {n}")
    if not 0.0 <= p <= 1.0:
        raise AnalysisError(f"p must be a probability, got {p}")
    return logsumexp(log_binomial_pmf(k, n, p) + log_term(k) for k in range(n + 1))


def log1mexp(log_p: float) -> float:
    """``log(1 - exp(log_p))`` for ``log_p <= 0``, numerically stable.

    Standard two-branch trick (Maechler 2012): use ``log(-expm1(x))`` for
    large ``x`` and ``log1p(-exp(x))`` for very negative ``x``.
    """
    if log_p > 0.0:
        raise AnalysisError(f"log_p must be <= 0, got {log_p}")
    if log_p == 0.0:
        return NEG_INF
    if log_p > -math.log(2.0):
        return math.log(-math.expm1(log_p))
    return math.log1p(-math.exp(log_p))
