"""Plain-text table rendering for experiment and benchmark output.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that output aligned and diff-friendly without pulling in
a plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude < 1e-3 or magnitude >= 1e6:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are shown in scientific notation when tiny/huge, which matters
    here because the reproduced measures reach 1e-120.
    """
    cells = [[_format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series_table(
    x_name: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render one table with an x column and one column per named series.

    This is the shape of every figure in the paper: x is the message-loss
    probability ``p``, and each series is a cluster population ``N``.
    """
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(x_values)}"
            )
    headers = [x_name, *series.keys()]
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, precision=precision, title=title)
