"""Utility layer: geometry, numerics, randomness, rendering, validation."""

from repro.util.geometry import (
    Vec2,
    disk_area,
    lens_area,
    lens_area_integral,
    neighborhood_overlap_fraction,
    point_in_disk,
    sample_in_disk,
    sample_on_circle,
)
from repro.util.logmath import (
    log_binomial,
    log_binomial_pmf,
    logsumexp,
    stable_binomial_sum,
)
from repro.util.rng import RngFactory, derive_seed
from repro.util.tables import render_series_table, render_table
from repro.util.validation import (
    check_positive,
    check_probability,
    check_range,
)

__all__ = [
    "Vec2",
    "disk_area",
    "lens_area",
    "lens_area_integral",
    "neighborhood_overlap_fraction",
    "point_in_disk",
    "sample_in_disk",
    "sample_on_circle",
    "log_binomial",
    "log_binomial_pmf",
    "logsumexp",
    "stable_binomial_sum",
    "RngFactory",
    "derive_seed",
    "render_series_table",
    "render_table",
    "check_positive",
    "check_probability",
    "check_range",
]
