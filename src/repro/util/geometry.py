"""Planar geometry used by the paper's model and its analysis.

The paper models a cluster as a unit disk of radius ``R`` (the clusterhead's
transmission range).  Section 5 evaluates the *neighborhood overlap*: for a
member ``v`` at distance ``d`` from the clusterhead, the region of the
cluster that is also within ``v``'s own transmission range is the lens-shaped
intersection of two radius-``R`` disks whose centers are ``d`` apart
(Figure 4).  The fraction ``a = An / Au`` of that lens over the cluster area
drives every probabilistic measure.

Two independent implementations of the lens area are provided:

- :func:`lens_area` -- the standard closed-form circular-segment formula.
- :func:`lens_area_integral` -- the paper's own integral form (given for the
  worst case ``d = R`` below Figure 4), generalized to any ``d`` and
  evaluated by numerical quadrature.

They agree to floating-point tolerance; the test suite asserts this, which
guards against transcribing the paper's formula incorrectly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import AnalysisError
from repro.util.validation import check_positive, check_range


@dataclass(frozen=True, slots=True)
class Vec2:
    """An immutable 2-D point / vector in meters."""

    x: float
    y: float

    def __add__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        return Vec2(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Vec2":
        return Vec2(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def distance_to(self, other: "Vec2") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def norm(self) -> float:
        """Euclidean length of this vector."""
        return math.hypot(self.x, self.y)

    def rotated(self, angle: float) -> "Vec2":
        """This vector rotated counter-clockwise by ``angle`` radians."""
        c, s = math.cos(angle), math.sin(angle)
        return Vec2(c * self.x - s * self.y, s * self.x + c * self.y)


ORIGIN = Vec2(0.0, 0.0)


def disk_area(radius: float) -> float:
    """Area of a disk of the given radius (``Au`` in the paper)."""
    check_positive("radius", radius)
    return math.pi * radius * radius


def lens_area(radius: float, distance: float) -> float:
    """Intersection area of two radius-``radius`` disks ``distance`` apart.

    This is ``An`` in the paper: the part of the cluster disk that lies
    within member ``v``'s transmission range when ``v`` is ``distance`` away
    from the clusterhead.  For ``distance == 0`` the disks coincide
    (``An == Au``); for ``distance >= 2 * radius`` the disks are disjoint.
    """
    check_positive("radius", radius)
    if distance < 0:
        raise AnalysisError(f"distance must be non-negative, got {distance}")
    if distance >= 2 * radius:
        return 0.0
    if distance == 0:
        return disk_area(radius)
    r2 = radius * radius
    half = distance / 2.0
    area = 2.0 * r2 * math.acos(half / radius) - half * math.sqrt(
        4.0 * r2 - distance * distance
    )
    # Cancellation near d = 2R can produce a tiny negative result.
    return max(0.0, area)


def lens_area_integral(radius: float, distance: float, samples: int = 200_001) -> float:
    """The paper's integral form of ``An``, generalized to any distance.

    The paper states, for the worst case ``d = R`` (Figure 4(b))::

        An = 4 * integral_0^c ( sqrt(R^2 - x^2) - 0.5 R ) dx,
        c = sqrt(R^2 - (0.5 R)^2)

    i.e. four times the area between the cluster circle and the chord at
    height ``d / 2`` over half the chord length.  Generalized to distance
    ``d``: the lens is symmetric about the chord ``y = d / 2`` with
    half-width ``c = sqrt(R^2 - (d/2)^2)``.  Evaluated with Simpson's rule
    via :func:`scipy.integrate.simpson` if available, else trapezoid.
    """
    check_positive("radius", radius)
    if distance < 0:
        raise AnalysisError(f"distance must be non-negative, got {distance}")
    if distance >= 2 * radius:
        return 0.0
    if distance == 0:
        return disk_area(radius)
    if samples < 3:
        raise AnalysisError(f"samples must be >= 3, got {samples}")
    half = distance / 2.0
    c = math.sqrt(radius * radius - half * half)
    xs = np.linspace(0.0, c, samples)
    ys = np.sqrt(np.maximum(radius * radius - xs * xs, 0.0)) - half
    try:
        from scipy.integrate import simpson

        quarter = float(simpson(ys, x=xs))
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        quarter = float(np.trapezoid(ys, xs))
    return 4.0 * quarter


def neighborhood_overlap_fraction(radius: float, distance: float) -> float:
    """``a = An / Au``: fraction of the cluster within ``v``'s range.

    The probability that a uniformly placed cluster member falls inside the
    transmission range of a member located ``distance`` from the CH.  The
    paper's worst case is ``distance == radius`` (``v`` on the
    circumference), giving ``a = (2*pi/3 - sqrt(3)/2) / pi ~= 0.391``.
    """
    return lens_area(radius, distance) / disk_area(radius)


#: The paper's worst-case overlap fraction (v on the cluster circumference).
WORST_CASE_OVERLAP_FRACTION = (2.0 * math.pi / 3.0 - math.sqrt(3.0) / 2.0) / math.pi


def point_in_disk(point: Vec2, center: Vec2, radius: float) -> bool:
    """Whether ``point`` lies within (or on) the disk around ``center``."""
    return point.distance_to(center) <= radius


def sample_in_disk(rng: np.random.Generator, center: Vec2, radius: float) -> Vec2:
    """A point drawn uniformly at random from the disk around ``center``.

    Uses the inverse-CDF radius transform ``r = R * sqrt(u)`` so the
    distribution is uniform in *area*, matching the paper's assumption that
    host locations are "statistically uniformly distributed" in the cluster.
    """
    check_positive("radius", radius)
    r = radius * math.sqrt(rng.uniform())
    theta = rng.uniform(0.0, 2.0 * math.pi)
    return Vec2(center.x + r * math.cos(theta), center.y + r * math.sin(theta))


def sample_on_circle(rng: np.random.Generator, center: Vec2, radius: float) -> Vec2:
    """A point drawn uniformly from the circle of the given radius.

    Used to place the worst-case member ``v`` on the cluster circumference
    (Figure 4(b)) in Monte Carlo estimators.
    """
    check_positive("radius", radius)
    theta = rng.uniform(0.0, 2.0 * math.pi)
    return Vec2(center.x + radius * math.cos(theta), center.y + radius * math.sin(theta))


def annulus_area(radius_inner: float, radius_outer: float) -> float:
    """Area between two concentric circles."""
    check_range("radius_inner", radius_inner, 0.0, radius_outer)
    return math.pi * (radius_outer * radius_outer - radius_inner * radius_inner)


def circle_circle_intersections(
    center_a: Vec2, radius_a: float, center_b: Vec2, radius_b: float
) -> tuple[Vec2, ...]:
    """Intersection points of two circles (0, 1, or 2 points).

    Used by the DCH-reachability analysis to construct the region ``Ag``
    reachable by both the deputy clusterhead and an out-of-range member
    (Figure 2(a)).
    """
    d = center_a.distance_to(center_b)
    if d == 0:
        return ()
    if d > radius_a + radius_b or d < abs(radius_a - radius_b):
        return ()
    a = (radius_a**2 - radius_b**2 + d * d) / (2 * d)
    h_sq = radius_a**2 - a * a
    if h_sq < 0:
        return ()
    ex = (center_b.x - center_a.x) / d
    ey = (center_b.y - center_a.y) / d
    mid = Vec2(center_a.x + a * ex, center_a.y + a * ey)
    if h_sq == 0:
        return (mid,)
    h = math.sqrt(h_sq)
    return (
        Vec2(mid.x + h * ey, mid.y - h * ex),
        Vec2(mid.x - h * ey, mid.y + h * ex),
    )
