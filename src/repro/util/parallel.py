"""Deterministic process-pool fan-out for experiments and estimators.

The fabric has one rule: **worker count never changes results**.  Every
entry point here is an order-preserving map over an explicit task list, so
the aggregation downstream sees the same values in the same order whether
the tasks ran in-process (``workers=1``) or across a pool -- the
bit-identical guarantee the regression tests pin down.

Randomness is never shared across tasks.  Each task derives its own
:class:`numpy.random.SeedSequence` child (via :func:`spawn_seed_sequences`)
from a single root seed, so per-task streams are independent *and*
reproducible regardless of which process consumes them.

Lives in ``repro.util`` so that analysis modules can use it without
importing the experiment package (which itself imports analysis); the
public face for experiment code is :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

import atexit
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.errors import ExperimentError

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count knob: ``None`` means "all CPUs"."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    return workers


def effective_workers(
    workers: Optional[int], task_count: Optional[int] = None
) -> int:
    """The pool width that can actually help: requested workers capped at
    the CPU count (extra processes on fewer cores only add context
    switches and IPC) and at the task count (idle workers cost startup).

    This cap is what fixed the fabric's negative scaling: asking for 4
    workers on a smaller machine used to *lose* to serial (pool spawn +
    pickling with zero added parallelism); now it degrades to the widest
    pool the hardware supports, down to in-process serial on one CPU.
    """
    width = min(resolve_workers(workers), max(1, os.cpu_count() or 1))
    if task_count is not None:
        width = min(width, max(1, int(task_count)))
    return width


# ----------------------------------------------------------------------
# Persistent pool: amortize worker startup across calls
# ----------------------------------------------------------------------
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS: int = 0


def shared_pool(workers: int) -> ProcessPoolExecutor:
    """The process pool shared by every fabric call in this process.

    Spawning a :class:`ProcessPoolExecutor` costs fork/exec plus a full
    interpreter + ``import repro`` warm-up per worker -- which used to be
    paid on *every* ``parallel_map`` call and dominated short batches
    (measured scaling efficiency 0.18 at 4 workers).  The pool persists
    across calls and is only rebuilt when a caller needs more workers
    than it currently has; narrower requests reuse the wider pool.
    """
    global _POOL, _POOL_WORKERS
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    if _POOL is None or _POOL_WORKERS < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WORKERS = workers
    return _POOL


def shutdown_shared_pool() -> None:
    """Tear down the persistent pool (atexit hook; also for tests)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_shared_pool)


# ----------------------------------------------------------------------
# Throughput-tuned chunking
# ----------------------------------------------------------------------
#: Aim for chunks worth roughly this much wall clock: long enough that
#: one pickle round-trip is noise, short enough that the tail chunk
#: cannot idle the pool for long.
TARGET_CHUNK_SECONDS = 0.5

_task_rate_ewma: Optional[float] = None


def note_task_rate(tasks: int, seconds: float) -> None:
    """Feed an observed scenario-task completion rate into the tuner.

    Called by the fabric itself after each pooled batch and by the
    campaign runner with its telemetry-measured replications/sec, so the
    next :func:`auto_chunksize` reflects how fast this workload actually
    runs on this machine.  Smoothed with an EWMA (alpha 0.5): responsive
    to config-size changes, stable against one noisy batch.
    """
    global _task_rate_ewma
    if tasks <= 0 or seconds <= 0.0:
        return
    observed = tasks / seconds
    if _task_rate_ewma is None:
        _task_rate_ewma = observed
    else:
        _task_rate_ewma = 0.5 * _task_rate_ewma + 0.5 * observed


def observed_task_rate() -> Optional[float]:
    """The current tasks/sec estimate (``None`` until first feed)."""
    return _task_rate_ewma


def reset_task_rate() -> None:
    """Forget the throughput estimate (tests, workload changes)."""
    global _task_rate_ewma
    _task_rate_ewma = None


def auto_chunksize(
    task_count: int,
    workers: int,
    task_rate: Optional[float] = None,
) -> int:
    """Pool ``chunksize`` for a batch: telemetry-tuned when available.

    With a known task rate the chunk is sized to
    :data:`TARGET_CHUNK_SECONDS` of work; cold, it falls back to four
    chunks per worker.  Always clamped to ``[1, ceil(tasks/workers)]``
    so every worker gets work.  Chunking never affects results --
    ``pool.map`` preserves input order regardless -- only the
    pickling/dispatch overhead per task.
    """
    if task_count < 1:
        return 1
    workers = max(1, int(workers))
    per_worker = math.ceil(task_count / workers)
    rate = task_rate if task_rate is not None else observed_task_rate()
    if rate and rate > 0.0:
        size = int(round(rate * TARGET_CHUNK_SECONDS))
    else:
        size = math.ceil(task_count / (workers * 4))
    return max(1, min(size, per_worker))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = 1,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving input order.

    ``workers <= 1`` (the default) runs serially in-process; larger
    values fan out over the persistent :func:`shared_pool` (requiring
    ``fn`` and every item to be picklable -- module-level functions and
    frozen dataclass configs are; lambdas and closures are not).  The
    requested width is capped by :func:`effective_workers`, so
    over-asking degrades to serial instead of losing to it.  Results
    arrive in input order either way, so downstream aggregation is
    independent of the worker count.

    ``chunksize`` overrides the telemetry-tuned :func:`auto_chunksize`;
    either way chunking is invisible in the results.
    """
    tasks = list(items)
    count = effective_workers(workers, len(tasks))
    if count <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    if chunksize is None:
        chunksize = auto_chunksize(len(tasks), count)
    started = time.monotonic()
    try:
        results = list(shared_pool(count).map(fn, tasks, chunksize=chunksize))
    except BrokenProcessPool:
        # A worker died (OOM-kill, hard crash).  The pool is unusable;
        # rebuild it once and retry -- tasks are pure, so a rerun is
        # safe and returns the same values.
        shutdown_shared_pool()
        results = list(shared_pool(count).map(fn, tasks, chunksize=chunksize))
    note_task_rate(len(tasks), time.monotonic() - started)
    return results


def spawn_seed_sequences(
    root_seed: int, count: int
) -> List[np.random.SeedSequence]:
    """``count`` independent child sequences of one root seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, the recommended scheme
    for parallel streams: children are statistically independent of each
    other and of the parent, and the mapping (root_seed, index) -> stream
    is stable across processes and platforms.
    """
    if count < 1:
        raise ExperimentError(f"count must be >= 1, got {count}")
    return np.random.SeedSequence(int(root_seed)).spawn(int(count))


def spawn_rngs(root_seed: int, count: int) -> List[np.random.Generator]:
    """``count`` independent, reproducible generators from one root seed."""
    return [
        np.random.default_rng(seq)
        for seq in spawn_seed_sequences(root_seed, count)
    ]


def chunk_sizes(total: int, chunks: int) -> List[int]:
    """Split ``total`` into ``chunks`` balanced positive parts (sum exact).

    The split depends only on ``(total, chunks)`` -- never on the worker
    count -- so chunked estimators stay deterministic under any pool size.
    """
    if total < 1:
        raise ExperimentError(f"total must be >= 1, got {total}")
    if chunks < 1:
        raise ExperimentError(f"chunks must be >= 1, got {chunks}")
    chunks = min(chunks, total)
    base, extra = divmod(total, chunks)
    return [base + (1 if i < extra else 0) for i in range(chunks)]
