"""Deterministic process-pool fan-out for experiments and estimators.

The fabric has one rule: **worker count never changes results**.  Every
entry point here is an order-preserving map over an explicit task list, so
the aggregation downstream sees the same values in the same order whether
the tasks ran in-process (``workers=1``) or across a pool -- the
bit-identical guarantee the regression tests pin down.

Randomness is never shared across tasks.  Each task derives its own
:class:`numpy.random.SeedSequence` child (via :func:`spawn_seed_sequences`)
from a single root seed, so per-task streams are independent *and*
reproducible regardless of which process consumes them.

Lives in ``repro.util`` so that analysis modules can use it without
importing the experiment package (which itself imports analysis); the
public face for experiment code is :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.errors import ExperimentError

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count knob: ``None`` means "all CPUs"."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    return workers


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving input order.

    ``workers <= 1`` (the default) runs serially in-process; larger values
    fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`, which
    requires ``fn`` and every item to be picklable (module-level functions
    and frozen dataclass configs are; lambdas and closures are not).
    Results arrive in input order either way, so downstream aggregation is
    independent of the worker count.
    """
    tasks = list(items)
    count = resolve_workers(workers)
    if count <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(count, len(tasks))) as pool:
        return list(pool.map(fn, tasks))


def spawn_seed_sequences(
    root_seed: int, count: int
) -> List[np.random.SeedSequence]:
    """``count`` independent child sequences of one root seed.

    Uses :meth:`numpy.random.SeedSequence.spawn`, the recommended scheme
    for parallel streams: children are statistically independent of each
    other and of the parent, and the mapping (root_seed, index) -> stream
    is stable across processes and platforms.
    """
    if count < 1:
        raise ExperimentError(f"count must be >= 1, got {count}")
    return np.random.SeedSequence(int(root_seed)).spawn(int(count))


def spawn_rngs(root_seed: int, count: int) -> List[np.random.Generator]:
    """``count`` independent, reproducible generators from one root seed."""
    return [
        np.random.default_rng(seq)
        for seq in spawn_seed_sequences(root_seed, count)
    ]


def chunk_sizes(total: int, chunks: int) -> List[int]:
    """Split ``total`` into ``chunks`` balanced positive parts (sum exact).

    The split depends only on ``(total, chunks)`` -- never on the worker
    count -- so chunked estimators stay deterministic under any pool size.
    """
    if total < 1:
        raise ExperimentError(f"total must be >= 1, got {total}")
    if chunks < 1:
        raise ExperimentError(f"chunks must be >= 1, got {chunks}")
    chunks = min(chunks, total)
    base, extra = divmod(total, chunks)
    return [base + (1 if i < extra else 0) for i in range(chunks)]
