"""A SWIM-style failure detector (Das, Gupta & Motivala, 2002).

Randomized probing: each protocol period a node pings one member chosen
uniformly at random from those it believes alive and within reach.  If no
ack arrives within the timeout, it asks ``proxy_count`` other members to
ping the target on its behalf (ping-req); if no indirect ack arrives
either, the target is declared failed and the declaration is broadcast
(the wireless stand-in for SWIM's piggybacked dissemination; receivers
re-broadcast a declaration once, giving multi-hop spread).

SWIM is the modern point of comparison for any membership failure
detector; against the paper's FDS it trades per-round detection of *every*
member for constant per-period load with expected-time detection.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

from repro.errors import ConfigurationError
from repro.fds.reports import ReportHistory
from repro.sim.medium import Envelope
from repro.sim.network import Network
from repro.sim.node import Protocol
from repro.types import NodeId
from repro.util.validation import check_int_at_least, check_positive


@dataclass(frozen=True, slots=True)
class Ping:
    sender: NodeId
    target: NodeId
    sequence: int


@dataclass(frozen=True, slots=True)
class Ack:
    sender: NodeId
    target: NodeId  # the original prober
    sequence: int


@dataclass(frozen=True, slots=True)
class PingReq:
    sender: NodeId
    proxy: NodeId
    target: NodeId
    sequence: int


@dataclass(frozen=True, slots=True)
class FailureDeclaration:
    sender: NodeId
    target: NodeId
    #: Hop budget for re-broadcast dissemination.
    ttl: int


@dataclass(frozen=True)
class SwimConfig:
    """SWIM tuning."""

    period: float = 1.0
    ack_timeout: float = 0.25
    proxy_count: int = 3
    declaration_ttl: int = 8

    def __post_init__(self) -> None:
        check_positive("period", self.period)
        check_positive("ack_timeout", self.ack_timeout)
        check_int_at_least("proxy_count", self.proxy_count, 0)
        check_int_at_least("declaration_ttl", self.declaration_ttl, 1)
        if 2 * self.ack_timeout >= self.period:
            raise ConfigurationError(
                "period must exceed twice the ack timeout (direct + indirect)"
            )


class SwimFd(Protocol):
    """Per-node SWIM-style failure detector."""

    name = "swim-fd"

    def __init__(
        self,
        config: SwimConfig,
        membership: frozenset[NodeId],
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.config = config
        self.membership = membership
        self.rng = rng
        self.history = ReportHistory()
        self._sequence = itertools.count()
        self._acked: Set[int] = set()
        #: Targets whose declaration we already re-broadcast (dedup by
        #: target: re-flooding per origin would multiply traffic with no
        #: information gain).
        self._seen_declarations: Set[NodeId] = set()
        self.pings_sent = 0
        self.ping_reqs_sent = 0
        self.declarations_sent = 0

    # ------------------------------------------------------------------
    def start(self, first_tick: float, until: float) -> None:
        assert self.node is not None

        def tick() -> None:
            assert self.node is not None
            self._probe_once()
            if self.node.sim.now + self.config.period <= until:
                self.node.timers.after(self.config.period, tick)

        self.node.timers.after(max(0.0, first_tick - self.node.sim.now), tick)

    def _alive_candidates(self) -> list[NodeId]:
        assert self.node is not None
        return sorted(
            nid
            for nid in self.membership
            if nid != self.node.node_id and nid not in self.history
        )

    def _probe_once(self) -> None:
        assert self.node is not None
        candidates = self._alive_candidates()
        if not candidates:
            return
        target = NodeId(int(self.rng.choice(np.asarray(candidates, dtype=np.int64))))
        sequence = next(self._sequence)
        self.pings_sent += 1
        self.node.send(
            Ping(sender=self.node.node_id, target=target, sequence=sequence),
            recipient=target,
        )
        self.node.timers.after(
            self.config.ack_timeout,
            lambda: self._direct_timeout(target, sequence),
        )

    def _direct_timeout(self, target: NodeId, sequence: int) -> None:
        assert self.node is not None
        if sequence in self._acked:
            return
        proxies = [n for n in self._alive_candidates() if n != target]
        if proxies and self.config.proxy_count > 0:
            chosen = self.rng.choice(
                np.asarray(proxies, dtype=np.int64),
                size=min(self.config.proxy_count, len(proxies)),
                replace=False,
            )
            for proxy in chosen:
                self.ping_reqs_sent += 1
                self.node.send(
                    PingReq(
                        sender=self.node.node_id,
                        proxy=NodeId(int(proxy)),
                        target=target,
                        sequence=sequence,
                    ),
                    recipient=NodeId(int(proxy)),
                )
        self.node.timers.after(
            self.config.ack_timeout,
            lambda: self._indirect_timeout(target, sequence),
        )

    def _indirect_timeout(self, target: NodeId, sequence: int) -> None:
        assert self.node is not None
        if sequence in self._acked or target in self.history:
            return
        self.history.add(frozenset({target}))
        self.node.medium.tracer.record(
            self.node.sim.now,
            "swim.detection",
            node=int(self.node.node_id),
            target=int(target),
        )
        self._broadcast_declaration(target, self.config.declaration_ttl)

    def _broadcast_declaration(self, target: NodeId, ttl: int) -> None:
        assert self.node is not None
        self.declarations_sent += 1
        self.node.send(
            FailureDeclaration(
                sender=self.node.node_id, target=target, ttl=ttl
            )
        )

    # ------------------------------------------------------------------
    def on_receive(self, envelope: Envelope) -> None:
        assert self.node is not None
        payload = envelope.payload
        my_id = self.node.node_id
        if isinstance(payload, Ping):
            if payload.target == my_id:
                self.node.send(
                    Ack(sender=my_id, target=payload.sender,
                        sequence=payload.sequence),
                    recipient=payload.sender,
                )
        elif isinstance(payload, Ack):
            if payload.target == my_id:
                self._acked.add(payload.sequence)
        elif isinstance(payload, PingReq):
            if payload.proxy == my_id:
                # Probe on the requester's behalf; relay the requester's
                # identity so the ack can be forwarded back.
                self.node.send(
                    Ping(sender=payload.sender, target=payload.target,
                         sequence=payload.sequence),
                    recipient=payload.target,
                )
        elif isinstance(payload, FailureDeclaration):
            if payload.target == my_id:
                return  # false declaration about us; ignore (we are alive)
            if payload.target in self._seen_declarations:
                return
            self._seen_declarations.add(payload.target)
            if payload.target not in self.history:
                self.history.add(frozenset({payload.target}))
            if payload.ttl > 1:
                self._broadcast_declaration(payload.target, payload.ttl - 1)


@dataclass
class SwimDeployment:
    """A SWIM FD installed across a network."""

    network: Network
    config: SwimConfig
    protocols: Dict[NodeId, SwimFd]

    def run_until(self, end: float) -> None:
        self.network.sim.run_until(end)

    def histories(self) -> Dict[NodeId, ReportHistory]:
        return {nid: p.history for nid, p in self.protocols.items()}

    def messages_sent(self) -> int:
        return sum(
            p.pings_sent + p.ping_reqs_sent + p.declarations_sent
            for p in self.protocols.values()
        )


def install_swim(
    network: Network,
    config: Optional[SwimConfig] = None,
    start_time: float = 0.0,
    until: float = 60.0,
    membership_scope: str = "all",
) -> SwimDeployment:
    """Attach and start a :class:`SwimFd` on every node.

    ``membership_scope="all"`` gives every node the full member list --
    SWIM's wired-network assumption, which over a multi-hop radio field
    produces false detections of unreachable-but-alive nodes (the paper's
    argument for locality).  ``"neighbors"`` scopes each probe list to the
    node's one-hop neighborhood.
    """
    cfg = config if config is not None else SwimConfig()
    if membership_scope not in ("all", "neighbors"):
        raise ConfigurationError(
            f"membership_scope must be 'all' or 'neighbors', got "
            f"{membership_scope!r}"
        )
    protocols: Dict[NodeId, SwimFd] = {}
    for node_id, node in sorted(network.nodes.items()):
        if membership_scope == "all":
            membership = frozenset(network.nodes)
        else:
            membership = frozenset(network.medium.neighbors_of(node_id)) | {
                node_id
            }
        protocol = SwimFd(cfg, membership, network.rngs.stream("swim", int(node_id)))
        node.add_protocol(protocol)
        protocol.start(start_time, until)
        protocols[node_id] = protocol
    return SwimDeployment(network=network, config=cfg, protocols=protocols)
