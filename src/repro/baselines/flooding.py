"""Flat-flooding failure detector (the paper's scalability foil).

Structure-free detection and dissemination, the approach the paper argues
clustering beats:

- **Detection** by neighborhood watch: every node broadcasts a heartbeat
  each interval and tracks every neighbor it has ever heard; a neighbor
  silent for ``miss_threshold`` consecutive intervals is declared failed.
- **Dissemination** by flat flooding: a failure announcement is
  re-broadcast once by every node that has not yet seen it (TTL-bounded),
  so the whole field relays every single failure -- the O(network) cost the
  paper contrasts with its CH/GW backbone.

Detection here is per-observer (no authority, no digests), so a single
lost heartbeat sequence at one neighbor produces a false detection at that
neighbor with probability ``p**miss_threshold`` -- vastly worse than the
cluster FDS's digest-buffered rule at equal heartbeat cost.  The ablation
benchmark quantifies exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.fds.reports import ReportHistory
from repro.sim.medium import Envelope
from repro.sim.network import Network
from repro.sim.node import Protocol
from repro.types import NodeId, SimTime
from repro.util.validation import check_int_at_least, check_positive


@dataclass(frozen=True, slots=True)
class FloodHeartbeat:
    sender: NodeId
    sequence: int


@dataclass(frozen=True, slots=True)
class FloodAnnouncement:
    origin: NodeId
    target: NodeId
    ttl: int


@dataclass(frozen=True)
class FloodingConfig:
    """Neighborhood-watch + flooding tuning."""

    interval: float = 1.0
    miss_threshold: int = 3
    announcement_ttl: int = 16

    def __post_init__(self) -> None:
        check_positive("interval", self.interval)
        check_int_at_least("miss_threshold", self.miss_threshold, 1)
        check_int_at_least("announcement_ttl", self.announcement_ttl, 1)


class FloodingFd(Protocol):
    """Per-node neighborhood watch with flooding dissemination."""

    name = "flooding-fd"

    def __init__(self, config: FloodingConfig) -> None:
        super().__init__()
        self.config = config
        self.history = ReportHistory()
        self._last_heard: Dict[NodeId, int] = {}
        self._sequence = 0
        self._seen_announcements: Set[tuple[NodeId, NodeId]] = set()
        self.heartbeats_sent = 0
        self.announcements_sent = 0

    def start(self, first_tick: float, until: float) -> None:
        assert self.node is not None

        def tick() -> None:
            assert self.node is not None
            self._sequence += 1
            self.heartbeats_sent += 1
            self.node.send(
                FloodHeartbeat(sender=self.node.node_id, sequence=self._sequence)
            )
            self._sweep(self.node.sim.now)
            if self.node.sim.now + self.config.interval <= until:
                self.node.timers.after(self.config.interval, tick)

        self.node.timers.after(max(0.0, first_tick - self.node.sim.now), tick)

    def _sweep(self, now: SimTime) -> None:
        assert self.node is not None
        for nid, last_seq in list(self._last_heard.items()):
            if nid in self.history:
                continue
            if self._sequence - last_seq >= self.config.miss_threshold:
                self.history.add(frozenset({nid}))
                self.node.medium.tracer.record(
                    now,
                    "flooding.detection",
                    node=int(self.node.node_id),
                    target=int(nid),
                )
                self._flood(self.node.node_id, nid, self.config.announcement_ttl)

    def _flood(self, origin: NodeId, target: NodeId, ttl: int) -> None:
        assert self.node is not None
        self.announcements_sent += 1
        self.node.send(
            FloodAnnouncement(origin=origin, target=target, ttl=ttl)
        )

    def on_receive(self, envelope: Envelope) -> None:
        assert self.node is not None
        payload = envelope.payload
        my_id = self.node.node_id
        if isinstance(payload, FloodHeartbeat):
            self._last_heard[payload.sender] = self._sequence
            if payload.sender in self.history:
                self.history.refute(payload.sender)
        elif isinstance(payload, FloodAnnouncement):
            if payload.target == my_id:
                return  # we are alive; drop the false announcement
            key = (payload.origin, payload.target)
            if key in self._seen_announcements:
                return
            self._seen_announcements.add(key)
            if payload.target not in self.history:
                self.history.add(frozenset({payload.target}))
            if payload.ttl > 1:
                self._flood(payload.origin, payload.target, payload.ttl - 1)


@dataclass
class FloodingDeployment:
    """A flooding FD installed across a network."""

    network: Network
    config: FloodingConfig
    protocols: Dict[NodeId, FloodingFd]

    def run_until(self, end: float) -> None:
        self.network.sim.run_until(end)

    def histories(self) -> Dict[NodeId, ReportHistory]:
        return {nid: p.history for nid, p in self.protocols.items()}

    def messages_sent(self) -> int:
        return sum(
            p.heartbeats_sent + p.announcements_sent
            for p in self.protocols.values()
        )


def install_flooding(
    network: Network,
    config: Optional[FloodingConfig] = None,
    start_time: float = 0.0,
    until: float = 60.0,
) -> FloodingDeployment:
    """Attach and start a :class:`FloodingFd` on every node."""
    cfg = config if config is not None else FloodingConfig()
    protocols: Dict[NodeId, FloodingFd] = {}
    for node_id, node in sorted(network.nodes.items()):
        protocol = FloodingFd(cfg)
        node.add_protocol(protocol)
        protocol.start(start_time, until)
        protocols[node_id] = protocol
    return FloodingDeployment(network=network, config=cfg, protocols=protocols)
