"""Baseline failure detectors on the same radio substrate.

The paper positions its cluster-based FDS against the prior art its
related-work section cites: gossip-style failure detection (van Renesse et
al. [11]), heartbeat probing over flat topologies, and centralized
monitoring.  These baselines let the benchmark harness quantify the
comparisons the paper makes qualitatively (scalability of message cost,
robustness to loss, detection completeness):

- :class:`~repro.baselines.gossip.GossipFd` -- heartbeat-counter gossip.
- :class:`~repro.baselines.swim.SwimFd` -- ping / ping-req probing with
  broadcast dissemination.
- :class:`~repro.baselines.flooding.FloodingFd` -- neighborhood heartbeat
  watch with flat flooding of failure announcements.
- :class:`~repro.baselines.centralized.CentralizedFd` -- one base station
  monitoring direct heartbeats (scales only to its own radio range, which
  is the paper's motivating limitation).
"""

from repro.baselines.centralized import CentralizedConfig, CentralizedFd, install_centralized
from repro.baselines.flooding import FloodingConfig, FloodingFd, install_flooding
from repro.baselines.gossip import GossipConfig, GossipFd, install_gossip
from repro.baselines.swim import SwimConfig, SwimFd, install_swim

__all__ = [
    "GossipFd",
    "GossipConfig",
    "install_gossip",
    "SwimFd",
    "SwimConfig",
    "install_swim",
    "FloodingFd",
    "FloodingConfig",
    "install_flooding",
    "CentralizedFd",
    "CentralizedConfig",
    "install_centralized",
]
