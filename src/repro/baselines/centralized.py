"""Centralized base-station monitoring (the paper's non-starter).

One designated base station expects a direct heartbeat from every node
each interval and declares nodes failed after ``miss_threshold`` silent
intervals.  Since the base station only hears nodes inside its own
transmission range, this baseline *cannot* monitor a field larger than one
radio disk -- the scalability wall the paper's introduction leads with.
The deployment reports the fraction of the field that is monitorable at
all (:meth:`CentralizedDeployment.coverage`), which the scalability bench
sweeps against field size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.fds.reports import ReportHistory
from repro.sim.medium import Envelope
from repro.sim.network import Network
from repro.sim.node import Protocol
from repro.types import NodeId
from repro.util.validation import check_int_at_least, check_positive


@dataclass(frozen=True, slots=True)
class StationHeartbeat:
    sender: NodeId
    sequence: int


@dataclass(frozen=True)
class CentralizedConfig:
    """Base-station FD tuning."""

    interval: float = 1.0
    miss_threshold: int = 3

    def __post_init__(self) -> None:
        check_positive("interval", self.interval)
        check_int_at_least("miss_threshold", self.miss_threshold, 1)


class CentralizedFd(Protocol):
    """Runs on every node; only the base station evaluates timeouts."""

    name = "centralized-fd"

    def __init__(self, config: CentralizedConfig, station: NodeId) -> None:
        super().__init__()
        self.config = config
        self.station = station
        self.history = ReportHistory()
        self._last_heard: Dict[NodeId, int] = {}
        self._sequence = 0
        self.heartbeats_sent = 0

    @property
    def is_station(self) -> bool:
        assert self.node is not None
        return self.node.node_id == self.station

    def start(self, first_tick: float, until: float) -> None:
        assert self.node is not None

        def tick() -> None:
            assert self.node is not None
            self._sequence += 1
            if not self.is_station:
                self.heartbeats_sent += 1
                self.node.send(
                    StationHeartbeat(
                        sender=self.node.node_id, sequence=self._sequence
                    ),
                    recipient=self.station,
                )
            else:
                self._sweep()
            if self.node.sim.now + self.config.interval <= until:
                self.node.timers.after(self.config.interval, tick)

        self.node.timers.after(max(0.0, first_tick - self.node.sim.now), tick)

    def _sweep(self) -> None:
        assert self.node is not None
        for nid, last_seq in list(self._last_heard.items()):
            if nid in self.history:
                continue
            if self._sequence - last_seq >= self.config.miss_threshold:
                self.history.add(frozenset({nid}))
                self.node.medium.tracer.record(
                    self.node.sim.now,
                    "centralized.detection",
                    node=int(self.node.node_id),
                    target=int(nid),
                )

    def on_receive(self, envelope: Envelope) -> None:
        if not self.is_station:
            return
        payload = envelope.payload
        if isinstance(payload, StationHeartbeat):
            self._last_heard[payload.sender] = self._sequence
            if payload.sender in self.history:
                self.history.refute(payload.sender)


@dataclass
class CentralizedDeployment:
    """A centralized FD installed across a network."""

    network: Network
    config: CentralizedConfig
    station: NodeId
    protocols: Dict[NodeId, CentralizedFd]

    def run_until(self, end: float) -> None:
        self.network.sim.run_until(end)

    def station_history(self) -> ReportHistory:
        return self.protocols[self.station].history

    def coverage(self) -> float:
        """Fraction of non-station nodes within the station's radio range."""
        others = [n for n in self.network.nodes if n != self.station]
        if not others:
            return 1.0
        reachable = set(self.network.medium.neighbors_of(self.station))
        return sum(1 for n in others if n in reachable) / len(others)


def install_centralized(
    network: Network,
    station: NodeId,
    config: Optional[CentralizedConfig] = None,
    start_time: float = 0.0,
    until: float = 60.0,
) -> CentralizedDeployment:
    """Attach and start a :class:`CentralizedFd` with the given station."""
    cfg = config if config is not None else CentralizedConfig()
    if station not in network.nodes:
        raise ConfigurationError(f"station {station} is not in the network")
    protocols: Dict[NodeId, CentralizedFd] = {}
    for node_id, node in sorted(network.nodes.items()):
        protocol = CentralizedFd(cfg, station)
        node.add_protocol(protocol)
        protocol.start(start_time, until)
        protocols[node_id] = protocol
    return CentralizedDeployment(
        network=network, config=cfg, station=station, protocols=protocols
    )
