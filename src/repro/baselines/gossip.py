"""Gossip-style failure detection (van Renesse, Minsky & Hayden, 1998).

The paper's reference [11].  Every node keeps a table mapping each known
node to the highest heartbeat counter it has seen for it, plus the local
time that entry last increased.  Each gossip interval a node increments its
own counter and transmits its table; receivers merge entry-wise maxima.  A
node whose entry has not increased within ``fail_after`` seconds is
declared failed.

In the original wired protocol the table goes to one random peer; over a
wireless broadcast medium the natural adaptation (and the fair one for
comparing against the cluster FDS) is a local broadcast -- all neighbors
hear the table.

The baseline exposes the same scoring surface as the FDS (a
:class:`~repro.fds.reports.ReportHistory` per node) so
:func:`repro.metrics.properties.evaluate_histories` can score it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.fds.reports import ReportHistory
from repro.sim.medium import Envelope
from repro.sim.network import Network
from repro.sim.node import Protocol
from repro.types import NodeId, SimTime
from repro.util.validation import check_positive


@dataclass(frozen=True, slots=True)
class GossipMessage:
    """One node's heartbeat-counter table."""

    sender: NodeId
    counters: Mapping[NodeId, int]


@dataclass(frozen=True)
class GossipConfig:
    """Gossip FD tuning.

    ``fail_after`` should be a small multiple of ``interval`` (the classic
    guidance is >= 2-3 intervals times the expected dissemination latency).
    """

    interval: float = 1.0
    fail_after: float = 5.0

    def __post_init__(self) -> None:
        check_positive("interval", self.interval)
        check_positive("fail_after", self.fail_after)
        if self.fail_after <= self.interval:
            raise ConfigurationError(
                "fail_after must exceed the gossip interval"
            )


class GossipFd(Protocol):
    """Per-node gossip failure detector."""

    name = "gossip-fd"

    def __init__(self, config: GossipConfig, membership: frozenset[NodeId]) -> None:
        super().__init__()
        self.config = config
        self.membership = membership
        self.counters: Dict[NodeId, int] = {}
        self.last_increase: Dict[NodeId, SimTime] = {}
        self.history = ReportHistory()
        self.gossips_sent = 0

    def start(self, first_tick: float, until: float) -> None:
        """Begin gossiping at ``first_tick``, rechecking until ``until``."""
        assert self.node is not None
        my_id = self.node.node_id
        self.counters[my_id] = 0
        self.last_increase = {nid: first_tick for nid in self.membership}

        def tick() -> None:
            assert self.node is not None
            now = self.node.sim.now
            self.counters[my_id] = self.counters.get(my_id, 0) + 1
            self.last_increase[my_id] = now
            self.gossips_sent += 1
            self.node.send(
                GossipMessage(sender=my_id, counters=dict(self.counters))
            )
            self._sweep_failures(now)
            if now + self.config.interval <= until:
                self.node.timers.after(self.config.interval, tick)

        self.node.timers.after(max(0.0, first_tick - self.node.sim.now), tick)

    def _sweep_failures(self, now: SimTime) -> None:
        assert self.node is not None
        for nid in self.membership:
            if nid == self.node.node_id or nid in self.history:
                continue
            if now - self.last_increase.get(nid, now) > self.config.fail_after:
                self.history.add(frozenset({nid}))
                self.node.medium.tracer.record(
                    now,
                    "gossip.detection",
                    node=int(self.node.node_id),
                    target=int(nid),
                )

    def on_receive(self, envelope: Envelope) -> None:
        assert self.node is not None
        message = envelope.payload
        if not isinstance(message, GossipMessage):
            return
        now = self.node.sim.now
        for nid, counter in message.counters.items():
            if counter > self.counters.get(nid, -1):
                self.counters[nid] = counter
                self.last_increase[nid] = now
                if nid in self.history:
                    self.history.refute(nid)


@dataclass
class GossipDeployment:
    """A gossip FD installed across a network."""

    network: Network
    config: GossipConfig
    protocols: Dict[NodeId, GossipFd]

    def run_until(self, end: float) -> None:
        self.network.sim.run_until(end)

    def histories(self) -> Dict[NodeId, ReportHistory]:
        return {nid: p.history for nid, p in self.protocols.items()}

    def messages_sent(self) -> int:
        return sum(p.gossips_sent for p in self.protocols.values())


def install_gossip(
    network: Network,
    config: GossipConfig | None = None,
    start_time: float = 0.0,
    until: float = 60.0,
) -> GossipDeployment:
    """Attach and start a :class:`GossipFd` on every node."""
    cfg = config if config is not None else GossipConfig()
    membership = frozenset(network.nodes)
    protocols: Dict[NodeId, GossipFd] = {}
    for node_id, node in sorted(network.nodes.items()):
        protocol = GossipFd(cfg, membership)
        node.add_protocol(protocol)
        protocol.start(start_time, until)
        protocols[node_id] = protocol
    return GossipDeployment(network=network, config=cfg, protocols=protocols)
