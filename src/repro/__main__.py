"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``
    Print the paper's Figures 5-7 as tables (closed-form evaluation).
``claims``
    Check every quantitative claim of the paper's evaluation prose.
``validate``
    Monte Carlo + protocol-in-the-loop validation at a chosen (N, p).
``scenario``
    Run an end-to-end multi-cluster scenario with crashes and print the
    scored summary.
``reachability``
    Print the DCH reachability study (the analysis the paper summarizes).
``soak``
    Randomized differential conformance soak: seeded scenarios run under
    paired configurations (vectorized/scalar, parallel/serial, digest
    ablation) with ground-truth oracles and trace audits; violations are
    shrunk to minimal seeded repros written as pytest files.
``campaign``
    Durable experiment campaigns: content-addressed result caching,
    checkpoint/resume via a chunk journal, live JSONL telemetry
    (``run``/``resume``/``status``/``gc``; see :mod:`repro.campaign`).
``bench``
    Run the hot-path microbenchmarks and write ``BENCH_hotpaths.json``
    at the repository root.
``trace``
    Analyze a spooled trace: ``summarize`` (record counts, phase time
    shares, phi-unit detection-latency histogram), ``timeline``,
    ``lineage <report-id>`` (one failure report's R-1 -> R-3 ->
    inter-cluster path), ``latency``.
``rt``
    Real-network runtime: ``run`` (an N-node scenario over localhost
    UDP sockets with wall-clock phi timers, socket-layer loss, and
    fail-stop crash injection; per-node JSONL spools merge into one
    ``repro trace``-compatible file) and ``diff`` (the
    ``differential:realnet`` harness -- seeded specs run under sim and
    runtime must agree on oracle verdicts and latency anchors).
``serve``
    Live dashboard over a trace spool: JSON endpoints byte-identical to
    the ``repro trace`` CLI, an SSE tail of a growing spool at
    ``/events``, campaign status at ``/api/campaigns``, and Prometheus
    exposition at ``/metrics`` (see :mod:`repro.serve`).

Exit codes: 0 success, 1 failure/usage, 2 failed campaign chunks,
3 partial campaign (``--stop-after`` checkpoint), 130 interrupted
(SIGINT with state flushed -- rerun or ``campaign resume`` continues).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_figures(_args: argparse.Namespace) -> int:
    from repro.experiments.figures import (
        figure5_false_detection,
        figure6_false_detection_on_ch,
        figure7_incompleteness,
        render_figure,
    )

    for series, title in (
        (figure5_false_detection(), "Figure 5: P^(False detection)"),
        (figure6_false_detection_on_ch(), "Figure 6: P(False detection on CH)"),
        (figure7_incompleteness(), "Figure 7: P^(Incompleteness)"),
    ):
        print(render_figure(series, title))
        print()
    return 0


def _cmd_claims(_args: argparse.Namespace) -> int:
    from repro.experiments.figures import check_paper_claims
    from repro.experiments.reporting import render_claims

    results = check_paper_claims()
    print(render_claims(results))
    return 0 if all(ok for _claim, ok in results) else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis.false_detection import p_false_detection
    from repro.analysis.incompleteness import p_incompleteness
    from repro.analysis.montecarlo import mc_false_detection, mc_incompleteness
    from repro.experiments.scenarios import (
        single_cluster_validation,
        validation_summary,
    )

    n, p = args.n, args.p
    rng = np.random.default_rng(args.seed)
    print(f"validating N={n}, p={p}")
    mc_fd = mc_false_detection(n, p, trials=args.trials, rng=rng)
    mc_inc = mc_incompleteness(n, p, trials=args.trials, rng=rng)
    print(f"  P^(FD):  closed={p_false_detection(n, p):.4e}  "
          f"mc={mc_fd.estimate:.4e}  in-CI={mc_fd.contains(p_false_detection(n, p))}")
    print(f"  P^(Inc): closed={p_incompleteness(n, p):.4e}  "
          f"mc={mc_inc.estimate:.4e}  in-CI={mc_inc.contains(p_incompleteness(n, p))}")
    if args.protocol:
        result = single_cluster_validation(
            n=n, p=p, executions=args.executions, seed=args.seed
        )
        summary = validation_summary(result)
        print(f"  protocol: inc measured={summary['inc_rate_measured']:.4f} "
              f"ci=({summary['inc_ci_low']:.4f}, {summary['inc_ci_high']:.4f})")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.runner import ScenarioConfig, run_scenario

    config = ScenarioConfig(
        cluster_count=args.clusters,
        members_per_cluster=args.members,
        loss_probability=args.p,
        crash_count=args.crashes,
        executions=args.executions,
        seed=args.seed,
        formation=args.formation,
        formation_iterations=args.formation_iterations,
        formation_backoff_fraction=args.formation_backoff,
        engine=args.engine,
        loss_kind=args.loss_kind,
        track_energy=args.track_energy,
    )
    tracer = None
    profiler = None
    if args.trace_out:
        from repro.obs.spool import SpoolingTracer

        tracer = SpoolingTracer(Path(args.trace_out))
    if args.profile:
        from repro.obs.profiler import PhaseProfiler

        profiler = PhaseProfiler()
    try:
        result = run_scenario(config, tracer=tracer, profiler=profiler)
    finally:
        if tracer is not None:
            tracer.close()
    for key, value in result.summary().items():
        print(f"  {key:26s} {value:.6g}")
    energy = getattr(result, "energy", None)
    if energy is None:
        energy = getattr(getattr(result, "deployment", None), "energy", None)
    if energy is not None:
        for key, value in energy.totals().items():
            print(f"  energy.{key:19s} {value:.6g}")
        print(f"  energy.{'spread':19s} {energy.spread():.6g}")
    if profiler is not None and profiler.total_seconds > 0:
        print("  profiled phases:")
        for phase, seconds, share, calls in profiler.shares():
            print(f"    {phase:20s} {seconds:9.4f}s {100 * share:5.1f}%  "
                  f"{calls} call(s)")
    if tracer is not None:
        print(f"  trace spooled to {args.trace_out} "
              f"({tracer.spooled} record(s); analyze with 'repro trace')")
    return 0 if result.properties.is_accurate else 1


def _cmd_reachability(args: argparse.Namespace) -> int:
    from repro.analysis.reachability import dch_reachability_failure
    from repro.util.tables import render_table

    ns = (25, 50, 75, 100)
    rows = []
    for d in (20.0, 40.0, 60.0, 80.0, 95.0):
        rows.append(
            [d, *(dch_reachability_failure(n, args.p, dch_distance=d)
                  for n in ns)]
        )
    print(render_table(
        ["dch_distance", *(f"N={n}" for n in ns)], rows,
        title=f"P(DCH unaware of out-of-range member), p={args.p}",
    ))
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.audit.soak import SoakOptions, run_soak

    options = SoakOptions(
        iterations=args.iterations,
        seed=args.seed,
        out_dir=Path(args.out) if args.out else None,
        check_parallel=not args.serial,
        max_shrink_evals=args.shrink_evals,
        max_violations=args.max_violations,
        store_root=Path(args.store) if args.store else None,
    )
    result = run_soak(options, log=print)
    cached = f", {result.cache_hits} cached" if result.cache_hits else ""
    print(
        f"soak: {result.iterations} iteration(s) in {result.elapsed:.1f}s, "
        f"{len(result.failures)} violation(s){cached}"
    )
    for failure in result.failures:
        print(f"--- shrunk repro (seed {failure.shrunk.seed}) ---")
        print(failure.snippet)
    if result.interrupted:
        # Per-iteration verdicts already hit the store (atomic writes),
        # so a rerun resumes from the cache; signal the interruption.
        print("soak: interrupted -- partial progress is cached; rerun to resume")
        return 130
    return 0 if result.clean else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cluster-based FDS (DSN 2004) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="print Figures 5-7 as tables")
    sub.add_parser("claims", help="check the paper's evaluation claims")

    validate = sub.add_parser("validate", help="cross-validate the measures")
    validate.add_argument("--n", type=int, default=50)
    validate.add_argument("--p", type=float, default=0.5)
    validate.add_argument("--trials", type=int, default=100_000)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--protocol", action="store_true",
                          help="also run the real protocol (slow)")
    validate.add_argument("--executions", type=int, default=150)

    scenario = sub.add_parser("scenario", help="run an end-to-end scenario")
    scenario.add_argument("--clusters", type=int, default=4)
    scenario.add_argument("--members", type=int, default=30)
    scenario.add_argument("--p", type=float, default=0.1)
    scenario.add_argument("--crashes", type=int, default=2)
    scenario.add_argument("--executions", type=int, default=5)
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--formation", choices=("oracle", "protocol"),
                          default="oracle")
    scenario.add_argument("--formation-iterations", dest="formation_iterations",
                          type=int, default=3,
                          help="six-round formation iterations (protocol "
                               "formation only)")
    scenario.add_argument("--formation-backoff", dest="formation_backoff",
                          type=float, default=0.4,
                          help="RCC declaration backoff upper bound as a "
                               "fraction of a round, in (0, 0.9]")
    scenario.add_argument("--loss-kind", dest="loss_kind", default="bernoulli",
                          choices=("perfect", "bernoulli", "bounded",
                                   "distance", "gilbert"),
                          help="loss model kind (default bernoulli with p)")
    scenario.add_argument("--track-energy", dest="track_energy",
                          action="store_true",
                          help="charge the per-node energy ledger and print "
                               "its totals")
    scenario.add_argument("--engine", choices=("event", "array"),
                          default="event",
                          help="'event' = discrete-event reference; 'array' = "
                               "round-level numpy engine (both formation "
                               "modes, scales to 10^6 nodes)")
    scenario.add_argument("--trace-out", type=str, default="",
                          help="spool the full trace to this .jsonl[.gz] path")
    scenario.add_argument("--profile", action="store_true",
                          help="attach the phase profiler; per-phase totals "
                               "are printed and spooled as profile.phase")

    reach = sub.add_parser("reachability", help="DCH reachability study")
    reach.add_argument("--p", type=float, default=0.1)

    soak = sub.add_parser(
        "soak", help="differential conformance soak (seeded, shrinking)"
    )
    soak.add_argument("--iterations", type=int, default=10)
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--out", type=str, default="",
                      help="directory for shrunk repro .py files")
    soak.add_argument("--serial", action="store_true",
                      help="skip the parallel-fabric differential pair")
    soak.add_argument("--shrink-evals", type=int, default=24,
                      help="re-check budget while shrinking a violation")
    soak.add_argument("--max-violations", type=int, default=1,
                      help="stop after this many violations (0 = keep going)")
    soak.add_argument("--store", type=str, default="",
                      help="result-store root to cache per-spec verdicts in")

    from repro.campaign.cli import add_campaign_parser
    from repro.obs.cli import add_trace_parser
    from repro.rt.cli import add_rt_parser
    from repro.serve.cli import add_serve_parser

    add_campaign_parser(sub)
    add_trace_parser(sub)
    add_rt_parser(sub)
    add_serve_parser(sub)

    bench = sub.add_parser(
        "bench", help="run hot-path benchmarks; write BENCH_hotpaths.json"
    )
    bench.add_argument("--quick", action="store_true",
                       help="small sizes for CI smoke runs")
    bench.add_argument("--output", type=str, default="",
                       help="output path (default: <repo root>/BENCH_hotpaths.json)")

    args = parser.parse_args(argv)

    def _cmd_campaign(namespace: argparse.Namespace) -> int:
        from repro.campaign.cli import cmd_campaign

        return cmd_campaign(namespace)

    def _cmd_bench(namespace: argparse.Namespace) -> int:
        from repro.campaign.cli import cmd_bench

        return cmd_bench(namespace)

    def _cmd_trace(namespace: argparse.Namespace) -> int:
        from repro.obs.cli import cmd_trace

        return cmd_trace(namespace)

    def _cmd_rt(namespace: argparse.Namespace) -> int:
        from repro.rt.cli import cmd_rt

        return cmd_rt(namespace)

    def _cmd_serve(namespace: argparse.Namespace) -> int:
        from repro.serve.cli import cmd_serve

        return cmd_serve(namespace)

    handlers = {
        "figures": _cmd_figures,
        "claims": _cmd_claims,
        "validate": _cmd_validate,
        "scenario": _cmd_scenario,
        "reachability": _cmd_reachability,
        "soak": _cmd_soak,
        "campaign": _cmd_campaign,
        "bench": _cmd_bench,
        "trace": _cmd_trace,
        "rt": _cmd_rt,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except KeyboardInterrupt:
        # Durable state (journals, store objects) is flushed as it is
        # produced; acknowledge the signal with the conventional code.
        print("interrupted")
        return 130


if __name__ == "__main__":
    sys.exit(main())
