"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch library failures with one handler without swallowing
unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


class ConfigurationError(ReproError):
    """A configuration object or parameter is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or otherwise illegally."""


class MediumError(SimulationError):
    """A radio-medium operation was invalid (unknown node, bad range...)."""


class NodeStateError(SimulationError):
    """An operation was attempted on a node in an incompatible state."""


class TopologyError(ReproError):
    """A topology/placement request cannot be satisfied."""


class ClusteringError(ReproError):
    """Cluster formation failed or produced an inconsistent structure."""


class ProtocolError(ReproError):
    """An FDS protocol invariant was violated at runtime."""


class AnalysisError(ReproError):
    """A probabilistic-analysis computation received invalid inputs."""


class ExperimentError(ReproError):
    """An experiment harness run was misconfigured or failed."""
