"""Decomposable aggregates (TAG-style: min / max / sum / count / avg).

An :class:`Aggregate` is a partial state record that merges associatively
and commutatively, so cluster-level partials combine in any order along
the backbone -- the "streaming aggregates" style the paper cites (Madden
et al. [12]).  Duplicate-sensitivity is handled by tracking contributor
sets: merging the same cluster's partial twice is a no-op, which matters
because the backbone floods partials redundantly for loss tolerance.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import FrozenSet, Mapping

from repro.errors import ConfigurationError
from repro.types import NodeId


class AggregateKind(enum.Enum):
    """The decomposable aggregate functions supported."""

    MIN = "min"
    MAX = "max"
    SUM = "sum"
    COUNT = "count"
    AVG = "avg"


@dataclass(frozen=True)
class Aggregate:
    """A partial aggregate over a set of contributing nodes.

    ``contributors`` makes merging idempotent: partials whose contributor
    sets overlap are merged via their per-node values, never by naive
    recombination, so redundant delivery cannot double-count.
    """

    kind: AggregateKind
    #: Per-contributor raw measurements.  Kept exact because cluster
    #: populations are small (tens of nodes); a production system would
    #: switch to synopses above a size threshold.
    values: Mapping[NodeId, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))

    @property
    def contributors(self) -> FrozenSet[NodeId]:
        return frozenset(self.values)

    def merge(self, other: "Aggregate") -> "Aggregate":
        """Combine two partials (associative, commutative, idempotent)."""
        if other.kind is not self.kind:
            raise ConfigurationError(
                f"cannot merge {other.kind} into {self.kind}"
            )
        merged = dict(self.values)
        merged.update(other.values)
        return Aggregate(kind=self.kind, values=merged)

    def without(self, excluded: FrozenSet[NodeId]) -> "Aggregate":
        """The partial with some contributors dropped (failed nodes)."""
        return Aggregate(
            kind=self.kind,
            values={n: v for n, v in self.values.items() if n not in excluded},
        )

    def result(self) -> float:
        """The aggregate's current value (NaN for an empty MIN/MAX/AVG)."""
        if not self.values:
            return 0.0 if self.kind in (AggregateKind.SUM, AggregateKind.COUNT) else math.nan
        data = list(self.values.values())
        if self.kind is AggregateKind.MIN:
            return min(data)
        if self.kind is AggregateKind.MAX:
            return max(data)
        if self.kind is AggregateKind.SUM:
            return float(sum(data))
        if self.kind is AggregateKind.COUNT:
            return float(len(data))
        return float(sum(data) / len(data))

    @staticmethod
    def single(kind: AggregateKind, node: NodeId, value: float) -> "Aggregate":
        """The partial contributed by one node."""
        return Aggregate(kind=kind, values={node: value})

    @staticmethod
    def empty(kind: AggregateKind) -> "Aggregate":
        return Aggregate(kind=kind, values={})
