"""The aggregation service riding on the FDS (Section 6 message sharing).

Per FDS execution:

1. every node's measurement rides its R-1 heartbeat (zero extra messages);
2. the CH folds received measurements into the cluster partial, drops
   contributors the FDS knows failed, merges any foreign partials learned
   since, and rides the merged partial on its R-3 update;
3. gateways overhear the *peer* CH's update (promiscuous receiving, same
   lens that makes them gateways) and hand the foreign partial to their
   own CH with one :class:`AggregateShare` per boundary per execution --
   the only messages the aggregation layer adds.

Partials are idempotent under merge (per-contributor values), so the
redundant delivery that makes the backbone loss-tolerant cannot
double-count.  Every CH's global view converges to the field-wide
aggregate within (cluster-graph diameter) executions; members read the
global value from their CH's update.

The anticipated accuracy benefit the paper mentions also falls out: the
aggregate excludes exactly the nodes the FDS has detected, so a query
never counts a dead sensor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.aggregation.combiners import Aggregate, AggregateKind
from repro.errors import ConfigurationError
from repro.fds.messages import Heartbeat, HealthStatusUpdate
from repro.fds.service import FdsDeployment, FdsProtocol
from repro.sim.medium import Envelope
from repro.sim.node import Protocol
from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class AggregateShare:
    """A gateway hands an overheard foreign partial to its own CH."""

    sender: NodeId
    target_head: NodeId
    aggregate: Aggregate


@dataclass(frozen=True)
class AggregationConfig:
    """Aggregation tuning."""

    kind: AggregateKind = AggregateKind.AVG


#: A node's measurement source: called at heartbeat time.
MeasurementFn = Callable[[NodeId, int], float]


class AggregationService(Protocol):
    """Per-node aggregation state, hooked into the node's FdsProtocol."""

    name = "aggregation"

    def __init__(
        self,
        config: AggregationConfig,
        fds: FdsProtocol,
        measure: MeasurementFn,
    ) -> None:
        super().__init__()
        self.config = config
        self.fds = fds
        self.measure = measure
        #: CH state: the merged view (own cluster + learned partials).
        self.partial = Aggregate.empty(config.kind)
        #: The last global aggregate seen (members: from the CH's update).
        self.last_seen = Aggregate.empty(config.kind)
        #: GW state: foreign partials to hand to the own CH, per peer head.
        self._foreign_inbox: Dict[NodeId, Aggregate] = {}
        self.shares_sent = 0
        # Hook into the FDS message-sharing slots.
        fds.heartbeat_payload_provider = self._provide_measurement
        fds.update_payload_provider = self._provide_partial
        fds.heartbeat_consumer = self._on_heartbeat_payload
        fds.update_consumer = self._on_update_payload

    # -- send-side hooks --------------------------------------------------
    def _provide_measurement(self, execution: int) -> float:
        assert self.node is not None
        value = float(self.measure(self.node.node_id, execution))
        # Contribute our own value locally too (heads do not hear their
        # own heartbeats).
        if self.fds.is_head:
            self.partial = self.partial.merge(
                Aggregate.single(self.config.kind, self.node.node_id, value)
            )
        return value

    def _provide_partial(self, execution: int) -> Optional[Aggregate]:
        if not self.fds.is_head:
            return None
        # Fold in anything gateways handed us, drop failed contributors.
        for aggregate in self._foreign_inbox.values():
            self.partial = self.partial.merge(aggregate)
        self._foreign_inbox.clear()
        self.partial = self.partial.without(self.fds.history.known)
        self.last_seen = self.partial
        return self.partial

    # -- receive-side hooks ------------------------------------------------
    def _on_heartbeat_payload(self, heartbeat: Heartbeat) -> None:
        if not self.fds.is_head:
            return
        if not isinstance(heartbeat.piggyback, (int, float)):
            return
        self.partial = self.partial.merge(
            Aggregate.single(
                self.config.kind, heartbeat.sender, float(heartbeat.piggyback)
            )
        )

    def _on_update_payload(self, update: HealthStatusUpdate) -> None:
        assert self.node is not None
        aggregate = update.piggyback
        if not isinstance(aggregate, Aggregate):
            return
        if update.head == self.fds.head:
            # Our own CH's merged view: the value members report.  A
            # primary gateway also pushes it outward so partials flow in
            # both directions across every boundary.
            self.last_seen = aggregate
            if self.fds.inter is not None:
                for peer, (rank, _backups) in sorted(
                    self.fds.inter.duties.items()
                ):
                    if rank == 0:
                        self.shares_sent += 1
                        self.node.send(
                            AggregateShare(
                                sender=self.node.node_id,
                                target_head=peer,
                                aggregate=aggregate,
                            ),
                            recipient=peer,
                        )
            return
        # A foreign CH's partial, overheard across the boundary lens.
        if self.fds.inter is not None and update.head in self.fds.inter.duties:
            self._foreign_inbox[update.head] = aggregate
            self.shares_sent += 1
            self.node.send(
                AggregateShare(
                    sender=self.node.node_id,
                    target_head=self.fds.head,
                    aggregate=aggregate,
                ),
                recipient=self.fds.head,
            )

    # -- radio --------------------------------------------------------------
    def on_receive(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, AggregateShare):
            assert self.node is not None
            if payload.target_head == self.node.node_id and self.fds.is_head:
                self._foreign_inbox[payload.sender] = (
                    self._foreign_inbox.get(
                        payload.sender, Aggregate.empty(self.config.kind)
                    ).merge(payload.aggregate)
                )

    def current_value(self) -> float:
        """The node's current view of the field-wide aggregate."""
        return self.last_seen.result()

    def contributor_count(self) -> int:
        return len(self.last_seen.contributors)


def attach_aggregation(
    deployment: FdsDeployment,
    measure: MeasurementFn,
    config: Optional[AggregationConfig] = None,
) -> Dict[NodeId, AggregationService]:
    """Attach an :class:`AggregationService` to every node of an FDS.

    Must be called before the deployment's executions are scheduled (the
    hooks are read at heartbeat/update send time).
    """
    cfg = config if config is not None else AggregationConfig()
    services: Dict[NodeId, AggregationService] = {}
    for node_id, protocol in sorted(deployment.protocols.items()):
        node = deployment.network.nodes[node_id]
        if protocol.node is None:
            raise ConfigurationError(
                f"FDS protocol on node {node_id} is not attached"
            )
        service = AggregationService(cfg, protocol, measure)
        node.add_protocol(service)
        services[node_id] = service
    return services
