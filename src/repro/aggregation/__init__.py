"""Cluster-based in-network aggregation (the paper's Section 6 outlook).

The concluding remarks propose that "a cluster-based FDS may become an
integral part of application-level host coordination activities":
aggregation queries (average / maximum / minimum of sensor measurements)
can share the cluster architecture and even the FDS's own messages, with
two anticipated benefits -- energy efficiency from message sharing, and
better failure detection accuracy from sharing reliable-aggregation
machinery.

This package implements that proposal:

- :class:`~repro.aggregation.service.AggregationService` piggybacks each
  node's current measurement on its FDS heartbeat (message sharing: zero
  extra transmissions for the intra-cluster phase);
- clusterheads fold member measurements into a partial
  :class:`~repro.aggregation.combiners.Aggregate` and piggyback it on
  their R-3 health-status updates, where gateways overhear and forward it
  along the same backbone the failure reports use;
- failed members are excluded from the aggregate the moment the FDS
  detects them, so the query layer inherits the FDS's view of liveness.
"""

from repro.aggregation.combiners import Aggregate, AggregateKind
from repro.aggregation.service import (
    AggregationConfig,
    AggregationService,
    attach_aggregation,
)

__all__ = [
    "Aggregate",
    "AggregateKind",
    "AggregationService",
    "AggregationConfig",
    "attach_aggregation",
]
