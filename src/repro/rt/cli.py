"""CLI for the real-network runtime: ``repro rt run`` and ``repro rt diff``.

``run`` executes one N-node scenario over localhost UDP sockets with
wall-clock timers and crash injection, optionally spooling per-node
JSONL event logs and merging them into a single trace that the existing
``repro trace`` analyzers consume unchanged.  ``diff`` is the
``differential:realnet`` harness: seeded specs run under both the
discrete-event simulator and the UDP runtime, and the structural /
oracle / latency-anchor comparison of :mod:`repro.audit.realnet` must
come back clean; any divergence prints a ready-to-paste seeded repro.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.util.tables import render_table


def add_rt_parser(sub) -> None:
    """Register the ``rt`` subcommand on the root subparsers."""
    rt = sub.add_parser(
        "rt", help="real-network runtime (asyncio UDP on localhost)"
    )
    rt_sub = rt.add_subparsers(dest="rt_command", required=True)

    run = rt_sub.add_parser(
        "run", help="run a scenario over real UDP sockets"
    )
    run.add_argument("--clusters", type=int, default=2)
    run.add_argument("--members", type=int, default=10)
    run.add_argument("--crashes", type=int, default=1)
    run.add_argument("--executions", type=int, default=3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--loss-kind", dest="loss_kind", default="perfect",
                     choices=("perfect", "bernoulli", "bounded", "gilbert"),
                     help="socket-layer loss model (mirrors the simulator)")
    run.add_argument("--loss-p", dest="loss_p", type=float, default=0.1)
    run.add_argument("--time-scale", dest="time_scale", type=float,
                     default=0.05,
                     help="wall seconds per spec second (phi=8 spec seconds "
                          "-> 0.4 wall seconds at the default 0.05)")
    run.add_argument("--spool-dir", dest="spool_dir", type=str, default="",
                     help="write per-node JSONL spools here and merge them "
                          "(analyze with 'repro trace <dir>/merged.jsonl')")

    diff = rt_sub.add_parser(
        "diff", help="sim-vs-real differential conformance (realnet)"
    )
    diff.add_argument("--specs", type=int, default=5,
                      help="number of seeded specs to check")
    diff.add_argument("--seed", type=int, default=0)
    diff.add_argument("--time-scale", dest="time_scale", type=float,
                      default=0.05)
    diff.add_argument("--tolerance", type=float, default=None,
                      help="latency-anchor tolerance band in phi units")
    diff.add_argument("--out", type=str, default="",
                      help="directory for seeded repro .py files on "
                           "divergence")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.rt.runtime import RtScenario, run_rt_scenario

    scenario = RtScenario(
        seed=args.seed,
        cluster_count=args.clusters,
        members_per_cluster=args.members,
        crash_count=args.crashes,
        executions=args.executions,
        loss_kind=args.loss_kind,
        loss_p=args.loss_p,
        time_scale=args.time_scale,
    )
    spool_dir = Path(args.spool_dir) if args.spool_dir else None
    result = run_rt_scenario(scenario, spool_dir=spool_dir)
    for key, value in result.summary().items():
        print(f"  {key:26s} {value:.6g}")
    if result.crash_times:
        phi = result.config.phi
        rows = []
        for nid in sorted(result.crash_times):
            latency = result.detection_latencies.get(nid)
            rows.append([
                int(nid),
                f"{result.crash_times[nid]:.3f}",
                "-" if latency is None else f"{latency:.3f}",
                "-" if latency is None else f"{latency / phi:.3f}",
            ])
        print(render_table(
            ["node", "crashed_at (s)", "latency (s)", "latency (phi)"],
            rows, title=f"Detection latency, phi={phi:g} wall seconds",
        ))
    if result.merged_spool is not None:
        print(f"  spools merged to {result.merged_spool} "
              f"(analyze with 'repro trace')")
    ok = (
        result.properties.is_accurate
        and result.codec_errors == 0
    )
    return 0 if ok else 1


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.audit.realnet import (
        DEFAULT_TOLERANCE_PHI,
        realnet_repro_snippet,
        run_realnet_suite,
    )

    tolerance = (
        DEFAULT_TOLERANCE_PHI if args.tolerance is None else args.tolerance
    )
    result = run_realnet_suite(
        args.specs,
        seed=args.seed,
        time_scale=args.time_scale,
        tolerance_phi=tolerance,
        log=print,
    )
    out_dir = Path(args.out) if args.out else None
    for index, verdict in enumerate(result.failures):
        snippet = realnet_repro_snippet(verdict.spec, verdict.violations)
        print(f"--- realnet repro (seed {verdict.spec.seed}) ---")
        print(snippet)
        if out_dir is not None:
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"repro_realnet_{verdict.spec.seed}.py"
            path.write_text(snippet, encoding="utf-8")
            print(f"written to {path}")
    status = "clean" if result.clean else (
        f"{len(result.failures)} divergent spec(s)"
    )
    print(f"realnet: {len(result.verdicts)} spec(s), {status}")
    return 0 if result.clean else 1


def cmd_rt(args: argparse.Namespace) -> int:
    if args.rt_command == "run":
        return _cmd_run(args)
    return _cmd_diff(args)
