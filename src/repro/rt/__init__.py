"""Real-network execution substrate: the FDS over asyncio UDP sockets.

The discrete-event simulator exercises the protocol under a *modeled*
radio; this package runs the very same :class:`~repro.fds.service.FdsProtocol`
objects as asyncio tasks bound to real localhost UDP sockets, with
wall-clock timers and a deterministic wire codec.  Both hosts implement
the :class:`~repro.fds.substrate.Substrate` surface, so a simulated and a
real run of the same seeded spec are differentially comparable
(:mod:`repro.audit.realnet`).

Modules
-------
``codec``
    Length-prefixed canonical-JSON wire format for every
    :mod:`repro.fds.messages` type; decoding raises a typed
    :class:`~repro.rt.codec.CodecError`, never crashes the loop.
``substrate``
    :class:`~repro.rt.substrate.RtNode` and asyncio-backed timers -- the
    runtime's implementation of the substrate surface.
``runtime``
    The scenario runtime: socket binding, broadcast emulation with
    seeded drop/delay, protocol installation, run orchestration.
``faults``
    Stream-identical faultload derivation and wall-clock crash injection
    (task killing).
``collector``
    Per-node spool merging into one analyzable trace.
``cli``
    ``repro rt run`` and ``repro rt diff``.
"""

from repro.rt.codec import CodecError, decode_frame, encode_frame

__all__ = ["CodecError", "decode_frame", "encode_frame"]
