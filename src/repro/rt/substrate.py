"""The runtime's implementation of the FDS substrate surface.

:class:`RtNode` is to the asyncio runtime what
:class:`~repro.sim.node.SimNode` is to the discrete-event simulator: a
fail-stop host that owns a timer service and a protocol stack.  The
clock is the wall clock (seconds since the run epoch), timers are
``loop.call_later`` callbacks, and a send fans out through the runtime's
UDP link layer.  Fail-stop semantics mirror the simulator exactly: a
crashed node stops sending, stops receiving, and every outstanding timer
is disarmed in one call.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional

from repro.errors import NodeStateError, SchedulingError
from repro.sim.medium import Envelope
from repro.sim.node import Protocol
from repro.types import NodeId, NodeStatus
from repro.util.geometry import Vec2


class RtTimer:
    """A one-shot, restartable timeout backed by ``loop.call_later``."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        callback,
        label: str = "",
    ) -> None:
        self._loop = loop
        self._callback = callback
        self._label = label
        self._handle: Optional[asyncio.TimerHandle] = None
        self._fired_count = 0

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._handle is not None

    @property
    def fired_count(self) -> int:
        return self._fired_count

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` wall-seconds from now."""
        if delay < 0:
            raise SchedulingError(f"timer delay must be >= 0, got {delay}")
        self.stop()
        self._handle = self._loop.call_later(delay, self._expire)

    def stop(self) -> None:
        """Disarm without firing; idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _expire(self) -> None:
        self._handle = None
        self._fired_count += 1
        self._callback()


class RtTimerService:
    """A factory that tracks every timer it creates (crash = stop_all)."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._timers: List[RtTimer] = []

    def create(self, callback, label: str = "") -> RtTimer:
        timer = RtTimer(self._loop, callback, label=label)
        self._timers.append(timer)
        return timer

    def after(self, delay: float, callback, label: str = "") -> RtTimer:
        timer = self.create(callback, label=label)
        timer.start(delay)
        return timer

    def stop_all(self) -> None:
        for timer in self._timers:
            timer.stop()

    @property
    def armed_count(self) -> int:
        return sum(1 for t in self._timers if t.armed)


class RtNode:
    """A real host: one UDP socket, wall-clock timers, a protocol stack.

    The runtime wires ``_link`` (its transmit fan-out), ``_clock`` (wall
    seconds since the run epoch), ``_tracer`` (this node's spool) and
    ``_profiler`` before any protocol attaches; the node itself only
    enforces fail-stop semantics and dispatches deliveries.
    """

    def __init__(
        self,
        node_id: NodeId,
        position: Vec2,
        loop: asyncio.AbstractEventLoop,
        link,
        clock,
        tracer,
        profiler,
    ) -> None:
        self.node_id = node_id
        self.position = position
        self.status = NodeStatus.ALIVE
        self.timers = RtTimerService(loop)
        self.protocols: List[Protocol] = []
        self.sent_count = 0
        self.received_count = 0
        self._link = link
        self._clock = clock
        self._tracer = tracer
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Protocol stack (mirrors SimNode)
    # ------------------------------------------------------------------
    def add_protocol(self, protocol: Protocol) -> None:
        protocol.attach(self)
        self.protocols.append(protocol)

    def get_protocol(self, protocol_type: type) -> Protocol:
        for protocol in self.protocols:
            if isinstance(protocol, protocol_type):
                return protocol
        raise NodeStateError(
            f"node {self.node_id} has no protocol of type {protocol_type.__name__}"
        )

    # ------------------------------------------------------------------
    # Substrate surface (see :mod:`repro.fds.substrate`)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall-clock seconds since the run epoch."""
        return self._clock()

    @property
    def tracer(self):
        return self._tracer

    @property
    def profiler(self):
        return self._profiler

    def send(self, payload: object, recipient: Optional[NodeId] = None) -> int:
        """Transmit over UDP (``recipient=None`` emulates a broadcast).

        A crashed node silently sends nothing (fail-stop), returning 0.
        """
        if self.status is not NodeStatus.ALIVE:
            return 0
        self.sent_count += 1
        return self._link.transmit(self.node_id, payload, recipient)

    # ------------------------------------------------------------------
    # Delivery and failure injection
    # ------------------------------------------------------------------
    def deliver(self, envelope: Envelope) -> None:
        """Hand one decoded datagram to the protocol stack."""
        if self.status is not NodeStatus.ALIVE:
            return
        self.received_count += 1
        for protocol in self.protocols:
            protocol.on_receive(envelope)

    def crash(self) -> None:
        """Fail-stop: fall permanently silent (same contract as SimNode)."""
        if self.status is NodeStatus.CRASHED:
            raise NodeStateError(f"node {self.node_id} is already crashed")
        self.status = NodeStatus.CRASHED
        if self._tracer.enabled:
            self._tracer.record(self.now, "sim.crash", node=int(self.node_id))
        self.timers.stop_all()
        for protocol in self.protocols:
            protocol.on_crash()

    @property
    def is_operational(self) -> bool:
        """Ground truth liveness (metrics only)."""
        return self.status is NodeStatus.ALIVE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RtNode {self.node_id} {self.status.value}>"
