"""The asyncio-UDP scenario runtime.

:func:`run_rt_scenario` is the runtime twin of
:func:`repro.experiments.runner.run_scenario`: it builds the same seeded
field and cluster layout from the same named RNG streams, installs the
same :class:`~repro.fds.service.FdsProtocol` objects -- but each node is
an :class:`~repro.rt.substrate.RtNode` hosted by an asyncio task and
bound to its own localhost UDP socket, timers are wall-clock
``call_later`` callbacks, and every message crosses a real socket as a
length-prefixed JSON frame (:mod:`repro.rt.codec`).

**Clock model.**  Protocol timing constants are *pre-scaled*: the wall
:class:`~repro.fds.config.FdsConfig` carries ``phi * time_scale`` and
``thop * time_scale`` seconds, and every trace timestamp is wall seconds
since the run epoch.  Because the trace's ``meta.scenario`` record
carries the *same* scaled phi/thop, all phi-unit analysis (``repro
trace latency``, the audit oracles) works unchanged; the meta record
additionally carries ``timebase="wall_ms"`` so displays label latencies
in milliseconds instead of phi units.

**Broadcast emulation.**  The unit-disk radio has no UDP analogue, so a
send fans out as one unicast datagram per in-range neighbor (computed
from the same seeded placement the simulator uses), each copy subject to
a seeded drop draw (the spec's loss model, private stream) and a uniform
``(0, max_delay]`` artificial delay -- mirroring
:class:`~repro.sim.medium.RadioMedium` semantics at the socket layer.

**Crash injection.**  The faultload (stream-identical to the
simulator's, see :mod:`repro.rt.faults`) kills each victim at its
wall-scaled crash time: the node fail-stops, its supervisor task is
cancelled, and its socket closes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.cluster.geometric import build_clusters
from repro.cluster.state import ClusterLayout
from repro.errors import ConfigurationError
from repro.failure.faultload import Faultload
from repro.fds.config import FdsConfig
from repro.fds.service import FdsProtocol
from repro.metrics.properties import PropertyReport, evaluate_properties
from repro.obs.analyze import META_KIND
from repro.obs.profiler import NULL_PROFILER
from repro.obs.spool import SpoolingTracer
from repro.rt.codec import CodecError, decode_frame, encode_frame
from repro.rt.collector import merge_spools
from repro.rt.faults import CrashDriver, derive_faultload
from repro.rt.substrate import RtNode
from repro.sim.loss import build_loss_model
from repro.sim.medium import Envelope, draw_delays
from repro.sim.trace import RecordingTracer, Tracer
from repro.topology.generators import multi_cluster_field
from repro.topology.graph import UnitDiskGraph
from repro.types import NodeId
from repro.util.rng import RngFactory

#: Trace kind emitted when an undecodable datagram is dropped.
CODEC_ERROR_KIND = "rt.codec_error"

#: The meta.scenario timebase stamp of runtime traces (wall-clock run;
#: latency displays should use milliseconds).  Simulator traces omit the
#: field and default to ``"phi"``.
WALL_TIMEBASE = "wall_ms"


@dataclass(frozen=True)
class RtScenario:
    """A seeded runtime scenario (field-compatible with
    :class:`repro.audit.differential.ScenarioSpec`, plus wall knobs).

    ``phi``/``thop`` are in *spec* (simulated) seconds; the runtime
    multiplies them by ``time_scale`` to get wall seconds, so one spec
    describes both the simulated and the real run of a differential
    pair.
    """

    seed: int = 0
    cluster_count: int = 2
    members_per_cluster: int = 8
    crash_count: int = 1
    executions: int = 3
    loss_kind: str = "perfect"
    loss_p: float = 0.1
    loss_budget: int = 2
    spacing_factor: float = 1.25
    max_backups: int = 2
    phi: float = 8.0
    thop: float = 0.5
    #: Wall seconds per spec second.  The default maps ``thop=0.5`` to a
    #: 25 ms round -- wide enough that asyncio timer jitter and socket
    #: latency stay well inside the round budget on a loaded CI host.
    time_scale: float = 0.05
    #: Wall seconds between the run epoch (socket binding) and the first
    #: FDS execution.
    warmup: float = 0.25
    transmission_range: float = 100.0

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise ConfigurationError(
                f"time_scale must be positive, got {self.time_scale}"
            )
        if self.warmup < 0:
            raise ConfigurationError(
                f"warmup must be >= 0, got {self.warmup}"
            )

    @classmethod
    def from_spec(cls, spec, **overrides) -> "RtScenario":
        """Adopt a differential :class:`ScenarioSpec`-shaped object."""
        kwargs = {
            name: getattr(spec, name)
            for name in (
                "seed",
                "cluster_count",
                "members_per_cluster",
                "crash_count",
                "executions",
                "loss_kind",
                "loss_p",
                "loss_budget",
                "spacing_factor",
                "max_backups",
                "phi",
                "thop",
            )
        }
        kwargs.update(overrides)
        return cls(**kwargs)

    def wall_config(self) -> FdsConfig:
        """The protocol config in wall seconds (all timing knobs scaled
        uniformly, so relative protocol timing is preserved exactly)."""
        spec_config = FdsConfig(phi=self.phi, thop=self.thop)
        return replace(
            spec_config,
            phi=spec_config.phi * self.time_scale,
            thop=spec_config.thop * self.time_scale,
            wait_slot=spec_config.wait_slot * self.time_scale,
        )

    def loss_params(self) -> Tuple[Tuple[str, float], ...]:
        if self.loss_kind == "bounded":
            return (("p", self.loss_p), ("budget", float(self.loss_budget)))
        if self.loss_kind == "bernoulli":
            return (("p", self.loss_p),)
        if self.loss_kind == "gilbert":
            return (
                ("p_good", 0.02),
                ("p_bad", 0.8),
                ("p_gb", self.loss_p / 5.0),
                ("p_bg", 0.3),
            )
        return ()


class _RtNetworkView:
    """Ground-truth liveness over the runtime's nodes (metrics only)."""

    def __init__(self, nodes: Dict[NodeId, RtNode]) -> None:
        self.nodes = nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def operational_ids(self) -> Tuple[NodeId, ...]:
        return tuple(
            sorted(nid for nid, n in self.nodes.items() if n.is_operational)
        )

    def crashed_ids(self) -> Tuple[NodeId, ...]:
        return tuple(
            sorted(nid for nid, n in self.nodes.items() if not n.is_operational)
        )


@dataclass
class _RtDeploymentView:
    """Duck-typed :class:`~repro.fds.service.FdsDeployment` for the
    property oracles (:func:`~repro.metrics.properties.evaluate_properties`)."""

    network: _RtNetworkView
    layout: ClusterLayout
    protocols: Dict[NodeId, FdsProtocol]


@dataclass
class RtResult:
    """Everything one runtime run produced."""

    scenario: RtScenario
    layout: ClusterLayout
    protocols: Dict[NodeId, FdsProtocol]
    nodes: Dict[NodeId, RtNode]
    config: FdsConfig
    fds_start: float
    faultload: Faultload
    crash_times: Dict[NodeId, float]
    tracer: Optional[Tracer]
    spool_dir: Optional[Path]
    merged_spool: Optional[Path]
    codec_errors: int = 0
    properties: PropertyReport = field(init=False)

    def __post_init__(self) -> None:
        self.properties = evaluate_properties(
            _RtDeploymentView(
                network=_RtNetworkView(self.nodes),
                layout=self.layout,
                protocols=self.protocols,
            )
        )

    def _iter_detections(self):
        """Detection records from the in-memory tracer, or (for spooled
        runs) re-read from the merged spool on disk."""
        iter_kind = getattr(self.tracer, "iter_kind", None)
        if iter_kind is not None:
            yield from iter_kind("fds.detection")
            return
        if self.merged_spool is not None:
            from repro.obs.spool import iter_spool

            for record in iter_spool(self.merged_spool):
                if record.kind == "fds.detection":
                    yield record

    @property
    def detection_latencies(self) -> Dict[NodeId, Optional[float]]:
        """Crash-to-first-detection wall seconds per crashed node."""
        first: Dict[NodeId, float] = {}
        for record in self._iter_detections():
            target = NodeId(int(record.detail["target"]))
            if target not in first or record.time < first[target]:
                first[target] = record.time
        return {
            nid: (first[nid] - t if nid in first else None)
            for nid, t in self.crash_times.items()
        }

    def summary(self) -> Dict[str, float]:
        latencies = [
            v for v in self.detection_latencies.values() if v is not None
        ]
        sent = sum(n.sent_count for n in self.nodes.values())
        received = sum(n.received_count for n in self.nodes.values())
        return {
            "nodes": float(len(self.nodes)),
            "clusters": float(len(self.layout.clusters)),
            "crashes": float(len(self.faultload)),
            "mean_completeness": self.properties.mean_completeness,
            "accuracy_violations": float(
                len(self.properties.accuracy_violations)
            ),
            "transmissions": float(sent),
            "deliveries": float(received),
            "codec_errors": float(self.codec_errors),
            "mean_detection_latency": (
                float(sum(latencies) / len(latencies)) if latencies else 0.0
            ),
        }


class _NodeDatagramProtocol(asyncio.DatagramProtocol):
    """One node's socket: decode, trace, deliver -- and never die."""

    def __init__(self, runtime: "RtRuntime", node: RtNode) -> None:
        self._runtime = runtime
        self._node = node

    def datagram_received(self, data: bytes, addr) -> None:
        runtime = self._runtime
        node = self._node
        now = runtime.now
        try:
            frame = decode_frame(data)
        except CodecError as exc:
            runtime.codec_errors += 1
            if node.tracer.enabled:
                node.tracer.record(
                    now,
                    CODEC_ERROR_KIND,
                    node=int(node.node_id),
                    error=str(exc),
                )
            return
        envelope = Envelope(
            sender=frame.sender,
            recipient=frame.recipient,
            payload=frame.payload,
            sent_at=frame.sent_at,
            received_at=now,
            overheard=(
                frame.recipient is not None
                and frame.recipient != node.node_id
            ),
        )
        if node.is_operational and node.tracer.enabled:
            node.tracer.record(
                now,
                "radio.rx",
                node=int(node.node_id),
                sender=int(frame.sender),
                overheard=envelope.overheard,
                latency=now - frame.sent_at,
            )
        node.deliver(envelope)

    def error_received(self, exc) -> None:  # pragma: no cover - platform
        # ICMP errors from a crashed peer's closed port are expected noise.
        pass


class RtRuntime:
    """One scenario's worth of UDP nodes on the running event loop.

    Build it, then ``await run()`` (or use :func:`run_rt_scenario` from
    synchronous code).  ``spool_dir`` switches tracing from one shared
    in-memory tracer to per-node JSONL spools in the existing spool
    format, merged at shutdown for ``repro trace``.
    """

    def __init__(
        self,
        scenario: RtScenario,
        tracer: Optional[Tracer] = None,
        spool_dir: Optional[Path] = None,
    ) -> None:
        self.scenario = scenario
        self.config = scenario.wall_config()
        rngs = RngFactory(scenario.seed)
        self.positions = multi_cluster_field(
            cluster_count=scenario.cluster_count,
            members_per_cluster=scenario.members_per_cluster,
            radius=scenario.transmission_range,
            rng=rngs.stream("placement"),
            spacing_factor=scenario.spacing_factor,
        )
        self.graph = UnitDiskGraph(
            self.positions, radius=scenario.transmission_range
        )
        self.layout = build_clusters(
            self.graph, max_backups=scenario.max_backups
        )
        self._faultload_rng = rngs.stream("faultload")
        # Loss and delay draws are runtime-private streams: the
        # differential never compares per-copy outcomes, only
        # loss-independent anchors (same policy as the array engine).
        self.loss_model = build_loss_model(
            scenario.loss_kind,
            scenario.loss_params(),
            loss_probability=scenario.loss_p,
            transmission_range=scenario.transmission_range,
        )
        self._loss_rng = rngs.stream("rt", "loss")
        self._delay_rng = rngs.stream("rt", "delay")
        #: Artificial per-copy delay bound; same 0.2 * thop proportion as
        #: the simulator's default (max_delay=0.1 against thop=0.5).
        self.max_delay = 0.2 * self.config.thop

        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        if self.spool_dir is not None:
            self.spool_dir.mkdir(parents=True, exist_ok=True)
            self._shared_tracer: Optional[Tracer] = None
            self._run_tracer: Tracer = SpoolingTracer(
                self.spool_dir / "run.jsonl", flush_every=64
            )
        else:
            self._shared_tracer = tracer if tracer is not None else RecordingTracer()
            self._run_tracer = self._shared_tracer
        self._node_spools: Dict[NodeId, SpoolingTracer] = {}

        self.nodes: Dict[NodeId, RtNode] = {}
        self.protocols: Dict[NodeId, FdsProtocol] = {}
        self._transports: Dict[NodeId, asyncio.DatagramTransport] = {}
        self._addrs: Dict[NodeId, tuple] = {}
        self._tasks: Dict[NodeId, asyncio.Task] = {}
        self._stop = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._epoch = 0.0
        self.codec_errors = 0
        self.fds_start = 0.0
        self.faultload: Optional[Faultload] = None

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall seconds since the run epoch (the substrate clock)."""
        assert self._loop is not None
        return self._loop.time() - self._epoch

    def _node_tracer(self, node_id: NodeId) -> Tracer:
        if self.spool_dir is None:
            assert self._shared_tracer is not None
            return self._shared_tracer
        spool = SpoolingTracer(
            self.spool_dir / f"node-{int(node_id):05d}.jsonl", flush_every=64
        )
        self._node_spools[node_id] = spool
        return spool

    # ------------------------------------------------------------------
    # Link layer (broadcast emulation over unicast UDP)
    # ------------------------------------------------------------------
    def transmit(
        self, sender: NodeId, payload: object, recipient: Optional[NodeId]
    ) -> int:
        """Fan ``payload`` out to every in-range neighbor of ``sender``."""
        now = self.now
        frame = encode_frame(sender, recipient, now, payload)
        tracer = self.nodes[sender].tracer
        if tracer.enabled:
            tracer.record(
                now,
                "radio.tx",
                node=int(sender),
                recipient=None if recipient is None else int(recipient),
            )
        assert self._loop is not None
        sent = 0
        for neighbor in self.graph.neighbors(sender):
            distance = self.graph.distance(sender, neighbor)
            if self.loss_model.is_lost(
                sender, neighbor, distance, now, self._loss_rng
            ):
                if tracer.enabled:
                    tracer.record(
                        now,
                        "radio.loss",
                        node=int(neighbor),
                        sender=int(sender),
                    )
                continue
            delay = float(draw_delays(self._delay_rng, self.max_delay, 1)[0])
            self._loop.call_later(
                delay, self._sendto, sender, frame, neighbor
            )
            sent += 1
        return sent

    def _sendto(self, sender: NodeId, frame: bytes, neighbor: NodeId) -> None:
        transport = self._transports.get(sender)
        if transport is None or transport.is_closing():
            return  # the sender crashed while the copy was in flight
        addr = self._addrs.get(neighbor)
        if addr is not None:
            transport.sendto(frame, addr)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash_node(self, node_id: NodeId) -> None:
        """Fail-stop one node: mute it, kill its task, close its socket."""
        node = self.nodes[node_id]
        if not node.is_operational:
            return
        node.crash()
        task = self._tasks.get(node_id)
        if task is not None and not task.done():
            task.cancel()
        transport = self._transports.pop(node_id, None)
        if transport is not None:
            transport.close()

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    async def _node_main(self, node: RtNode) -> None:
        """Per-node supervisor: alive until shutdown or crash-cancel."""
        try:
            await self._stop.wait()
        except asyncio.CancelledError:
            pass

    async def run(self) -> RtResult:
        scenario = self.scenario
        config = self.config
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._epoch = loop.time()

        # Bind one UDP socket per node, then publish the address book.
        for nid in sorted(self.positions):
            node = RtNode(
                NodeId(nid),
                self.positions[nid],
                loop,
                link=self,
                clock=lambda: self.now,
                tracer=self._node_tracer(NodeId(nid)),
                profiler=NULL_PROFILER,
            )
            self.nodes[NodeId(nid)] = node
            transport, _protocol = await loop.create_datagram_endpoint(
                lambda node=node: _NodeDatagramProtocol(self, node),
                local_addr=("127.0.0.1", 0),
            )
            self._transports[NodeId(nid)] = transport
            self._addrs[NodeId(nid)] = transport.get_extra_info("sockname")

        # First execution epoch: after warmup, and strictly in the future.
        self.fds_start = max(scenario.warmup, self.now + 0.05)

        if self._run_tracer.enabled:
            self._run_tracer.record(
                self.now,
                META_KIND,
                phi=config.phi,
                thop=config.thop,
                nodes=len(self.nodes),
                seed=scenario.seed,
                executions=scenario.executions,
                fds_start=self.fds_start,
                timebase=WALL_TIMEBASE,
                time_scale=scenario.time_scale,
            )
            # The run spool carries the cluster map too, so a merged rt
            # trace feeds the dashboard's /api/topology unchanged.
            from repro.obs.topology import (
                TOPOLOGY_KIND,
                layout_topology_detail,
            )

            self._run_tracer.record(
                self.now,
                TOPOLOGY_KIND,
                **layout_topology_detail(self.layout, self.positions),
            )

        # Same protocol objects as the simulator, on the rt substrate.
        for nid, node in sorted(self.nodes.items()):
            view = self.layout.local_view(nid)
            protocol = FdsProtocol(config, view)
            node.add_protocol(protocol)
            self.protocols[nid] = protocol
            protocol.start(self.fds_start, scenario.executions, first_index=0)

        self.faultload = derive_faultload(
            tuple(self.nodes),
            self.layout,
            scenario.crash_count,
            scenario.executions,
            config,
            self._faultload_rng,
            fds_start=self.fds_start,
        )
        driver = CrashDriver(loop, self)
        driver.schedule(self.faultload)

        for nid, node in self.nodes.items():
            self._tasks[nid] = loop.create_task(self._node_main(node))

        # Mirror FdsDeployment.run_executions' horizon, plus a short
        # drain so the last delayed copies land before sockets close.
        end = (
            self.fds_start
            + (scenario.executions - 1) * config.phi
            + 0.95 * config.phi
        )
        await asyncio.sleep(max(0.0, end - self.now) + 2 * self.max_delay)

        # Clean shutdown: crashes that never fired stay unfired, timers
        # disarm, supervisor tasks end, sockets close, spools flush.
        driver.cancel_pending()
        for node in self.nodes.values():
            node.timers.stop_all()
        self._stop.set()
        for task in self._tasks.values():
            if not task.done():
                task.cancel()
        await asyncio.gather(*self._tasks.values(), return_exceptions=True)
        for transport in self._transports.values():
            transport.close()
        self._transports.clear()
        await asyncio.sleep(0)

        merged: Optional[Path] = None
        if self.spool_dir is not None:
            for spool in self._node_spools.values():
                spool.close()
            if isinstance(self._run_tracer, SpoolingTracer):
                self._run_tracer.close()
            merged = merge_spools(self.spool_dir)

        crash_times = {e.node_id: e.time for e in self.faultload.events}
        return RtResult(
            scenario=scenario,
            layout=self.layout,
            protocols=self.protocols,
            nodes=self.nodes,
            config=config,
            fds_start=self.fds_start,
            faultload=self.faultload,
            crash_times=crash_times,
            tracer=self._shared_tracer,
            spool_dir=self.spool_dir,
            merged_spool=merged,
            codec_errors=self.codec_errors,
        )


def run_rt_scenario(
    scenario: RtScenario,
    tracer: Optional[Tracer] = None,
    spool_dir: Optional[Path] = None,
) -> RtResult:
    """Run one runtime scenario to completion (synchronous entry point)."""
    runtime = RtRuntime(scenario, tracer=tracer, spool_dir=spool_dir)
    return asyncio.run(runtime.run())
