"""Deterministic wire codec for the FDS message types.

One UDP datagram carries one frame:

====================  ==================================================
bytes 0..3            big-endian unsigned length ``n`` of the JSON body
bytes 4..4+n          UTF-8 canonical JSON (sorted keys, compact
                      separators) -- the frame object
====================  ==================================================

The frame object is ``{"v": 1, "sender": int, "recipient": int|null,
"sent_at": float, "type": str, "body": {...}}`` where ``type`` names one
of the :mod:`repro.fds.messages` dataclasses and ``body`` carries its
fields.  Sets of node ids serialize as *sorted* integer lists and keys
are sorted, so encoding is a pure function of the message -- two runs
that send the same messages produce byte-identical frames, which is what
makes trace diffing and replay meaningful.

Decoding is strict and total: any malformed input -- truncated prefix,
length mismatch, bad UTF-8, invalid JSON, wrong shapes, unknown types,
out-of-domain field values -- raises :class:`CodecError` (a
:class:`~repro.errors.ReproError`), never an arbitrary exception, so the
runtime's receive loop can drop garbage datagrams without dying.

The length prefix is redundant over UDP (datagrams preserve message
boundaries) but makes the same frames stream-safe over any future
byte-oriented transport, and doubles as an integrity check against
kernel-truncated reads.
"""

from __future__ import annotations

import json
from typing import Dict, NamedTuple, Optional, Tuple

from repro.errors import ReproError
from repro.fds.messages import (
    Digest,
    FailureReport,
    Heartbeat,
    HealthStatusUpdate,
    PeerForward,
    PeerForwardAck,
    PeerForwardRequest,
)
from repro.types import NodeId

#: Wire format version; bump on incompatible changes.
WIRE_VERSION = 1

#: Hard ceiling on the declared body length (a localhost FDS frame is a
#: few hundred bytes; anything near this is garbage or an attack).
MAX_FRAME_BODY = 1 << 20


class CodecError(ReproError):
    """A frame or message failed to encode or decode."""


class WireFrame(NamedTuple):
    """A decoded frame: transport envelope plus the message payload."""

    sender: NodeId
    recipient: Optional[NodeId]
    sent_at: float
    payload: object


# ----------------------------------------------------------------------
# Field codecs
# ----------------------------------------------------------------------
def _enc_nodeset(value) -> list:
    return sorted(int(v) for v in value)


def _dec_node(value, where: str) -> NodeId:
    if isinstance(value, bool) or not isinstance(value, int):
        raise CodecError(f"{where}: expected an integer node id, got {value!r}")
    return NodeId(value)


def _dec_int(value, where: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise CodecError(f"{where}: expected an integer, got {value!r}")
    return value


def _dec_bool(value, where: str) -> bool:
    if not isinstance(value, bool):
        raise CodecError(f"{where}: expected a boolean, got {value!r}")
    return value


def _dec_nodeset(value, where: str) -> frozenset:
    if not isinstance(value, list):
        raise CodecError(f"{where}: expected a list of node ids, got {value!r}")
    return frozenset(_dec_node(v, where) for v in value)


# Field kinds: (encoder, decoder) keyed by a short tag.  ``json`` passes
# through untouched (piggyback slots; must already be JSON-serializable).
_FIELD_CODECS = {
    "node": (int, _dec_node),
    "int": (int, _dec_int),
    "bool": (bool, _dec_bool),
    "nodeset": (_enc_nodeset, _dec_nodeset),
    "opt_node": (
        lambda v: None if v is None else int(v),
        lambda v, w: None if v is None else _dec_node(v, w),
    ),
    "opt_nodeset": (
        lambda v: None if v is None else _enc_nodeset(v),
        lambda v, w: None if v is None else _dec_nodeset(v, w),
    ),
    "opt_nodetuple": (
        lambda v: None if v is None else [int(x) for x in v],
        lambda v, w: (
            None
            if v is None
            else tuple(_dec_node(x, w) for x in v)
            if isinstance(v, list)
            else _raise(f"{w}: expected a list of node ids, got {v!r}")
        ),
    ),
    "json": (lambda v: v, lambda v, w: v),
    # "update" (nested HealthStatusUpdate) is special-cased below.
}


def _raise(message: str):
    raise CodecError(message)


#: type name -> (dataclass, ordered field spec).
_SCHEMAS: Dict[str, Tuple[type, Tuple[Tuple[str, str], ...]]] = {
    "Heartbeat": (
        Heartbeat,
        (
            ("sender", "node"),
            ("execution", "int"),
            ("marked", "bool"),
            ("piggyback", "json"),
            ("sleep_span", "int"),
        ),
    ),
    "Digest": (
        Digest,
        (("sender", "node"), ("execution", "int"), ("heard", "nodeset")),
    ),
    "HealthStatusUpdate": (
        HealthStatusUpdate,
        (
            ("head", "node"),
            ("execution", "int"),
            ("new_failures", "nodeset"),
            ("known_failures", "nodeset"),
            ("admissions", "nodeset"),
            ("takeover_from", "opt_node"),
            ("relay", "bool"),
            ("membership", "opt_nodeset"),
            ("refutations", "nodeset"),
            ("deputies", "opt_nodetuple"),
            ("piggyback", "json"),
        ),
    ),
    "FailureReport": (
        FailureReport,
        (
            ("sender", "node"),
            ("origin", "node"),
            ("target_head", "node"),
            ("failures", "nodeset"),
            ("history", "nodeset"),
            ("refutations", "nodeset"),
        ),
    ),
    "PeerForwardRequest": (
        PeerForwardRequest,
        (("sender", "node"), ("execution", "int")),
    ),
    "PeerForward": (
        PeerForward,
        (("sender", "node"), ("requester", "node"), ("update", "update")),
    ),
    "PeerForwardAck": (
        PeerForwardAck,
        (("sender", "node"), ("execution", "int")),
    ),
}

#: The dataclasses the codec covers, for tests and dispatch.
MESSAGE_TYPES = tuple(cls for cls, _spec in _SCHEMAS.values())

_TYPE_NAMES = {cls: name for name, (cls, _spec) in _SCHEMAS.items()}


# ----------------------------------------------------------------------
# Message <-> body dict
# ----------------------------------------------------------------------
def encode_message(payload: object) -> Tuple[str, dict]:
    """``(type name, body dict)`` of one FDS message."""
    name = _TYPE_NAMES.get(type(payload))
    if name is None:
        raise CodecError(
            f"cannot encode {type(payload).__name__}: not an FDS wire message"
        )
    _cls, spec = _SCHEMAS[name]
    body = {}
    for field_name, kind in spec:
        value = getattr(payload, field_name)
        if kind == "update":
            _name, body_value = encode_message(value)
        else:
            encoder, _decoder = _FIELD_CODECS[kind]
            body_value = encoder(value)
        body[field_name] = body_value
    return name, body


def decode_message(type_name: str, body: object) -> object:
    """Rebuild one FDS message from its ``(type, body)`` wire form."""
    schema = _SCHEMAS.get(type_name) if isinstance(type_name, str) else None
    if schema is None:
        raise CodecError(f"unknown message type {type_name!r}")
    if not isinstance(body, dict):
        raise CodecError(f"{type_name}: body must be an object, got {body!r}")
    cls, spec = schema
    kwargs = {}
    for field_name, kind in spec:
        if field_name not in body:
            raise CodecError(f"{type_name}: missing field {field_name!r}")
        value = body[field_name]
        where = f"{type_name}.{field_name}"
        if kind == "update":
            kwargs[field_name] = decode_message("HealthStatusUpdate", value)
        else:
            _encoder, decoder = _FIELD_CODECS[kind]
            kwargs[field_name] = decoder(value, where)
    extra = set(body) - {field_name for field_name, _kind in spec}
    if extra:
        raise CodecError(f"{type_name}: unexpected fields {sorted(extra)}")
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Frame <-> bytes
# ----------------------------------------------------------------------
def encode_frame(
    sender: NodeId,
    recipient: Optional[NodeId],
    sent_at: float,
    payload: object,
) -> bytes:
    """One length-prefixed wire frame carrying ``payload``."""
    type_name, body = encode_message(payload)
    frame = {
        "v": WIRE_VERSION,
        "sender": int(sender),
        "recipient": None if recipient is None else int(recipient),
        "sent_at": float(sent_at),
        "type": type_name,
        "body": body,
    }
    try:
        text = json.dumps(frame, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CodecError(
            f"{type_name} is not JSON-serializable (piggyback?): {exc}"
        ) from exc
    encoded = text.encode("utf-8")
    return len(encoded).to_bytes(4, "big") + encoded


def decode_frame(data: bytes) -> WireFrame:
    """Parse one datagram back into a :class:`WireFrame`.

    Raises :class:`CodecError` on *any* malformation.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise CodecError(f"frame must be bytes, got {type(data).__name__}")
    data = bytes(data)
    if len(data) < 4:
        raise CodecError(f"truncated frame: {len(data)} byte(s), need >= 4")
    declared = int.from_bytes(data[:4], "big")
    if declared > MAX_FRAME_BODY:
        raise CodecError(f"declared body length {declared} exceeds the cap")
    if len(data) - 4 != declared:
        raise CodecError(
            f"length mismatch: prefix says {declared}, datagram carries "
            f"{len(data) - 4}"
        )
    try:
        text = data[4:].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"frame body is not UTF-8: {exc}") from exc
    try:
        frame = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CodecError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(frame, dict):
        raise CodecError(f"frame must be a JSON object, got {frame!r}")
    if frame.get("v") != WIRE_VERSION:
        raise CodecError(f"unsupported wire version {frame.get('v')!r}")
    for key in ("sender", "recipient", "sent_at", "type", "body"):
        if key not in frame:
            raise CodecError(f"frame missing key {key!r}")
    sender = _dec_node(frame["sender"], "frame.sender")
    recipient = frame["recipient"]
    if recipient is not None:
        recipient = _dec_node(recipient, "frame.recipient")
    sent_at = frame["sent_at"]
    if isinstance(sent_at, bool) or not isinstance(sent_at, (int, float)):
        raise CodecError(f"frame.sent_at: expected a number, got {sent_at!r}")
    payload = decode_message(frame["type"], frame["body"])
    return WireFrame(
        sender=sender,
        recipient=recipient,
        sent_at=float(sent_at),
        payload=payload,
    )
