"""Spool collection: merge per-node JSONL spools into one trace.

Each :class:`~repro.rt.substrate.RtNode` writes its own spool (crash
isolation: a dead node's records are already on disk), plus one
``run.jsonl`` with the run-level ``meta.scenario`` record.  The
analyzers want a single time-ordered stream, and each individual spool
is already time-ordered (a node emits monotonically), so a heap merge
reconstructs the global order in one streaming pass -- the merged file
is byte-compatible with a :class:`~repro.obs.spool.SpoolingTracer`
spool and feeds ``repro trace summarize|timeline|lineage|latency``
unchanged.
"""

from __future__ import annotations

import heapq
import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.errors import ConfigurationError
from repro.sim.trace import TraceRecord, record_to_dict
from repro.obs.spool import iter_spool

#: Filename of the merged trace inside a spool directory.
MERGED_NAME = "merged.jsonl"


def spool_files(spool_dir: Union[str, Path]) -> List[Path]:
    """The per-node and run spools of one runtime run, sorted by name."""
    spool_dir = Path(spool_dir)
    if not spool_dir.is_dir():
        raise ConfigurationError(f"no spool directory at {spool_dir}")
    return sorted(
        path
        for path in spool_dir.glob("*.jsonl")
        if path.name != MERGED_NAME
    )


def iter_merged(spool_dir: Union[str, Path]) -> Iterable[TraceRecord]:
    """Stream every record of a spool directory in global time order."""
    streams = [iter_spool(path) for path in spool_files(spool_dir)]
    # Tie-break on the record kind so the merge is deterministic for
    # equal timestamps regardless of heap internals.
    return heapq.merge(
        *streams, key=lambda record: (record.time, record.kind)
    )


def merge_spools(
    spool_dir: Union[str, Path], out: Optional[Path] = None
) -> Path:
    """Write the merged trace; returns its path.

    ``out`` defaults to ``<spool_dir>/merged.jsonl``.  Existing merges
    are overwritten (re-merging after a rerun must not append).
    """
    spool_dir = Path(spool_dir)
    target = out if out is not None else spool_dir / MERGED_NAME
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for record in iter_merged(spool_dir):
            handle.write(json.dumps(record_to_dict(record), sort_keys=True))
            handle.write("\n")
    return target
