"""Faultload derivation and wall-clock crash injection for the runtime.

Stream identity is the whole point: the runtime draws its crash schedule
from the *same* named RNG streams, candidate ordering, and execution
window as :func:`repro.experiments.runner.run_scenario`, so a simulated
and a real run of one seeded spec crash the *same nodes* in the *same
executions* -- only the timestamps differ (wall-scaled instead of
virtual).  That is what makes the sim/real differential
(:mod:`repro.audit.realnet`) compare like with like.
"""

from __future__ import annotations

import asyncio
from typing import Tuple

import numpy as np

from repro.cluster.state import ClusterLayout
from repro.failure.faultload import Faultload, make_random_crashes
from repro.fds.config import FdsConfig
from repro.types import NodeId


def derive_faultload(
    node_ids: Tuple[NodeId, ...],
    layout: ClusterLayout,
    crash_count: int,
    executions: int,
    wall_config: FdsConfig,
    rng: np.random.Generator,
    fds_start: float,
) -> Faultload:
    """The scenario runner's crash schedule, with wall-clock timestamps.

    ``rng`` must be the seed's ``"faultload"`` stream and ``node_ids``
    the full sorted id set -- then the candidate tuple (operational
    non-heads, ascending) and the draw sequence match the simulator's
    bit for bit, and only ``wall_config.phi`` / ``fds_start`` (already
    wall-scaled) change the resulting times.
    """
    candidates: Tuple[NodeId, ...] = tuple(
        nid for nid in sorted(node_ids) if nid not in layout.heads
    )
    last_exec = max(1, executions - 2)
    return make_random_crashes(
        candidates,
        crash_count,
        wall_config,
        rng,
        fds_start=fds_start,
        first_execution=1,
        last_execution=last_exec,
    )


class CrashDriver:
    """Schedules fail-stop kills on the event loop.

    Each scheduled crash calls back into the runtime
    (``runtime.crash_node``), which fail-stops the :class:`RtNode`,
    cancels its supervisor task, and closes its socket -- the real
    process-death analogue of the simulator's
    :class:`~repro.failure.injection.FailureInjector`.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop, runtime) -> None:
        self._loop = loop
        self._runtime = runtime
        self._handles: list = []

    def schedule(self, faultload: Faultload) -> None:
        """Arm one loop timer per crash event (times are epoch-relative)."""
        for event in faultload.events:
            delay = max(0.0, event.time - self._runtime.now)
            self._handles.append(
                self._loop.call_later(
                    delay, self._runtime.crash_node, event.node_id
                )
            )

    def cancel_pending(self) -> None:
        """Disarm crashes that have not fired (shutdown path)."""
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()
