"""repro -- Cluster-Based Failure Detection Service for Large-Scale Ad Hoc
Wireless Network Applications (Tai, Tso & Sanders, DSN 2004): a complete
reproduction.

The library has three layers:

1. **Substrate** (:mod:`repro.sim`, :mod:`repro.topology`): a deterministic
   discrete-event simulator with a unit-disk, promiscuous, lossy radio
   medium, plus placement/graph tooling.
2. **Protocols** (:mod:`repro.cluster`, :mod:`repro.fds`,
   :mod:`repro.baselines`): distributed cluster formation with the paper's
   F1-F5 features, the three-round cluster-based FDS with peer forwarding
   and implicit-ack inter-cluster forwarding, and baseline failure
   detectors for comparison.
3. **Evaluation** (:mod:`repro.analysis`, :mod:`repro.metrics`,
   :mod:`repro.experiments`): the paper's closed-form probabilistic
   measures (Figures 5-7), Monte Carlo twins, ground-truth
   completeness/accuracy scoring, and the figure-regeneration harness.

Quickstart::

    import numpy as np
    from repro import (
        NetworkConfig, build_network, build_clusters, install_fds,
        UnitDiskGraph, uniform_rect_placement, FdsConfig,
    )

    rng = np.random.default_rng(7)
    positions = uniform_rect_placement(300, 400.0, 400.0, rng)
    graph = UnitDiskGraph(positions, radius=100.0)
    layout = build_clusters(graph)
    network = build_network(positions, NetworkConfig(loss_probability=0.1))
    deployment = install_fds(network, layout, FdsConfig())
    deployment.run_executions(3)
"""

from repro.aggregation import (
    Aggregate,
    AggregateKind,
    AggregationConfig,
    attach_aggregation,
)
from repro.cluster import (
    Boundary,
    Cluster,
    ClusterLayout,
    FormationConfig,
    LocalClusterView,
    build_clusters,
    run_formation,
)
from repro.energy import EnergyConfig, EnergyModel
from repro.errors import ReproError
from repro.failure import FailureInjector, Faultload, make_random_crashes
from repro.fds import FdsConfig, FdsDeployment, FdsProtocol, install_fds
from repro.metrics import (
    collect_message_counts,
    evaluate_properties,
)
from repro.power import DutyCycleSchedule, install_power_management
from repro.sim import (
    BernoulliLoss,
    GilbertElliottLoss,
    Network,
    NetworkConfig,
    PerfectLinks,
    RecordingTracer,
    Simulator,
    build_network,
)
from repro.topology import (
    UnitDiskGraph,
    multi_cluster_field,
    single_cluster_disk,
    uniform_rect_placement,
)
from repro.types import NodeId, NodeRole, NodeStatus

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "NodeId",
    "NodeRole",
    "NodeStatus",
    "Simulator",
    "Network",
    "NetworkConfig",
    "build_network",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "PerfectLinks",
    "RecordingTracer",
    "UnitDiskGraph",
    "uniform_rect_placement",
    "single_cluster_disk",
    "multi_cluster_field",
    "Cluster",
    "Boundary",
    "ClusterLayout",
    "LocalClusterView",
    "build_clusters",
    "run_formation",
    "FormationConfig",
    "FdsConfig",
    "FdsProtocol",
    "FdsDeployment",
    "install_fds",
    "EnergyModel",
    "EnergyConfig",
    "FailureInjector",
    "Faultload",
    "make_random_crashes",
    "evaluate_properties",
    "collect_message_counts",
    "Aggregate",
    "AggregateKind",
    "AggregationConfig",
    "attach_aggregation",
    "DutyCycleSchedule",
    "install_power_management",
]
