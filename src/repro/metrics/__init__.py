"""Metrics: ground-truth scoring of FDS runs."""

from repro.metrics.collectors import MessageCounts, collect_message_counts
from repro.metrics.properties import (
    PropertyReport,
    accuracy_violations,
    completeness_of,
    detection_latency,
    evaluate_properties,
)
from repro.metrics.summary import SeriesSummary, summarize

__all__ = [
    "MessageCounts",
    "collect_message_counts",
    "PropertyReport",
    "accuracy_violations",
    "completeness_of",
    "detection_latency",
    "evaluate_properties",
    "SeriesSummary",
    "summarize",
]
