"""Completeness and accuracy scoring against ground truth.

The paper's target properties (Section 4.1), made measurable:

- **Completeness**: "every node failure will be reported to every
  operational node."  For each crashed node, the fraction of operational,
  clustered nodes whose failure knowledge includes it.  (A node partitioned
  from the network is not "operational" by the paper's definition and is
  excluded.)
- **Accuracy**: "no operational node will be suspected by other
  operational nodes."  Every (suspector, suspected) pair where the
  suspected node is in fact operational is a violation.

The scorer reads protocol state (each node's
:class:`~repro.fds.reports.ReportHistory`) and ground truth from the
network -- exactly the vantage point the paper's analysis takes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.fds.service import FdsDeployment
from repro.sim.trace import RecordingTracer
from repro.fds import events as ev
from repro.types import NodeId, SimTime


@dataclass(frozen=True)
class PropertyReport:
    """Scored completeness/accuracy of one run."""

    #: crashed node -> fraction of operational clustered nodes that know.
    completeness: Dict[NodeId, float]
    #: (suspector, suspected-but-operational) pairs.
    accuracy_violations: Tuple[Tuple[NodeId, NodeId], ...]
    #: crashed nodes some operational node does NOT know about.
    incomplete_failures: Tuple[NodeId, ...]
    operational_count: int
    crashed_count: int

    @property
    def mean_completeness(self) -> float:
        """Average completeness over all crashed nodes (1.0 if none)."""
        if not self.completeness:
            return 1.0
        return sum(self.completeness.values()) / len(self.completeness)

    @property
    def is_complete(self) -> bool:
        return not self.incomplete_failures

    @property
    def is_accurate(self) -> bool:
        return not self.accuracy_violations


def _observer_ids(deployment: FdsDeployment) -> List[NodeId]:
    """Operational nodes that belong to some cluster (paper's scope)."""
    return [
        nid
        for nid in deployment.network.operational_ids()
        if deployment.layout.is_clustered(nid)
    ]


def completeness_of(deployment: FdsDeployment, failure: NodeId) -> float:
    """Fraction of operational clustered nodes aware of ``failure``."""
    observers = _observer_ids(deployment)
    if not observers:
        return 1.0
    aware = sum(
        1 for nid in observers if failure in deployment.protocols[nid].history
    )
    return aware / len(observers)


def accuracy_violations(
    deployment: FdsDeployment,
) -> Tuple[Tuple[NodeId, NodeId], ...]:
    """All (suspector, operational-suspected) pairs, sorted."""
    operational = set(deployment.network.operational_ids())
    violations: List[Tuple[NodeId, NodeId]] = []
    for nid in sorted(operational):
        protocol = deployment.protocols[nid]
        for suspected in sorted(protocol.history.known):
            if suspected in operational:
                violations.append((nid, suspected))
    return tuple(violations)


def evaluate_properties(deployment: FdsDeployment) -> PropertyReport:
    """Score a finished run."""
    observers = _observer_ids(deployment)
    crashed = deployment.network.crashed_ids()
    completeness: Dict[NodeId, float] = {}
    incomplete: List[NodeId] = []
    for failure in crashed:
        frac = completeness_of(deployment, failure)
        completeness[failure] = frac
        if frac < 1.0:
            incomplete.append(failure)
    return PropertyReport(
        completeness=completeness,
        accuracy_violations=accuracy_violations(deployment),
        incomplete_failures=tuple(incomplete),
        operational_count=len(observers),
        crashed_count=len(crashed),
    )


def evaluate_histories(
    network,
    histories: Dict[NodeId, "object"],
) -> PropertyReport:
    """Score completeness/accuracy from raw per-node failure knowledge.

    ``histories`` maps each node to an object supporting ``in`` (its
    failure-knowledge set) -- typically a
    :class:`~repro.fds.reports.ReportHistory`.  Used for baseline
    detectors, which have no cluster layout; every operational node is an
    observer.
    """
    observers = [nid for nid in network.operational_ids() if nid in histories]
    operational = set(network.operational_ids())
    crashed = network.crashed_ids()
    completeness: Dict[NodeId, float] = {}
    incomplete: List[NodeId] = []
    for failure in crashed:
        if observers:
            aware = sum(1 for nid in observers if failure in histories[nid])
            frac = aware / len(observers)
        else:
            frac = 1.0
        completeness[failure] = frac
        if frac < 1.0:
            incomplete.append(failure)
    violations: List[Tuple[NodeId, NodeId]] = []
    for nid in sorted(observers):
        history = histories[nid]
        for suspected in sorted(getattr(history, "known", frozenset())):
            if suspected in operational:
                violations.append((nid, suspected))
    return PropertyReport(
        completeness=completeness,
        accuracy_violations=tuple(violations),
        incomplete_failures=tuple(incomplete),
        operational_count=len(observers),
        crashed_count=len(crashed),
    )


def detection_latency(
    tracer: RecordingTracer,
    crash_times: Dict[NodeId, SimTime],
) -> Dict[NodeId, Optional[SimTime]]:
    """Seconds from each crash to its *first* detection event (None if never).

    Needs a tracer with full in-memory records.  Tracers without
    ``iter_kind`` (disk spoolers, NullTracer) yield all-``None``; the
    latencies are then recovered post-hoc from the spool by
    ``repro trace latency``.
    """
    iter_kind = getattr(tracer, "iter_kind", None)
    if iter_kind is None:
        return {nid: None for nid in crash_times}
    first_detection: Dict[NodeId, SimTime] = {}
    for record in iter_kind(ev.DETECTION):
        target = NodeId(int(record.detail["target"]))
        if target not in first_detection:
            first_detection[target] = record.time
    return {
        nid: (first_detection[nid] - t if nid in first_detection else None)
        for nid, t in crash_times.items()
    }
