"""Aggregation of repeated-trial measurements."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalysisError


@dataclass(frozen=True)
class SeriesSummary:
    """Mean / stddev / extremes of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 1:
            return 0.0
        return self.std / math.sqrt(self.count)


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Summary statistics of a non-empty sample (population stddev)."""
    if not values:
        raise AnalysisError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return SeriesSummary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )
