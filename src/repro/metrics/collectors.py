"""Message and energy accounting for a run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.energy.model import EnergyModel
from repro.fds.service import FdsDeployment
from repro.types import NodeId


@dataclass(frozen=True)
class MessageCounts:
    """Medium-level and protocol-level message statistics."""

    transmissions: int
    deliveries: int
    losses: int
    peer_requests: int
    peer_forwards: int
    peer_recoveries: int
    reports_sent: int
    report_retransmissions: int
    bgw_activations: int
    origin_retransmissions: int

    @property
    def loss_rate(self) -> float:
        """Observed per-copy loss rate (should track the configured p)."""
        attempted = self.deliveries + self.losses
        return self.losses / attempted if attempted else 0.0


def collect_message_counts(deployment: FdsDeployment) -> MessageCounts:
    """Aggregate counters from the medium and every protocol instance."""
    stats = deployment.network.medium.message_stats()
    peer_requests = peer_forwards = peer_recoveries = 0
    reports = retrans = bgw = origin = 0
    for protocol in deployment.protocols.values():
        if protocol.peer is not None:
            peer_requests += protocol.peer.requests_sent
            peer_forwards += protocol.peer.forwards_sent
            peer_recoveries += protocol.peer.recoveries
        if protocol.inter is not None:
            reports += protocol.inter.reports_sent
            retrans += protocol.inter.retransmissions
            bgw += protocol.inter.bgw_activations
            origin += protocol.inter.origin_retransmissions
    return MessageCounts(
        transmissions=stats["transmissions"],
        deliveries=stats["deliveries"],
        losses=stats["losses"],
        peer_requests=peer_requests,
        peer_forwards=peer_forwards,
        peer_recoveries=peer_recoveries,
        reports_sent=reports,
        report_retransmissions=retrans,
        bgw_activations=bgw,
        origin_retransmissions=origin,
    )


def energy_summary(energy: Optional[EnergyModel]) -> Dict[str, float]:
    """Energy totals plus the balance spread (empty dict if untracked)."""
    if energy is None:
        return {}
    summary = energy.totals()
    summary["spread"] = energy.spread()
    return summary
