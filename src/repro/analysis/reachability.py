"""DCH reachability analysis (the study Section 4.2 summarizes).

After a takeover, a DCH at distance ``d`` from the old CH cannot directly
reach members in the crescent ``Av`` outside its transmission range
(Figure 2(a)).  The paper reports -- without the model, "due to space
limitations" -- that "unless the node population density is low and the
DCH's distance from the original CH is big, with high probability a DCH
will be able to hear from an 'out-of-range' cluster member through the
round of digest diffusion."

We reconstruct that model.  For an out-of-range member ``v``, the DCH
learns ``v`` is alive iff some *other* member ``w`` lies in ``Ag`` -- the
region reachable by both the DCH and ``v`` (intersected with the cluster
disk) -- and the two-message chain succeeds: ``w`` overhears ``v``'s
heartbeat (``1 - p``) and ``w``'s digest reaches the DCH (``1 - p``).
With ``g = |Ag| / Au`` and ``N - 3`` other members placed uniformly::

    P(DCH unaware of v) = (1 - g * (1 - p)^2)^{N-3}

``|Ag|`` is a triple-disk intersection; we evaluate it by deterministic
grid quadrature over the cluster disk (exact enough at the default
resolution that the tests cross-check it against a Monte Carlo area
estimate).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.geometry import PAPER_TRANSMISSION_RANGE
from repro.errors import AnalysisError
from repro.util.validation import check_int_at_least, check_probability


def triple_overlap_fraction(
    dch_distance: float,
    member_distance: float,
    radius: float = PAPER_TRANSMISSION_RANGE,
    resolution: int = 600,
) -> float:
    """``g = |Ag| / Au``: fraction of the cluster reachable by DCH and v.

    The CH sits at the origin, the DCH at ``(dch_distance, 0)`` and the
    out-of-range member ``v`` at the worst position: diametrically opposite
    the DCH at ``(-member_distance, 0)``.  Evaluated by grid quadrature.
    """
    if not 0.0 <= dch_distance <= radius:
        raise AnalysisError(f"dch_distance must be in [0, R], got {dch_distance}")
    if not 0.0 <= member_distance <= radius:
        raise AnalysisError(
            f"member_distance must be in [0, R], got {member_distance}"
        )
    check_int_at_least("resolution", resolution, 16)
    axis = np.linspace(-radius, radius, resolution)
    xs, ys = np.meshgrid(axis, axis)
    r2 = radius * radius
    in_cluster = xs * xs + ys * ys <= r2
    in_dch = (xs - dch_distance) ** 2 + ys**2 <= r2
    in_v = (xs + member_distance) ** 2 + ys**2 <= r2
    cluster_cells = int(np.count_nonzero(in_cluster))
    if cluster_cells == 0:  # pragma: no cover - resolution >= 16 prevents it
        raise AnalysisError("quadrature grid too coarse")
    overlap_cells = int(np.count_nonzero(in_cluster & in_dch & in_v))
    return overlap_cells / cluster_cells


def dch_reachability_failure(
    n: int,
    p: float,
    dch_distance: float,
    member_distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
    resolution: int = 600,
) -> float:
    """P(the DCH remains unaware of an out-of-range member ``v``).

    ``member_distance`` defaults to the worst case: ``v`` on the cluster
    circumference diametrically opposite the DCH.  Returns 0.0 when ``v``
    is actually *within* the DCH's range (no reachability problem exists).
    """
    check_int_at_least("n", n, 3)
    check_probability("p", p)
    d_v = radius if member_distance is None else member_distance
    if dch_distance + d_v <= radius:
        return 0.0  # v is within the DCH's transmission range
    g = triple_overlap_fraction(dch_distance, d_v, radius, resolution)
    chain_success = g * (1.0 - p) ** 2
    return float((1.0 - chain_success) ** (n - 3))
