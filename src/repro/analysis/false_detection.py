"""P^(False detection) -- Figure 5 of the paper.

The probability that the CH mistakenly judges an *operational* member ``v``
to have failed in one FDS execution.  The conditions (Section 5.1):

C1. the CH receives neither ``v``'s heartbeat (R-1) nor ``v``'s digest
    (R-2): probability ``p**2``;
C2. none of the digests the CH receives reflect awareness of ``v``'s
    heartbeat.

The paper's formulation (its Section 5.1 equation), for ``v`` in the worst
case on the cluster circumference with overlap fraction ``a = An/Au``::

    P^ = p^2 * sum_{k=0}^{N-2} C(N-2, k) (1 - a)^{N-2-k} a^k
               * sum_{j=0}^{k} C(k, j) (1-p)^j p^{k-j} * p^j

where ``k`` enumerates how many of the other ``N - 2`` hosts are in-cluster
neighbors of ``v``, and ``j`` how many of those overheard ``v``'s
heartbeat; the trailing ``p^j`` is the probability all their digests are
lost at the CH.

A neighbor *witnesses* ``v`` iff it overhears the heartbeat AND its digest
reaches the CH -- probability ``(1-p)^2`` -- so the double sum collapses by
the binomial theorem to the closed form::

    P^ = p^2 * (1 - a * (1 - p)^2)^{N-2}

Both are implemented; :func:`p_false_detection_literal` follows the paper's
double sum term by term (in the log domain) and the test suite asserts it
equals the closed form.

Note the condition C2 subsumes per-neighbor digest-to-CH loss but not the
neighbor's *own* placement relative to the CH: every cluster member is a
one-hop neighbor of the CH by construction, so a sent digest reaches the CH
unless lost -- exactly the paper's model.
"""

from __future__ import annotations

import math

from repro.analysis.geometry import (
    PAPER_TRANSMISSION_RANGE,
    overlap_fraction,
    worst_case_fraction,
)
from repro.errors import AnalysisError
from repro.util.logmath import (
    log_binomial,
    logsumexp,
)
from repro.util.validation import check_int_at_least, check_probability


def _check_inputs(n: int, p: float) -> None:
    check_int_at_least("n", n, 2)
    check_probability("p", p)


def p_false_detection_log10(
    n: int,
    p: float,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> float:
    """``log10`` of P^(False detection) -- exact far below underflow.

    ``n`` is the cluster population ``N`` (CH included); ``distance`` is
    ``v``'s distance from the CH (default: the paper's worst case ``R``).
    """
    _check_inputs(n, p)
    if p == 0.0:
        return -math.inf
    a = (
        worst_case_fraction()
        if distance is None
        else overlap_fraction(distance, radius)
    )
    log_p = 2.0 * math.log(p) + (n - 2) * math.log1p(-a * (1.0 - p) ** 2)
    return log_p / math.log(10.0)


def p_false_detection(
    n: int,
    p: float,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> float:
    """P^(False detection), closed form (may underflow to 0.0 below 1e-308)."""
    log10_value = p_false_detection_log10(n, p, distance, radius)
    if log10_value == -math.inf:
        return 0.0
    return 10.0**log10_value


def p_false_detection_literal(
    n: int,
    p: float,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> float:
    """The paper's double binomial sum, evaluated term by term.

    Exists to validate the closed form against the paper's own equation;
    costs O(N^2) terms.
    """
    _check_inputs(n, p)
    if p == 0.0:
        return 0.0
    a = (
        worst_case_fraction()
        if distance is None
        else overlap_fraction(distance, radius)
    )
    m = n - 2
    log_p = math.log(p)
    log_q = math.log1p(-p) if p < 1.0 else -math.inf
    log_a = math.log(a) if a > 0 else -math.inf
    log_1ma = math.log1p(-a) if a < 1.0 else -math.inf

    def xlog(count: int, log_value: float) -> float:
        # count * log_value with the 0 * -inf == 0 convention (x**0 == 1).
        return 0.0 if count == 0 else count * log_value

    outer_terms = []
    for k in range(m + 1):
        inner_terms = []
        for j in range(k + 1):
            # C(k, j) (1-p)^j p^(k-j)  *  p^j
            inner_terms.append(
                log_binomial(k, j)
                + xlog(j, log_q)
                + xlog(k - j, log_p)
                + xlog(j, log_p)
            )
        log_inner = logsumexp(inner_terms)
        outer_terms.append(
            log_binomial(m, k)
            + xlog(m - k, log_1ma)
            + xlog(k, log_a)
            + log_inner
        )
    total = 2.0 * log_p + logsumexp(outer_terms)
    return math.exp(total) if total > -700 else 0.0
