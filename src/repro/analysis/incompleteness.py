"""P^(Incompleteness) -- Figure 7 of the paper.

The probability that a cluster member fails to receive a failure report,
given that the CH broadcast it in fds.R-3 -- the constituent measure the
paper says "system-wide completeness will be a function of".  The paper
omits the formulation "due to space limitations"; we derive it from its
described mechanism (Section 4.2, intra-cluster completeness enhancement):

- the member ``v`` misses the CH's R-3 broadcast: probability ``p``;
- ``v`` broadcasts a forwarding request at the end of R-3; *progressive*
  peer forwarding then fails only if **no** in-cluster neighbor of ``v``
  successfully relays the update.  A neighbor succeeds iff it

  1. received the R-3 update itself           (prob ``1 - p``),
  2. heard ``v``'s forwarding request          (prob ``1 - p``),
  3. its forwarded copy reaches ``v``          (prob ``1 - p``),

  because forwarding is progressive (unique waiting periods; the next
  neighbor steps in if no acknowledgment is overheard), the attempts are
  effectively independent and ``v`` stays unrecovered only if every
  neighbor fails: per-neighbor success ``(1-p)^3``.

With ``k`` of the other ``N - 2`` members being in-cluster neighbors of
``v`` (binomial with the overlap fraction ``a``, worst case ``v`` on the
circumference as in Figure 4(b))::

    P^ = p * sum_{k=0}^{N-2} C(N-2,k) (1-a)^{N-2-k} a^k * (1 - (1-p)^3)^k
       = p * (1 - a * (1-p)^3)^{N-2}

Shape checks against Figure 7: P^ decreases sharply as ``N`` grows from 50
to 100, and larger ``N`` makes the measure *more sensitive* to ``p`` (the
curves steepen) -- both reproduced by this formula.
"""

from __future__ import annotations

import math

from repro.analysis.geometry import (
    PAPER_TRANSMISSION_RANGE,
    overlap_fraction,
    worst_case_fraction,
)
from repro.util.logmath import log_binomial, logsumexp
from repro.util.validation import check_int_at_least, check_probability


def p_incompleteness_log10(
    n: int,
    p: float,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> float:
    """``log10`` of P^(Incompleteness) for a member at ``distance``.

    Default distance is the paper's worst case (the circumference).
    """
    check_int_at_least("n", n, 2)
    check_probability("p", p)
    if p == 0.0:
        return -math.inf
    a = (
        worst_case_fraction()
        if distance is None
        else overlap_fraction(distance, radius)
    )
    success = (1.0 - p) ** 3
    log_p = math.log(p) + (n - 2) * math.log1p(-a * success)
    return log_p / math.log(10.0)


def p_incompleteness(
    n: int,
    p: float,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> float:
    """P^(Incompleteness), closed form."""
    log10_value = p_incompleteness_log10(n, p, distance, radius)
    if log10_value == -math.inf:
        return 0.0
    return 10.0**log10_value if log10_value > -307 else 0.0


def p_incompleteness_literal(
    n: int,
    p: float,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> float:
    """The binomial-sum form, evaluated term by term (validation twin)."""
    check_int_at_least("n", n, 2)
    check_probability("p", p)
    if p == 0.0:
        return 0.0
    a = (
        worst_case_fraction()
        if distance is None
        else overlap_fraction(distance, radius)
    )
    m = n - 2
    fail = 1.0 - (1.0 - p) ** 3
    log_a = math.log(a) if a > 0 else -math.inf
    log_1ma = math.log1p(-a) if a < 1.0 else -math.inf
    log_fail = math.log(fail) if fail > 0 else -math.inf

    def xlog(count: int, log_value: float) -> float:
        # count * log_value with the 0 * -inf == 0 convention (x**0 == 1).
        return 0.0 if count == 0 else count * log_value

    terms = [
        log_binomial(m, k)
        + xlog(m - k, log_1ma)
        + xlog(k, log_a)
        + xlog(k, log_fail)
        for k in range(m + 1)
    ]
    total = math.log(p) + logsumexp(terms)
    return math.exp(total) if total > -700 else 0.0
