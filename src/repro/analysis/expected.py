"""Average-case measures: integrating the paper's bounds over position.

Section 5 evaluates upper bounds at the worst case (the member on the
circumference).  For capacity planning one also wants the *expected*
per-member rates: a uniformly placed member sits at distance ``d`` from
the CH with density ``f(d) = 2 d / R**2``, so

    E[measure] = integral_0^R  f(d) * measure(N, p, d)  dd

evaluated by fixed-order Gauss-Legendre quadrature (the integrands are
smooth).  These are strictly below the worst-case curves and quantify how
pessimistic the bounds are -- typically one to two orders of magnitude at
the grid's corners.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.false_detection import p_false_detection
from repro.analysis.geometry import PAPER_TRANSMISSION_RANGE
from repro.analysis.incompleteness import p_incompleteness
from repro.util.validation import check_int_at_least, check_probability

#: Quadrature order; the integrands vary slowly so 48 nodes is plenty.
_QUAD_ORDER = 48


def _position_average(measure, n: int, p: float, radius: float) -> float:
    nodes, weights = np.polynomial.legendre.leggauss(_QUAD_ORDER)
    # Map [-1, 1] -> [0, R].
    d = 0.5 * radius * (nodes + 1.0)
    w = 0.5 * radius * weights
    density = 2.0 * d / (radius * radius)
    values = np.array([measure(n, p, distance=float(x)) for x in d])
    return float(np.sum(w * density * values))


def expected_false_detection(
    n: int, p: float, radius: float = PAPER_TRANSMISSION_RANGE
) -> float:
    """E over member position of P(False detection) in one execution."""
    check_int_at_least("n", n, 2)
    check_probability("p", p)
    if p == 0.0:
        return 0.0
    return _position_average(p_false_detection, n, p, radius)


def expected_incompleteness(
    n: int, p: float, radius: float = PAPER_TRANSMISSION_RANGE
) -> float:
    """E over member position of P(Incompleteness) in one execution."""
    check_int_at_least("n", n, 2)
    check_probability("p", p)
    if p == 0.0:
        return 0.0
    return _position_average(p_incompleteness, n, p, radius)


def expected_cluster_false_detections(
    n: int, p: float, radius: float = PAPER_TRANSMISSION_RANGE
) -> float:
    """Expected number of false detections per cluster per execution.

    ``(N - 1)`` members, each at an independent uniform position; by
    linearity this is ``(N - 1) * E[P(FD)]``.  Useful for maintenance-cost
    planning (the paper: "excessive false detections will increase
    maintenance cost significantly and unnecessarily").
    """
    return (n - 1) * expected_false_detection(n, p, radius)
