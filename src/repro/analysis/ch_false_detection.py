"""P(False detection on CH) -- Figure 6 of the paper.

The probability that the DCH mistakenly judges an *operational* CH to have
failed.  The paper omits the formulation "due to space limitations"; we
derive it from its stated CH-failure detection rule (Section 4.2):

C1'. the DCH receives neither the CH's heartbeat (R-1) nor the CH's digest
     (R-2): probability ``p**2``;
C2'. none of the digests the DCH receives reflect a member's awareness of
     the CH's heartbeat;
C3'. the DCH does not receive the CH's R-3 health status update:
     probability ``p``.

For C2', the key asymmetry the paper highlights is that *every* member is
within the CH's transmission range by construction, so each of the other
``N - 2`` members (excluding the CH and the DCH) hears the CH's heartbeat
with probability ``1 - p``; its digest then reaches the DCH with
probability ``1 - p`` (the deputy ranking places the DCH centrally, so its
reception disk covers the cluster -- the ``dch_distance`` parameter
generalizes this).  A member therefore fails to witness the CH with
probability ``1 - (1-p)^2 = p * (2 - p)``, giving::

    P(FDoCH) = p^3 * (p * (2 - p))^{N-2}

This reproduces Figure 6's reported magnitudes: for ``N = 50, p = 0.5`` the
value is ~1.3e-7 (the paper: "still below 10^-6"), and at ``N = 100,
p = 0.05`` it is ~1e-103 (the paper's axis reaches 1e-120).  It also
reproduces the paper's qualitative finding that the DCH is *less* likely
than the CH to false-detect, because the CH's heartbeat is heard by the
whole cluster while an edge member's is heard by a fraction ``a < 1``.
"""

from __future__ import annotations

import math

from repro.analysis.geometry import PAPER_TRANSMISSION_RANGE, overlap_fraction
from repro.util.validation import check_int_at_least, check_probability


def p_false_detection_on_ch_log10(
    n: int,
    p: float,
    dch_distance: float = 0.0,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> float:
    """``log10`` of P(False detection on CH).

    ``dch_distance`` generalizes the witness condition: a member's digest
    can only reach a DCH at distance ``d`` from the CH if the member lies
    in the DCH's reception lens (probability ``a(d)``), so the per-member
    witness probability becomes ``a(d) * (1-p)^2``.  The paper's implicit
    setting is a central DCH (``d = 0``, ``a = 1``).
    """
    check_int_at_least("n", n, 2)
    check_probability("p", p)
    if p == 0.0:
        return -math.inf
    a = 1.0 if dch_distance == 0.0 else overlap_fraction(dch_distance, radius)
    witness = a * (1.0 - p) ** 2
    log_p = 3.0 * math.log(p) + (n - 2) * math.log1p(-witness)
    return log_p / math.log(10.0)


def p_false_detection_on_ch(
    n: int,
    p: float,
    dch_distance: float = 0.0,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> float:
    """P(False detection on CH); 0.0 when below float range (see log10)."""
    log10_value = p_false_detection_on_ch_log10(n, p, dch_distance, radius)
    if log10_value == -math.inf:
        return 0.0
    return 10.0**log10_value if log10_value > -307 else 0.0
