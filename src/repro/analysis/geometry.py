"""Section 5 geometry, in the paper's notation.

- ``Au`` (:func:`cluster_area`): the total area of the cluster -- a disk of
  radius ``R`` (the transmission range) around the CH.
- ``An`` (:func:`neighborhood_area`): the part of the cluster within
  member ``v``'s own transmission range when ``v`` is at distance ``d``
  from the CH -- the lens of Figure 4.
- ``a = An / Au`` (:func:`overlap_fraction`): the probability that a
  uniformly placed other member is an in-cluster neighbor of ``v``.

The paper evaluates its bounds at the worst case ``d = R`` (``v`` on the
circumference, Figure 4(b)), where ``a = (2*pi/3 - sqrt(3)/2) / pi``
(:func:`worst_case_fraction`).
"""

from __future__ import annotations

from repro.errors import AnalysisError
from repro.util.geometry import (
    WORST_CASE_OVERLAP_FRACTION,
    disk_area,
    lens_area,
)
from repro.util.validation import check_positive

#: The paper's default transmission range (Section 5): 100 meters.
PAPER_TRANSMISSION_RANGE = 100.0


def cluster_area(radius: float = PAPER_TRANSMISSION_RANGE) -> float:
    """``Au``: the area of the cluster disk."""
    return disk_area(radius)


def neighborhood_area(
    distance: float, radius: float = PAPER_TRANSMISSION_RANGE
) -> float:
    """``An``: area of the cluster within range of a member at ``distance``."""
    check_positive("radius", radius)
    if not 0.0 <= distance <= radius:
        raise AnalysisError(
            f"a cluster member's distance from the CH must be in [0, R]; "
            f"got {distance} with R={radius}"
        )
    return lens_area(radius, distance)


def overlap_fraction(
    distance: float, radius: float = PAPER_TRANSMISSION_RANGE
) -> float:
    """``a = An / Au`` for a member at ``distance`` from the CH."""
    return neighborhood_area(distance, radius) / cluster_area(radius)


def worst_case_fraction() -> float:
    """``a`` at the paper's worst case ``d = R`` (~= 0.391)."""
    return WORST_CASE_OVERLAP_FRACTION
