"""Confidence intervals for Monte Carlo estimates."""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import AnalysisError

#: z-scores for common confidence levels.
_Z = {0.90: 1.6448536269514722, 0.95: 1.959963984540054, 0.99: 2.5758293035489004}


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.99
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because Monte Carlo twins of
    the paper's measures often see zero or near-zero success counts, where
    Wald intervals degenerate to a width of zero.
    """
    if trials <= 0:
        raise AnalysisError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise AnalysisError(
            f"successes must be in [0, {trials}], got {successes}"
        )
    try:
        z = _Z[confidence]
    except KeyError:
        raise AnalysisError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        ) from None
    phat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (phat + z2 / (2 * trials)) / denom
    spread = (
        z
        * math.sqrt(phat * (1.0 - phat) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    return (max(0.0, center - spread), min(1.0, center + spread))
