"""Monte Carlo twins of the Section 5 measures.

Each estimator samples the same probability space the analytic formula
integrates over -- uniform member placement in the cluster disk and iid
Bernoulli message loss -- and counts the failure event directly.

Because every measure factors into ``prefactor * P(conditional event)``
where the prefactor is an exact power of ``p`` (the direct losses at the
detecting authority), the estimators sample only the *conditional* event
and multiply by the exact prefactor.  This keeps the estimators usable even
where the full event probability is far below 1/trials: the conditional
part (no witness / no rescuer) is many orders of magnitude larger.

Each returns an :class:`McEstimate` carrying the conditional success count
so callers can attach a Wilson interval to the conditional mean and scale
it by the prefactor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.confidence import wilson_interval
from repro.analysis.geometry import PAPER_TRANSMISSION_RANGE
from repro.errors import AnalysisError
from repro.util.validation import check_int_at_least, check_probability


@dataclass(frozen=True)
class McEstimate:
    """A Monte Carlo estimate of ``prefactor * conditional_probability``."""

    estimate: float
    prefactor: float
    conditional_successes: int
    trials: int

    @property
    def conditional_mean(self) -> float:
        return self.conditional_successes / self.trials

    def interval(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Wilson CI on the conditional part, scaled by the prefactor."""
        low, high = wilson_interval(
            self.conditional_successes, self.trials, confidence
        )
        return (self.prefactor * low, self.prefactor * high)

    def contains(self, value: float, confidence: float = 0.99) -> bool:
        """Whether ``value`` lies inside the scaled interval."""
        low, high = self.interval(confidence)
        return low <= value <= high


def _check(n: int, p: float, trials: int) -> None:
    check_int_at_least("n", n, 2)
    check_probability("p", p)
    check_int_at_least("trials", trials, 1)


def _member_positions(
    rng: np.random.Generator, trials: int, count: int, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """(trials, count) x/y arrays of uniform-in-disk member positions."""
    r = radius * np.sqrt(rng.uniform(size=(trials, count)))
    theta = rng.uniform(0.0, 2.0 * math.pi, size=(trials, count))
    return r * np.cos(theta), r * np.sin(theta)


def mc_false_detection(
    n: int,
    p: float,
    trials: int,
    rng: np.random.Generator,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> McEstimate:
    """Monte Carlo P^(False detection) for a member at ``distance``.

    Samples the other ``N - 2`` members, then checks that no in-cluster
    neighbor of ``v`` both overheard the heartbeat and delivered its digest
    to the CH; multiplies by the exact prefactor ``p**2``.
    """
    _check(n, p, trials)
    d = radius if distance is None else distance
    if not 0.0 <= d <= radius:
        raise AnalysisError(f"distance must be in [0, R], got {d}")
    m = n - 2
    xs, ys = _member_positions(rng, trials, m, radius)
    # v sits at (d, 0); CH at the origin.  Rotational symmetry makes the
    # angular position of v irrelevant.
    neighbor = (xs - d) ** 2 + ys**2 <= radius * radius
    overheard = rng.uniform(size=(trials, m)) > p
    digest_ok = rng.uniform(size=(trials, m)) > p
    witnessed = np.any(neighbor & overheard & digest_ok, axis=1)
    successes = int(np.count_nonzero(~witnessed))
    prefactor = p * p
    return McEstimate(
        estimate=prefactor * successes / trials,
        prefactor=prefactor,
        conditional_successes=successes,
        trials=trials,
    )


def mc_false_detection_on_ch(
    n: int,
    p: float,
    trials: int,
    rng: np.random.Generator,
    dch_distance: float = 0.0,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> McEstimate:
    """Monte Carlo P(False detection on CH).

    The witness chain for each of the other ``N - 2`` members: hear the
    CH's heartbeat (every member is in the CH's range by construction),
    lie within the DCH's reception lens (automatic when
    ``dch_distance == 0``), and deliver its digest to the DCH.  Prefactor:
    ``p**3`` (CH heartbeat, CH digest, and R-3 update all lost at the DCH).
    """
    _check(n, p, trials)
    if not 0.0 <= dch_distance <= radius:
        raise AnalysisError(
            f"dch_distance must be in [0, R], got {dch_distance}"
        )
    m = n - 2
    heard_ch = rng.uniform(size=(trials, m)) > p
    digest_ok = rng.uniform(size=(trials, m)) > p
    if dch_distance > 0.0:
        xs, ys = _member_positions(rng, trials, m, radius)
        in_dch_range = (xs - dch_distance) ** 2 + ys**2 <= radius * radius
    else:
        in_dch_range = np.ones((trials, m), dtype=bool)
    witnessed = np.any(heard_ch & in_dch_range & digest_ok, axis=1)
    successes = int(np.count_nonzero(~witnessed))
    prefactor = p**3
    return McEstimate(
        estimate=prefactor * successes / trials,
        prefactor=prefactor,
        conditional_successes=successes,
        trials=trials,
    )


def mc_incompleteness(
    n: int,
    p: float,
    trials: int,
    rng: np.random.Generator,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> McEstimate:
    """Monte Carlo P^(Incompleteness) for a member at ``distance``.

    Conditional event: no in-cluster neighbor of ``v`` is a successful
    progressive peer forwarder (received the update, heard the request,
    delivered the copy).  Prefactor: ``p`` (the R-3 broadcast lost at v).
    """
    _check(n, p, trials)
    d = radius if distance is None else distance
    if not 0.0 <= d <= radius:
        raise AnalysisError(f"distance must be in [0, R], got {d}")
    m = n - 2
    xs, ys = _member_positions(rng, trials, m, radius)
    neighbor = (xs - d) ** 2 + ys**2 <= radius * radius
    has_update = rng.uniform(size=(trials, m)) > p
    heard_request = rng.uniform(size=(trials, m)) > p
    forward_ok = rng.uniform(size=(trials, m)) > p
    rescued = np.any(neighbor & has_update & heard_request & forward_ok, axis=1)
    successes = int(np.count_nonzero(~rescued))
    return McEstimate(
        estimate=p * successes / trials,
        prefactor=p,
        conditional_successes=successes,
        trials=trials,
    )
