"""Monte Carlo twins of the Section 5 measures.

Each estimator samples the same probability space the analytic formula
integrates over -- uniform member placement in the cluster disk and iid
Bernoulli message loss -- and counts the failure event directly.

Because every measure factors into ``prefactor * P(conditional event)``
where the prefactor is an exact power of ``p`` (the direct losses at the
detecting authority), the estimators sample only the *conditional* event
and multiply by the exact prefactor.  This keeps the estimators usable even
where the full event probability is far below 1/trials: the conditional
part (no witness / no rescuer) is many orders of magnitude larger.

Each returns an :class:`McEstimate` carrying the conditional success count
so callers can attach a Wilson interval to the conditional mean and scale
it by the prefactor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.confidence import wilson_interval
from repro.analysis.geometry import PAPER_TRANSMISSION_RANGE
from repro.errors import AnalysisError, ConfigurationError
from repro.util.parallel import chunk_sizes, parallel_map, spawn_seed_sequences
from repro.util.validation import check_int_at_least, check_probability


@dataclass(frozen=True)
class McEstimate:
    """A Monte Carlo estimate of ``prefactor * conditional_probability``.

    ``n`` and ``p`` record the measure parameters the estimate was sampled
    at; :func:`merge_estimates` refuses to pool estimates of *different*
    measures, which would silently produce a meaningless average.  They
    default to ``None`` for hand-built estimates that carry no provenance.
    """

    estimate: float
    prefactor: float
    conditional_successes: int
    trials: int
    n: Optional[int] = None
    p: Optional[float] = None

    @property
    def conditional_mean(self) -> float:
        return self.conditional_successes / self.trials

    def interval(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Wilson CI on the conditional part, scaled by the prefactor."""
        low, high = wilson_interval(
            self.conditional_successes, self.trials, confidence
        )
        return (self.prefactor * low, self.prefactor * high)

    def contains(self, value: float, confidence: float = 0.99) -> bool:
        """Whether ``value`` lies inside the scaled interval."""
        low, high = self.interval(confidence)
        return low <= value <= high


def _check(n: int, p: float, trials: int) -> None:
    check_int_at_least("n", n, 2)
    check_probability("p", p)
    check_int_at_least("trials", trials, 1)


def _member_positions(
    rng: np.random.Generator, trials: int, count: int, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """(trials, count) x/y arrays of uniform-in-disk member positions."""
    r = radius * np.sqrt(rng.uniform(size=(trials, count)))
    theta = rng.uniform(0.0, 2.0 * math.pi, size=(trials, count))
    return r * np.cos(theta), r * np.sin(theta)


def mc_false_detection(
    n: int,
    p: float,
    trials: int,
    rng: np.random.Generator,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> McEstimate:
    """Monte Carlo P^(False detection) for a member at ``distance``.

    Samples the other ``N - 2`` members, then checks that no in-cluster
    neighbor of ``v`` both overheard the heartbeat and delivered its digest
    to the CH; multiplies by the exact prefactor ``p**2``.
    """
    _check(n, p, trials)
    d = radius if distance is None else distance
    if not 0.0 <= d <= radius:
        raise AnalysisError(f"distance must be in [0, R], got {d}")
    m = n - 2
    xs, ys = _member_positions(rng, trials, m, radius)
    # v sits at (d, 0); CH at the origin.  Rotational symmetry makes the
    # angular position of v irrelevant.
    neighbor = (xs - d) ** 2 + ys**2 <= radius * radius
    overheard = rng.uniform(size=(trials, m)) > p
    digest_ok = rng.uniform(size=(trials, m)) > p
    witnessed = np.any(neighbor & overheard & digest_ok, axis=1)
    successes = int(np.count_nonzero(~witnessed))
    prefactor = p * p
    return McEstimate(
        estimate=prefactor * successes / trials,
        prefactor=prefactor,
        conditional_successes=successes,
        trials=trials,
        n=n,
        p=p,
    )


def mc_false_detection_on_ch(
    n: int,
    p: float,
    trials: int,
    rng: np.random.Generator,
    dch_distance: float = 0.0,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> McEstimate:
    """Monte Carlo P(False detection on CH).

    The witness chain for each of the other ``N - 2`` members: hear the
    CH's heartbeat (every member is in the CH's range by construction),
    lie within the DCH's reception lens (automatic when
    ``dch_distance == 0``), and deliver its digest to the DCH.  Prefactor:
    ``p**3`` (CH heartbeat, CH digest, and R-3 update all lost at the DCH).
    """
    _check(n, p, trials)
    if not 0.0 <= dch_distance <= radius:
        raise AnalysisError(
            f"dch_distance must be in [0, R], got {dch_distance}"
        )
    m = n - 2
    heard_ch = rng.uniform(size=(trials, m)) > p
    digest_ok = rng.uniform(size=(trials, m)) > p
    if dch_distance > 0.0:
        xs, ys = _member_positions(rng, trials, m, radius)
        in_dch_range = (xs - dch_distance) ** 2 + ys**2 <= radius * radius
    else:
        in_dch_range = np.ones((trials, m), dtype=bool)
    witnessed = np.any(heard_ch & in_dch_range & digest_ok, axis=1)
    successes = int(np.count_nonzero(~witnessed))
    prefactor = p**3
    return McEstimate(
        estimate=prefactor * successes / trials,
        prefactor=prefactor,
        conditional_successes=successes,
        trials=trials,
        n=n,
        p=p,
    )


def mc_incompleteness(
    n: int,
    p: float,
    trials: int,
    rng: np.random.Generator,
    distance: float | None = None,
    radius: float = PAPER_TRANSMISSION_RANGE,
) -> McEstimate:
    """Monte Carlo P^(Incompleteness) for a member at ``distance``.

    Conditional event: no in-cluster neighbor of ``v`` is a successful
    progressive peer forwarder (received the update, heard the request,
    delivered the copy).  Prefactor: ``p`` (the R-3 broadcast lost at v).
    """
    _check(n, p, trials)
    d = radius if distance is None else distance
    if not 0.0 <= d <= radius:
        raise AnalysisError(f"distance must be in [0, R], got {d}")
    m = n - 2
    xs, ys = _member_positions(rng, trials, m, radius)
    neighbor = (xs - d) ** 2 + ys**2 <= radius * radius
    has_update = rng.uniform(size=(trials, m)) > p
    heard_request = rng.uniform(size=(trials, m)) > p
    forward_ok = rng.uniform(size=(trials, m)) > p
    rescued = np.any(neighbor & has_update & heard_request & forward_ok, axis=1)
    successes = int(np.count_nonzero(~rescued))
    return McEstimate(
        estimate=p * successes / trials,
        prefactor=p,
        conditional_successes=successes,
        trials=trials,
        n=n,
        p=p,
    )


# ----------------------------------------------------------------------
# Chunked / multi-worker execution
# ----------------------------------------------------------------------

#: An estimator callable: ``(n, p, trials, rng, **kwargs) -> McEstimate``.
McEstimator = Callable[..., McEstimate]

#: Fixed default chunk count for :func:`mc_chunked`.  Deliberately *not*
#: derived from the worker count: the chunking scheme (and hence the
#: per-chunk RNG streams) must depend only on the estimator inputs so that
#: serial and parallel executions return bit-identical estimates.
DEFAULT_MC_CHUNKS = 8


def merge_estimates(estimates: Sequence[McEstimate]) -> McEstimate:
    """Pool independent estimates of the same measure into one.

    Conditional successes and trials add; the (exact) prefactor must agree
    across all parts, and so must the measure parameters ``(n, p)`` when
    the estimates carry them -- pooling counts sampled at different
    parameters would average two different probabilities into a number
    that estimates neither.
    """
    estimates = list(estimates)
    if not estimates:
        raise ConfigurationError(
            "merge_estimates needs at least one estimate; got an empty "
            "sequence (did a chunked run produce no chunks?)"
        )
    head = estimates[0]
    for part in estimates[1:]:
        if (part.n, part.p) != (head.n, head.p):
            raise ConfigurationError(
                "cannot merge estimates of different measures: "
                f"(n={head.n}, p={head.p}) vs (n={part.n}, p={part.p})"
            )
    prefactor = head.prefactor
    if any(e.prefactor != prefactor for e in estimates):
        raise AnalysisError("cannot merge estimates with different prefactors")
    successes = sum(e.conditional_successes for e in estimates)
    trials = sum(e.trials for e in estimates)
    return McEstimate(
        estimate=prefactor * successes / trials,
        prefactor=prefactor,
        conditional_successes=successes,
        trials=trials,
        n=head.n,
        p=head.p,
    )


def _run_mc_chunk(task) -> McEstimate:
    """Worker entry point: one seeded chunk of trials (picklable)."""
    estimator, n, p, trials, seed_seq, kwargs = task
    return estimator(n, p, trials, np.random.default_rng(seed_seq), **kwargs)


def mc_chunked(
    estimator: McEstimator,
    n: int,
    p: float,
    trials: int,
    seed: int,
    chunks: int = DEFAULT_MC_CHUNKS,
    workers: Optional[int] = 1,
    **kwargs: object,
) -> McEstimate:
    """Run ``estimator`` over ``trials`` split into seeded chunks.

    Each chunk draws from its own :class:`~numpy.random.SeedSequence`
    child of ``seed`` and the chunk results are merged in chunk order, so
    the estimate depends only on ``(estimator, n, p, trials, seed,
    chunks, kwargs)`` -- **never** on ``workers``.  ``workers=1`` runs the
    chunks serially in-process; larger values (or ``None`` for all CPUs)
    fan them over a process pool.  Extra ``kwargs`` (``distance``,
    ``radius``, ...) are forwarded to the estimator.
    """
    check_int_at_least("trials", trials, 1)
    check_int_at_least("chunks", chunks, 1)
    sizes = chunk_sizes(trials, chunks)
    seqs = spawn_seed_sequences(seed, len(sizes))
    tasks = [
        (estimator, int(n), float(p), size, seq, dict(kwargs))
        for size, seq in zip(sizes, seqs)
    ]
    return merge_estimates(parallel_map(_run_mc_chunk, tasks, workers=workers))
