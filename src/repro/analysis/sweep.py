"""Parameter sweeps producing figure-shaped series.

Every figure in the paper is a family of curves: a measure evaluated over
``p`` in [0.05, 0.5] for ``N`` in {50, 75, 100}.  :func:`sweep_measure`
produces exactly that shape for any measure callable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

from repro.errors import AnalysisError

#: The paper's p-axis: 0.05 to 0.50 in steps of 0.05.
PAPER_P_GRID: Tuple[float, ...] = tuple(round(0.05 * i, 2) for i in range(1, 11))

#: The paper's cluster populations.
PAPER_N_VALUES: Tuple[int, ...] = (50, 75, 100)


@dataclass(frozen=True)
class MeasureSeries:
    """One reproduced figure: x grid plus one curve per N."""

    name: str
    p_values: Tuple[float, ...]
    curves: Dict[int, Tuple[float, ...]] = field(default_factory=dict)

    def value_at(self, n: int, p: float) -> float:
        """The measured value at (N, p); raises if not on the grid."""
        try:
            index = self.p_values.index(p)
        except ValueError:
            raise AnalysisError(f"p={p} is not on the sweep grid") from None
        try:
            return self.curves[n][index]
        except KeyError:
            raise AnalysisError(f"N={n} is not in the sweep") from None

    def as_rows(self) -> list[list[float]]:
        """Rows of [p, curve_N1, curve_N2, ...] for table rendering."""
        ns = sorted(self.curves)
        return [
            [p, *(self.curves[n][i] for n in ns)]
            for i, p in enumerate(self.p_values)
        ]


def sweep_measure(
    name: str,
    measure: Callable[[int, float], float],
    p_values: Sequence[float] = PAPER_P_GRID,
    n_values: Sequence[int] = PAPER_N_VALUES,
) -> MeasureSeries:
    """Evaluate ``measure(n, p)`` over the grid; returns the series."""
    if not p_values:
        raise AnalysisError("p_values must be non-empty")
    if not n_values:
        raise AnalysisError("n_values must be non-empty")
    curves = {
        int(n): tuple(measure(int(n), float(p)) for p in p_values)
        for n in n_values
    }
    return MeasureSeries(name=name, p_values=tuple(p_values), curves=curves)
