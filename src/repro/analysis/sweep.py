"""Parameter sweeps producing figure-shaped series.

Every figure in the paper is a family of curves: a measure evaluated over
``p`` in [0.05, 0.5] for ``N`` in {50, 75, 100}.  :func:`sweep_measure`
produces exactly that shape for any measure callable.

Grid points are independent, so a sweep over an expensive measure (e.g. a
protocol-in-the-loop scenario) parallelizes embarrassingly: pass
``workers > 1``.  The grid is always evaluated N-major/p-minor and
reassembled in that order, so the series is bit-identical for any worker
count; with ``workers > 1`` the measure must be picklable (a module-level
function or :func:`functools.partial`, not a lambda) and should be pure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import AnalysisError
from repro.util.parallel import parallel_map

#: The paper's p-axis: 0.05 to 0.50 in steps of 0.05.
PAPER_P_GRID: Tuple[float, ...] = tuple(round(0.05 * i, 2) for i in range(1, 11))

#: The paper's cluster populations.
PAPER_N_VALUES: Tuple[int, ...] = (50, 75, 100)


@dataclass(frozen=True)
class MeasureSeries:
    """One reproduced figure: x grid plus one curve per N."""

    name: str
    p_values: Tuple[float, ...]
    curves: Dict[int, Tuple[float, ...]] = field(default_factory=dict)

    def value_at(self, n: int, p: float) -> float:
        """The measured value at (N, p); raises if not on the grid."""
        try:
            index = self.p_values.index(p)
        except ValueError:
            raise AnalysisError(f"p={p} is not on the sweep grid") from None
        try:
            return self.curves[n][index]
        except KeyError:
            raise AnalysisError(f"N={n} is not in the sweep") from None

    def as_rows(self) -> list[list[float]]:
        """Rows of [p, curve_N1, curve_N2, ...] for table rendering."""
        ns = sorted(self.curves)
        return [
            [p, *(self.curves[n][i] for n in ns)]
            for i, p in enumerate(self.p_values)
        ]


class _PointEval:
    """Picklable adapter: evaluates ``measure`` at one ``(n, p)`` point."""

    def __init__(self, measure: Callable[[int, float], float]) -> None:
        self.measure = measure

    def __call__(self, point: Tuple[int, float]) -> float:
        n, p = point
        return float(self.measure(n, p))


def sweep_measure(
    name: str,
    measure: Callable[[int, float], float],
    p_values: Sequence[float] = PAPER_P_GRID,
    n_values: Sequence[int] = PAPER_N_VALUES,
    workers: Optional[int] = 1,
) -> MeasureSeries:
    """Evaluate ``measure(n, p)`` over the grid; returns the series.

    ``workers=1`` evaluates serially in N-major/p-minor order (exactly the
    historical behavior, so stateful measures keep seeing the same call
    order); larger values fan the grid points over a process pool, which
    requires ``measure`` to be picklable and pure.
    """
    if not p_values:
        raise AnalysisError("p_values must be non-empty")
    if not n_values:
        raise AnalysisError("n_values must be non-empty")
    grid = [(int(n), float(p)) for n in n_values for p in p_values]
    values = parallel_map(_PointEval(measure), grid, workers=workers)
    width = len(p_values)
    curves = {
        int(n): tuple(values[i * width : (i + 1) * width])
        for i, n in enumerate(n_values)
    }
    return MeasureSeries(name=name, p_values=tuple(p_values), curves=curves)
