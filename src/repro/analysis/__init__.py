"""Probabilistic analysis of the FDS (Section 5 of the paper).

Each measure comes in three independent forms that the test suite
cross-checks against each other:

- the paper's **literal** formulation (double binomial sums),
- an algebraically collapsed **closed form** (log-domain, exact far below
  float underflow),
- a **Monte Carlo twin** that samples placements and loss outcomes.

The figure-reproduction benchmarks evaluate the closed forms over the
paper's parameter grid (p in [0.05, 0.5], N in {50, 75, 100}, R = 100 m).
"""

from repro.analysis.ch_false_detection import (
    p_false_detection_on_ch,
    p_false_detection_on_ch_log10,
)
from repro.analysis.confidence import wilson_interval
from repro.analysis.false_detection import (
    p_false_detection,
    p_false_detection_literal,
    p_false_detection_log10,
)
from repro.analysis.geometry import (
    cluster_area,
    neighborhood_area,
    overlap_fraction,
    worst_case_fraction,
)
from repro.analysis.incompleteness import (
    p_incompleteness,
    p_incompleteness_literal,
    p_incompleteness_log10,
)
from repro.analysis.montecarlo import (
    mc_chunked,
    mc_false_detection,
    mc_false_detection_on_ch,
    mc_incompleteness,
    merge_estimates,
)
from repro.analysis.reachability import dch_reachability_failure
from repro.analysis.sweep import MeasureSeries, sweep_measure

__all__ = [
    "cluster_area",
    "neighborhood_area",
    "overlap_fraction",
    "worst_case_fraction",
    "p_false_detection",
    "p_false_detection_literal",
    "p_false_detection_log10",
    "p_false_detection_on_ch",
    "p_false_detection_on_ch_log10",
    "p_incompleteness",
    "p_incompleteness_literal",
    "p_incompleteness_log10",
    "mc_chunked",
    "mc_false_detection",
    "mc_false_detection_on_ch",
    "mc_incompleteness",
    "merge_estimates",
    "dch_reachability_failure",
    "wilson_interval",
    "MeasureSeries",
    "sweep_measure",
]
