"""ASCII field maps: positions, roles, and liveness at a glance.

No plotting dependency; the map is a character grid where each cell shows
the most prominent node inside it:

====  =============================================
 `H`  clusterhead
 `D`  deputy clusterhead
 `G`  gateway
 `B`  backup gateway
 `o`  ordinary member
 `?`  unmarked / unclustered
 `x`  crashed (any role)
====  =============================================

Prominence order: crashed markers win (that is what an operator scans
for), then backbone roles, then members.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set

from repro.cluster.state import ClusterLayout
from repro.errors import ConfigurationError
from repro.types import NodeId, NodeRole
from repro.util.geometry import Vec2

_ROLE_CHARS = {
    NodeRole.CH: "H",
    NodeRole.DCH: "D",
    NodeRole.GW: "G",
    NodeRole.BGW: "B",
    NodeRole.OM: "o",
    NodeRole.UNMARKED: "?",
}

#: Higher wins when several nodes share a cell.
_PROMINENCE = {"x": 6, "H": 5, "D": 4, "G": 3, "B": 2, "o": 1, "?": 0}


def render_field_map(
    positions: Mapping[NodeId, Vec2],
    layout: Optional[ClusterLayout] = None,
    crashed: Optional[Set[NodeId]] = None,
    width: int = 72,
    height: int = 24,
) -> str:
    """The field as a character grid with a legend line.

    ``layout`` supplies roles (all nodes render as ``o`` without it);
    ``crashed`` nodes render as ``x`` regardless of role.
    """
    if not positions:
        raise ConfigurationError("nothing to draw")
    if width < 8 or height < 4:
        raise ConfigurationError("map must be at least 8x4 characters")
    dead = crashed or set()
    xs = [p.x for p in positions.values()]
    ys = [p.y for p in positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    grid: Dict[tuple[int, int], str] = {}
    for node_id, pos in positions.items():
        col = min(width - 1, int((pos.x - min_x) / span_x * (width - 1)))
        row = min(height - 1, int((pos.y - min_y) / span_y * (height - 1)))
        if node_id in dead:
            char = "x"
        elif layout is not None:
            char = _ROLE_CHARS[layout.role_of(node_id)]
        else:
            char = "o"
        existing = grid.get((row, col))
        if existing is None or _PROMINENCE[char] > _PROMINENCE[existing]:
            grid[(row, col)] = char

    lines = []
    for row in range(height - 1, -1, -1):  # y grows upward
        lines.append(
            "".join(grid.get((row, col), ".") for col in range(width))
        )
    lines.append(
        "legend: H=head D=deputy G=gateway B=backup o=member ?=unmarked "
        "x=crashed .=empty"
    )
    return "\n".join(lines)
