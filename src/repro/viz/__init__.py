"""Dependency-free visualization helpers (plain text)."""

from repro.viz.ascii_map import render_field_map

__all__ = ["render_field_map"]
