"""Node placement generators.

All placements return ``dict[NodeId, Vec2]`` keyed by consecutive NIDs
starting at ``first_id``.  NIDs are assigned in generation order, which for
uniform placements means they carry no spatial information -- important
because the lowest-ID clustering policy must not be accidentally correlated
with geometry.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.types import NodeId
from repro.util.geometry import Vec2, sample_in_disk
from repro.util.validation import check_int_at_least, check_positive

Placement = Dict[NodeId, Vec2]


def _check_count(count: int) -> int:
    return check_int_at_least("count", count, 1)


def uniform_disk_placement(
    count: int,
    radius: float,
    rng: np.random.Generator,
    center: Vec2 = Vec2(0.0, 0.0),
    first_id: int = 0,
) -> Placement:
    """``count`` nodes uniform in the disk -- the paper's Section 5 setting.

    With ``radius`` equal to the transmission range, every node is a one-hop
    neighbor of a host at the center, i.e. the placement is a valid cluster
    around a central CH.
    """
    _check_count(count)
    check_positive("radius", radius)
    return {
        NodeId(first_id + i): sample_in_disk(rng, center, radius)
        for i in range(count)
    }


def uniform_rect_placement(
    count: int,
    width: float,
    height: float,
    rng: np.random.Generator,
    origin: Vec2 = Vec2(0.0, 0.0),
    first_id: int = 0,
) -> Placement:
    """``count`` nodes uniform in a ``width x height`` rectangle."""
    _check_count(count)
    check_positive("width", width)
    check_positive("height", height)
    xs = rng.uniform(origin.x, origin.x + width, size=count)
    ys = rng.uniform(origin.y, origin.y + height, size=count)
    return {
        NodeId(first_id + i): Vec2(float(xs[i]), float(ys[i])) for i in range(count)
    }


def grid_placement(
    rows: int,
    cols: int,
    spacing: float,
    origin: Vec2 = Vec2(0.0, 0.0),
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
    first_id: int = 0,
) -> Placement:
    """A ``rows x cols`` lattice with optional uniform jitter.

    Deterministic when ``jitter == 0``; useful for tests that need exact
    neighbor structure.
    """
    check_int_at_least("rows", rows, 1)
    check_int_at_least("cols", cols, 1)
    check_positive("spacing", spacing)
    if jitter < 0:
        raise TopologyError(f"jitter must be >= 0, got {jitter}")
    if jitter > 0 and rng is None:
        raise TopologyError("jitter > 0 requires an rng")
    placement: Placement = {}
    i = 0
    for r in range(rows):
        for c in range(cols):
            dx = dy = 0.0
            if jitter > 0:
                assert rng is not None
                dx = float(rng.uniform(-jitter, jitter))
                dy = float(rng.uniform(-jitter, jitter))
            placement[NodeId(first_id + i)] = Vec2(
                origin.x + c * spacing + dx, origin.y + r * spacing + dy
            )
            i += 1
    return placement


def gaussian_blobs_placement(
    counts: Sequence[int],
    centers: Sequence[Vec2],
    sigma: float,
    rng: np.random.Generator,
    first_id: int = 0,
) -> Placement:
    """Gaussian blobs: ``counts[i]`` nodes around ``centers[i]``.

    Models a field seeded by discrete air-drops, each scattering around its
    release point.
    """
    if len(counts) != len(centers):
        raise TopologyError("counts and centers must have the same length")
    check_positive("sigma", sigma)
    placement: Placement = {}
    next_id = first_id
    for count, center in zip(counts, centers):
        check_int_at_least("blob count", count, 1)
        for _ in range(count):
            placement[NodeId(next_id)] = Vec2(
                center.x + float(rng.normal(0.0, sigma)),
                center.y + float(rng.normal(0.0, sigma)),
            )
            next_id += 1
    return placement


def cluster_disk_placement(
    member_count: int,
    radius: float,
    rng: np.random.Generator,
    center: Vec2 = Vec2(0.0, 0.0),
    ch_id: int = 0,
    worst_case_member: bool = False,
) -> Placement:
    """A single analysis cluster: a CH at the center plus uniform members.

    The CH gets the lowest NID (``ch_id``) so lowest-ID clustering elects
    it.  When ``worst_case_member`` is set, the *highest*-NID member is
    placed exactly on the circumference -- the worst case of Figure 4(b)
    that the paper's bounds are computed against.
    """
    check_int_at_least("member_count", member_count, 1)
    check_positive("radius", radius)
    placement: Placement = {NodeId(ch_id): center}
    for i in range(member_count):
        placement[NodeId(ch_id + 1 + i)] = sample_in_disk(rng, center, radius)
    if worst_case_member:
        theta = float(rng.uniform(0.0, 2.0 * math.pi))
        placement[NodeId(ch_id + member_count)] = Vec2(
            center.x + radius * math.cos(theta), center.y + radius * math.sin(theta)
        )
    return placement
