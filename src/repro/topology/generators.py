"""Scenario topology generators.

These compose the low-level placements into the field layouts the paper's
introduction motivates: a single analysis cluster (Section 5), a large
uniform sensor field, a multi-cluster field with guaranteed CH spacing, and
a corridor (chain of clusters) that stresses inter-cluster forwarding depth.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.errors import TopologyError
from repro.topology.placement import (
    Placement,
    cluster_disk_placement,
    uniform_rect_placement,
)
from repro.types import NodeId
from repro.util.geometry import Vec2, sample_in_disk
from repro.util.validation import check_int_at_least, check_positive


def single_cluster_disk(
    member_count: int,
    radius: float,
    rng: np.random.Generator,
    worst_case_member: bool = False,
) -> Placement:
    """The paper's Section 5 setting: one CH-centered cluster disk.

    ``member_count`` is the number of non-CH members; total population is
    ``member_count + 1`` (the paper's ``N`` counts all hosts in the
    cluster, so pass ``member_count = N - 1``).
    """
    return cluster_disk_placement(
        member_count=member_count,
        radius=radius,
        rng=rng,
        worst_case_member=worst_case_member,
    )


def uniform_field(
    count: int,
    width: float,
    height: float,
    rng: np.random.Generator,
) -> Placement:
    """A large uniformly seeded field (air-dropped sensor network)."""
    return uniform_rect_placement(count, width, height, rng)


def multi_cluster_field(
    cluster_count: int,
    members_per_cluster: int,
    radius: float,
    rng: np.random.Generator,
    spacing_factor: float = 1.6,
    columns: int | None = None,
) -> Placement:
    """A lattice of overlapping cluster disks with CHs at lattice points.

    CH spacing defaults to ``1.6 * radius``: close enough that neighboring
    cluster disks overlap (so gateway candidates exist, feature F1), far
    enough apart that CHs are not neighbors of each other.  CHs receive the
    lowest NIDs (0..cluster_count-1) so the lowest-ID policy elects exactly
    the intended centers; member NIDs follow.
    """
    check_int_at_least("cluster_count", cluster_count, 1)
    check_int_at_least("members_per_cluster", members_per_cluster, 1)
    check_positive("radius", radius)
    if not 1.0 < spacing_factor < 2.0:
        raise TopologyError(
            "spacing_factor must be in (1, 2) so disks overlap without "
            f"CHs being mutual neighbors; got {spacing_factor}"
        )
    cols = columns if columns is not None else max(1, int(math.ceil(math.sqrt(cluster_count))))
    spacing = spacing_factor * radius
    placement: Placement = {}
    centers: List[Vec2] = []
    for i in range(cluster_count):
        row, col = divmod(i, cols)
        center = Vec2(col * spacing, row * spacing)
        centers.append(center)
        placement[NodeId(i)] = center
    next_id = cluster_count
    for center in centers:
        for _ in range(members_per_cluster):
            placement[NodeId(next_id)] = sample_in_disk(rng, center, radius)
            next_id += 1
    return placement


def corridor_field(
    cluster_count: int,
    members_per_cluster: int,
    radius: float,
    rng: np.random.Generator,
    spacing_factor: float = 1.6,
) -> Placement:
    """A 1-D chain of overlapping clusters.

    Failure reports from one end must cross ``cluster_count - 1`` boundaries
    to reach the other -- the stress case for inter-cluster forwarding and
    the BGW standby mechanism.
    """
    return multi_cluster_field(
        cluster_count=cluster_count,
        members_per_cluster=members_per_cluster,
        radius=radius,
        rng=rng,
        spacing_factor=spacing_factor,
        columns=cluster_count,
    )
