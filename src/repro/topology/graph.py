"""Unit-disk graph over a placement.

The paper models the network as ``G = (V, E)`` where an edge connects nodes
within transmission range of each other (Section 2.3).  This class is the
*ground truth* graph used by topology analysis, the geometric cluster
oracle, and the metrics layer.  Protocol code must not consult it; protocols
learn the topology only by listening.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Mapping, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.types import NodeId
from repro.util.geometry import Vec2
from repro.util.validation import check_positive


class UnitDiskGraph:
    """Immutable unit-disk graph built from positions and a range.

    Neighbor lookups are O(1) after construction; construction uses a
    spatial grid so it is near-linear in the node count.
    """

    def __init__(self, positions: Mapping[NodeId, Vec2], radius: float) -> None:
        check_positive("radius", radius)
        if not positions:
            raise TopologyError("a graph needs at least one node")
        self._positions: Dict[NodeId, Vec2] = dict(positions)
        self._radius = float(radius)
        self._adjacency: Dict[NodeId, Tuple[NodeId, ...]] = {}
        self._build()

    def _build(self) -> None:
        cell = self._radius
        grid: Dict[Tuple[int, int], list[NodeId]] = defaultdict(list)
        for node_id, pos in self._positions.items():
            grid[(int(np.floor(pos.x / cell)), int(np.floor(pos.y / cell)))].append(
                node_id
            )
        adjacency: Dict[NodeId, list[NodeId]] = {nid: [] for nid in self._positions}
        for node_id, pos in self._positions.items():
            cx, cy = int(np.floor(pos.x / cell)), int(np.floor(pos.y / cell))
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for other in grid.get((cx + dx, cy + dy), ()):
                        if other <= node_id:
                            continue
                        if pos.distance_to(self._positions[other]) <= self._radius:
                            adjacency[node_id].append(other)
                            adjacency[other].append(node_id)
        self._adjacency = {
            nid: tuple(sorted(neigh)) for nid, neigh in adjacency.items()
        }

    # ------------------------------------------------------------------
    @property
    def radius(self) -> float:
        """The shared transmission range."""
        return self._radius

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._positions

    def nodes(self) -> Tuple[NodeId, ...]:
        """All NIDs, sorted."""
        return tuple(sorted(self._positions))

    def position(self, node_id: NodeId) -> Vec2:
        try:
            return self._positions[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def positions(self) -> Dict[NodeId, Vec2]:
        """A copy of the position map."""
        return dict(self._positions)

    def neighbors(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """One-hop neighbors of ``node_id``, sorted."""
        try:
            return self._adjacency[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def degree(self, node_id: NodeId) -> int:
        return len(self.neighbors(node_id))

    def edges(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """Each undirected edge once, as ``(low, high)`` pairs."""
        for node_id, neigh in sorted(self._adjacency.items()):
            for other in neigh:
                if other > node_id:
                    yield (node_id, other)

    def edge_count(self) -> int:
        return sum(len(n) for n in self._adjacency.values()) // 2

    def distance(self, a: NodeId, b: NodeId) -> float:
        """Euclidean distance between two nodes."""
        return self.position(a).distance_to(self.position(b))

    def are_neighbors(self, a: NodeId, b: NodeId) -> bool:
        """Whether an edge connects ``a`` and ``b``."""
        return b in self._adjacency.get(a, ())

    def common_neighbors(self, a: NodeId, b: NodeId) -> Tuple[NodeId, ...]:
        """Nodes adjacent to both ``a`` and ``b`` (gateway candidates)."""
        return tuple(sorted(set(self.neighbors(a)) & set(self.neighbors(b))))

    def subgraph(self, node_ids: Iterable[NodeId]) -> "UnitDiskGraph":
        """The induced subgraph on ``node_ids``."""
        keep = set(node_ids)
        missing = keep - set(self._positions)
        if missing:
            raise TopologyError(f"unknown nodes in subgraph request: {sorted(missing)}")
        return UnitDiskGraph(
            {nid: self._positions[nid] for nid in keep}, self._radius
        )
