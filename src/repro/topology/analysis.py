"""Structural analysis of unit-disk graphs.

Connectivity matters for completeness: the paper defines an "operational
node" as one neither crashed nor *partitioned from the network*, so the
metrics layer uses these helpers to exclude partitioned nodes from
completeness accounting.
"""

from __future__ import annotations

from collections import deque
from statistics import mean
from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx

from repro.topology.graph import UnitDiskGraph
from repro.types import NodeId


def connected_components(graph: UnitDiskGraph) -> List[Set[NodeId]]:
    """Connected components, largest first (BFS, no recursion limits)."""
    unvisited = set(graph.nodes())
    components: List[Set[NodeId]] = []
    while unvisited:
        start = min(unvisited)
        component = {start}
        queue = deque([start])
        unvisited.discard(start)
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor in unvisited:
                    unvisited.discard(neighbor)
                    component.add(neighbor)
                    queue.append(neighbor)
        components.append(component)
    components.sort(key=lambda c: (-len(c), min(c)))
    return components


def is_connected(graph: UnitDiskGraph) -> bool:
    """Whether the graph is a single connected component."""
    return len(connected_components(graph)) == 1


def isolated_nodes(graph: UnitDiskGraph) -> Tuple[NodeId, ...]:
    """Nodes with no neighbors (outside everyone's transmission range).

    The clustering algorithm covers "all the nodes except the isolated
    ones"; tests use this to state that invariant precisely.
    """
    return tuple(nid for nid in graph.nodes() if graph.degree(nid) == 0)


def degree_statistics(graph: UnitDiskGraph) -> Dict[str, float]:
    """Min / mean / max degree -- the density figures of merit."""
    degrees = [graph.degree(nid) for nid in graph.nodes()]
    return {
        "min": float(min(degrees)),
        "mean": float(mean(degrees)),
        "max": float(max(degrees)),
    }


def largest_component(graph: UnitDiskGraph) -> Set[NodeId]:
    """The node set of the largest connected component."""
    return connected_components(graph)[0]


def reachable_from(graph: UnitDiskGraph, sources: Iterable[NodeId]) -> Set[NodeId]:
    """All nodes reachable from any of ``sources`` (including themselves)."""
    seen: Set[NodeId] = set()
    queue = deque()
    for source in sources:
        if source not in seen:
            seen.add(source)
            queue.append(source)
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append(neighbor)
    return seen


def to_networkx(graph: UnitDiskGraph) -> nx.Graph:
    """Export to a :class:`networkx.Graph` with position attributes.

    Cross-checks in the test suite compare our BFS results against
    networkx; users get interop for free.
    """
    g = nx.Graph()
    for node_id in graph.nodes():
        pos = graph.position(node_id)
        g.add_node(int(node_id), pos=(pos.x, pos.y))
    g.add_edges_from((int(a), int(b)) for a, b in graph.edges())
    return g
