"""Topology: node placement, unit-disk graphs, and structural analysis."""

from repro.topology.analysis import (
    connected_components,
    degree_statistics,
    is_connected,
    isolated_nodes,
    to_networkx,
)
from repro.topology.generators import (
    corridor_field,
    multi_cluster_field,
    single_cluster_disk,
    uniform_field,
)
from repro.topology.graph import UnitDiskGraph
from repro.topology.placement import (
    cluster_disk_placement,
    gaussian_blobs_placement,
    grid_placement,
    uniform_disk_placement,
    uniform_rect_placement,
)

__all__ = [
    "UnitDiskGraph",
    "uniform_disk_placement",
    "uniform_rect_placement",
    "grid_placement",
    "gaussian_blobs_placement",
    "cluster_disk_placement",
    "single_cluster_disk",
    "uniform_field",
    "multi_cluster_field",
    "corridor_field",
    "connected_components",
    "degree_statistics",
    "is_connected",
    "isolated_nodes",
    "to_networkx",
]
