"""Campaign plans: experiments decomposed into content-addressed chunks.

A :class:`CampaignPlan` is the durable twin of a one-shot entry point:

- :func:`scenario_repeat_plan` mirrors
  :func:`repro.experiments.repeat.repeat_scenario` -- one chunk per
  replication seed, merged with the same aggregation in seed order;
- :func:`mc_plan` mirrors :func:`repro.analysis.montecarlo.mc_chunked`
  -- the identical ``chunk_sizes`` split and ``SeedSequence``-spawned
  chunk streams, merged with :func:`merge_estimates` in chunk order.

Because the chunk decomposition, the per-chunk seed material, and the
merge order are all pure functions of the plan parameters, a campaign's
merged result is bit-identical to its one-shot twin -- regardless of how
many times it was interrupted, resumed, or served from the store.

Chunk execution is dispatched through the module-level ``EXECUTORS``
registry keyed by task kind, so tasks stay picklable (plain dicts) for
the process pool, and tests can register synthetic kinds (slow chunks,
failing chunks) without touching the runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.montecarlo import (
    DEFAULT_MC_CHUNKS,
    McEstimate,
    mc_false_detection,
    mc_false_detection_on_ch,
    mc_incompleteness,
    merge_estimates,
)
from repro.campaign.store import (
    canonical_config_dict,
    code_fingerprint,
    config_from_canonical,
    content_key,
)
from repro.errors import ConfigurationError
from repro.experiments.repeat import (
    RepeatedResult,
    aggregate_summaries,
    check_seeds,
)
from repro.experiments.runner import ScenarioConfig, run_scenario
from repro.util.parallel import chunk_sizes, spawn_seed_sequences

#: Monte Carlo estimators addressable by name (names are part of chunk
#: keys, so renaming one invalidates its cached results -- intended).
MC_ESTIMATORS: Dict[str, Callable[..., McEstimate]] = {
    "false_detection": mc_false_detection,
    "false_detection_on_ch": mc_false_detection_on_ch,
    "incompleteness": mc_incompleteness,
}


@dataclass(frozen=True)
class ChunkTask:
    """One unit of campaign work: a picklable payload plus its address."""

    index: int
    kind: str
    payload: Dict[str, Any]
    key: str
    #: How many simulator executions / MC trials this chunk contributes
    #: (telemetry's replications/sec accounting).
    replications: int


@dataclass(frozen=True)
class CampaignPlan:
    """A fully-determined campaign: identity, chunks, and merge rule."""

    campaign_id: str
    kind: str
    params: Dict[str, Any]
    chunks: Tuple[ChunkTask, ...]

    @property
    def total_replications(self) -> int:
        return sum(c.replications for c in self.chunks)

    def manifest(self) -> Dict[str, Any]:
        return {
            "schema": "repro.campaign/v1",
            "id": self.campaign_id,
            "kind": self.kind,
            "params": self.params,
            "code": code_fingerprint(),
            "chunks": [
                {"index": c.index, "key": c.key, "replications": c.replications}
                for c in self.chunks
            ],
        }

    def merge(self, results: Sequence[Dict[str, Any]]):
        """Fold per-chunk payloads (in chunk order) into the final result."""
        return MERGERS[self.kind](self.params, results)


def _campaign_id(kind: str, params: Dict[str, Any]) -> str:
    # content_key already folds in the code fingerprint.
    return content_key("campaign", {"kind": kind, "params": params})[:16]


# ----------------------------------------------------------------------
# Scenario replication campaigns
# ----------------------------------------------------------------------
def scenario_repeat_plan(
    config: ScenarioConfig, seeds: Sequence[int]
) -> CampaignPlan:
    """One chunk per replication seed of ``config``.

    The merged result is bit-identical to
    ``repeat_scenario(config, seeds)``: same per-seed summaries (JSON
    float round-trips are exact), same seed-order aggregation.
    """
    seeds = check_seeds(seeds)
    base = canonical_config_dict(config)
    params = {"config": base, "seeds": list(seeds)}
    chunks = []
    for index, seed in enumerate(seeds):
        payload = {"config": dict(base, seed=int(seed))}
        chunks.append(
            ChunkTask(
                index=index,
                kind="scenario",
                payload=payload,
                key=content_key("scenario", payload),
                replications=int(base["executions"]),
            )
        )
    return CampaignPlan(
        campaign_id=_campaign_id("scenario", params),
        kind="scenario",
        params=params,
        chunks=tuple(chunks),
    )


def _execute_scenario_chunk(payload: Dict[str, Any]) -> Dict[str, Any]:
    config = config_from_canonical(payload["config"])
    return {"summary": run_scenario(config).summary()}


def _merge_scenario(
    params: Dict[str, Any], results: Sequence[Dict[str, Any]]
) -> RepeatedResult:
    config = config_from_canonical(params["config"])
    return aggregate_summaries(
        config, params["seeds"], [r["summary"] for r in results]
    )


# ----------------------------------------------------------------------
# Monte Carlo campaigns
# ----------------------------------------------------------------------
def mc_plan(
    estimator: str,
    n: int,
    p: float,
    trials: int,
    seed: int,
    chunks: int = DEFAULT_MC_CHUNKS,
    **kwargs: float,
) -> CampaignPlan:
    """Chunked MC estimate as a campaign; twin of :func:`mc_chunked`.

    The chunk split (:func:`chunk_sizes`) and the per-chunk seed streams
    (``SeedSequence(seed).spawn(...)``) follow ``mc_chunked`` exactly, so
    the merged estimate is bit-identical to the one-shot call with the
    same ``(estimator, n, p, trials, seed, chunks, kwargs)``.
    """
    if estimator not in MC_ESTIMATORS:
        raise ConfigurationError(
            f"unknown MC estimator {estimator!r}; "
            f"choose from {sorted(MC_ESTIMATORS)}"
        )
    sizes = chunk_sizes(int(trials), int(chunks))
    params = {
        "estimator": estimator,
        "n": int(n),
        "p": float(p),
        "trials": int(trials),
        "seed": int(seed),
        "chunks": len(sizes),
        "kwargs": {k: float(v) for k, v in sorted(kwargs.items())},
    }
    tasks = []
    for index, size in enumerate(sizes):
        payload = {
            "estimator": estimator,
            "n": params["n"],
            "p": params["p"],
            "chunk_trials": int(size),
            "seed": params["seed"],
            "chunk_index": index,
            "chunk_count": len(sizes),
            "kwargs": params["kwargs"],
        }
        tasks.append(
            ChunkTask(
                index=index,
                kind="mc",
                payload=payload,
                key=content_key("mc", payload),
                replications=int(size),
            )
        )
    return CampaignPlan(
        campaign_id=_campaign_id("mc", params),
        kind="mc",
        params=params,
        chunks=tuple(tasks),
    )


def _execute_mc_chunk(payload: Dict[str, Any]) -> Dict[str, Any]:
    estimator = MC_ESTIMATORS[payload["estimator"]]
    # Re-spawn the full child list and index into it: the (seed, index)
    # -> stream mapping must match mc_chunked's regardless of which
    # chunks this process happens to execute.
    seqs = spawn_seed_sequences(payload["seed"], payload["chunk_count"])
    estimate = estimator(
        payload["n"],
        payload["p"],
        payload["chunk_trials"],
        np.random.default_rng(seqs[payload["chunk_index"]]),
        **payload.get("kwargs", {}),
    )
    return {
        "estimate": estimate.estimate,
        "prefactor": estimate.prefactor,
        "conditional_successes": estimate.conditional_successes,
        "trials": estimate.trials,
        "n": estimate.n,
        "p": estimate.p,
    }


def _merge_mc(
    params: Dict[str, Any], results: Sequence[Dict[str, Any]]
) -> McEstimate:
    return merge_estimates([McEstimate(**r) for r in results])


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
#: Task-kind -> chunk executor.  Module-level (picklable dispatch) so
#: chunks can cross a process boundary; tests may register extra kinds.
EXECUTORS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "scenario": _execute_scenario_chunk,
    "mc": _execute_mc_chunk,
}

MERGERS: Dict[str, Callable[[Dict[str, Any], Sequence[Dict[str, Any]]], Any]] = {
    "scenario": _merge_scenario,
    "mc": _merge_mc,
}


def execute_chunk(task: ChunkTask) -> Dict[str, Any]:
    """Run one chunk in the current process (the pool's entry point)."""
    try:
        executor = EXECUTORS[task.kind]
    except KeyError:
        raise ConfigurationError(
            f"no executor registered for chunk kind {task.kind!r}"
        ) from None
    return executor(task.payload)


def plan_from_manifest(manifest: Dict[str, Any]) -> CampaignPlan:
    """Rebuild the plan a stored manifest describes (for ``resume``).

    The plan is recomputed from ``kind`` + ``params`` alone and then
    checked against the recorded chunk keys: if the library changed
    since the manifest was written, the keys (which embed the code
    fingerprint) no longer match and resuming is refused -- a resumed
    half must never mix results from two code versions.
    """
    kind = manifest.get("kind")
    builders = {
        "scenario": lambda p: scenario_repeat_plan(
            config_from_canonical(p["config"]), p["seeds"]
        ),
        "mc": lambda p: mc_plan(
            p["estimator"],
            p["n"],
            p["p"],
            p["trials"],
            p["seed"],
            p["chunks"],
            **p.get("kwargs", {}),
        ),
    }
    if kind not in builders:
        raise ConfigurationError(f"unknown campaign kind {kind!r} in manifest")
    plan = builders[kind](manifest["params"])
    recorded = [c["key"] for c in manifest.get("chunks", [])]
    current = [c.key for c in plan.chunks]
    if recorded != current:
        raise ConfigurationError(
            "campaign manifest does not match the current code/parameters "
            "(code fingerprint or chunk decomposition changed); re-run the "
            "campaign instead of resuming, or gc the stale store"
        )
    return plan
