"""Checkpointed campaign execution over the content-addressed store.

The runner turns a :class:`~repro.campaign.plans.CampaignPlan` into a
durable run:

1. the campaign **manifest** is persisted once (identity, params, chunk
   keys) so ``resume``/``status`` can reconstruct the plan later;
2. every finished chunk is appended to a **journal** (JSONL write-ahead
   log, flushed and fsynced per record) *after* its result object landed
   in the store -- so a kill at any instant loses at most the chunk in
   flight, never a recorded one;
3. on entry, the journal and the store are consulted first: chunks whose
   results already exist are replayed as **cache hits**, executing zero
   simulations;
4. the merged result is folded from the per-chunk payloads in chunk
   order, so an interrupted-and-resumed campaign is bit-identical to an
   uninterrupted one (and to the one-shot twin the plan mirrors).

Stuck workers are handled by a per-chunk timeout: a chunk whose pool
future does not complete in time is retried **in-process** (chunks are
pure functions of their payload, so the retry result is the same one the
stuck worker would eventually have produced).  A chunk that keeps
failing marks the campaign ``failed`` -- partial results stay cached, so
fixing the cause and re-running only pays for the broken chunk.

``KeyboardInterrupt`` is part of the contract, not an error: the journal
and telemetry are flushed, an ``interrupted`` outcome is returned, and
the next invocation resumes where this one stopped.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.campaign.plans import CampaignPlan, ChunkTask, execute_chunk
from repro.campaign.store import ResultStore
from repro.campaign.telemetry import Progress, Telemetry, read_events
from repro.errors import ExperimentError
from repro.util.parallel import note_task_rate, resolve_workers

#: Exit-code vocabulary shared with the CLI.
STATUS_COMPLETE = "complete"
STATUS_PARTIAL = "partial"
STATUS_FAILED = "failed"
STATUS_INTERRUPTED = "interrupted"


@dataclass(frozen=True)
class CampaignOptions:
    """Execution knobs for one runner invocation."""

    workers: Optional[int] = 1
    #: Wall-clock budget per chunk before a pool worker is declared stuck
    #: and the chunk is retried in-process (``None`` disables the policy;
    #: it only applies when ``workers > 1`` -- a serial run cannot watch
    #: itself).
    chunk_timeout: Optional[float] = None
    #: In-process retry attempts after a timeout or a crashed worker.
    max_retries: int = 1
    #: Checkpoint-and-return after this many chunk completions in *this*
    #: invocation (deterministic interruption for tests and CI smoke).
    stop_after: Optional[int] = None
    #: Mirror telemetry events to this path besides the campaign dir.
    telemetry_path: Optional[Path] = None


@dataclass
class CampaignOutcome:
    """What one runner invocation achieved."""

    campaign_id: str
    status: str
    chunks_total: int
    chunks_done: int
    cache_hits: int
    executed: int
    failed_chunks: Tuple[int, ...] = ()
    #: Merged result (RepeatedResult / McEstimate) when status=complete.
    merged: Any = None
    result_payloads: Tuple[Dict[str, Any], ...] = ()

    @property
    def complete(self) -> bool:
        return self.status == STATUS_COMPLETE

    def exit_code(self) -> int:
        """CLI mapping: 0 complete, 2 failed, 3 partial, 130 interrupted."""
        return {
            STATUS_COMPLETE: 0,
            STATUS_FAILED: 2,
            STATUS_PARTIAL: 3,
            STATUS_INTERRUPTED: 130,
        }[self.status]


class _Journal:
    """Append-only JSONL write-ahead log of finished chunks."""

    def __init__(self, path: Path) -> None:
        self.path = path
        path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = path.open("a", encoding="utf-8")

    def record(self, **fields: Any) -> None:
        self._handle.write(json.dumps(fields) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        try:
            self._handle.flush()
        finally:
            self._handle.close()


def _journal_done_indexes(path: Path) -> Set[int]:
    return {
        int(event["index"])
        for event in read_events(path)
        if event.get("event") == "chunk_done"
    }


def _write_manifest(store: ResultStore, plan: CampaignPlan) -> Path:
    directory = store.campaign_dir(plan.campaign_id)
    path = directory / "manifest.json"
    if not path.is_file():
        directory.mkdir(parents=True, exist_ok=True)
        from repro.campaign.store import _atomic_write_text

        _atomic_write_text(path, json.dumps(plan.manifest(), indent=2) + "\n")
    return path


def run_campaign(
    plan: CampaignPlan,
    store: ResultStore,
    options: CampaignOptions = CampaignOptions(),
) -> CampaignOutcome:
    """Execute ``plan`` durably; resume is implicit (same plan, same dirs).

    Invoking this again with the same plan continues from the journal:
    chunks recorded there (and present in the store) are not re-run, and
    chunks cached from *any* earlier campaign with identical content
    keys are served as hits.
    """
    directory = store.campaign_dir(plan.campaign_id)
    _write_manifest(store, plan)
    journal_path = directory / "journal.jsonl"
    # The store is the authority on what can be skipped: every chunk goes
    # through the loop and journaled-but-cached chunks replay as explicit
    # cache hits (one telemetry event each), executing zero simulations.
    # The journal's role is crash recovery and progress accounting.
    already_done = {
        i for i in _journal_done_indexes(journal_path)
        if i < len(plan.chunks) and store.contains(plan.chunks[i].key)
    }
    pending = list(plan.chunks)
    journal = _Journal(journal_path)
    telemetry = Telemetry(
        directory / "telemetry.jsonl", mirror=options.telemetry_path
    )
    progress = Progress(len(plan.chunks))
    failed: List[int] = []
    interrupted = False
    stopped = False
    telemetry.emit(
        "campaign_start",
        campaign=plan.campaign_id,
        kind=plan.kind,
        chunks_total=len(plan.chunks),
        chunks_already_done=len(already_done),
        resumed=bool(already_done),
        workers=resolve_workers(options.workers),
    )
    try:
        runner = (
            _run_pooled if resolve_workers(options.workers) > 1 else _run_serial
        )
        stopped = runner(
            plan, pending, store, journal, telemetry, progress, options, failed
        )
    except KeyboardInterrupt:
        # Flush-and-checkpoint is the whole point: the journal already
        # holds every finished chunk; nothing else needs saving.
        interrupted = True
    finally:
        journal.close()

    chunks_done = progress.cache_hits + progress.executed
    if failed:
        status = STATUS_FAILED
    elif interrupted:
        status = STATUS_INTERRUPTED
    elif stopped or chunks_done < len(plan.chunks):
        status = STATUS_PARTIAL
    else:
        status = STATUS_COMPLETE

    merged = None
    payloads: Tuple[Dict[str, Any], ...] = ()
    if status == STATUS_COMPLETE:
        results = []
        for chunk in plan.chunks:
            payload = store.get(chunk.key)
            if payload is None:
                raise ExperimentError(
                    f"store lost chunk {chunk.index} ({chunk.key[:12]}...) "
                    "between execution and merge"
                )
            results.append(payload)
        payloads = tuple(results)
        merged = plan.merge(results)
        from repro.campaign.store import _atomic_write_text

        _atomic_write_text(
            directory / "result.json",
            json.dumps(
                {"campaign": plan.campaign_id, "chunks": results}, indent=2
            ) + "\n",
        )
    telemetry.emit(
        "campaign_end",
        campaign=plan.campaign_id,
        status=status,
        chunks_done=chunks_done,
        chunks_total=len(plan.chunks),
        cache_hits=progress.cache_hits,
        executed=progress.executed,
        failed_chunks=failed,
    )
    telemetry.close()
    _write_metrics(directory, progress)
    return CampaignOutcome(
        campaign_id=plan.campaign_id,
        status=status,
        chunks_total=len(plan.chunks),
        chunks_done=chunks_done,
        cache_hits=progress.cache_hits,
        executed=progress.executed,
        failed_chunks=tuple(failed),
        merged=merged,
        result_payloads=payloads,
    )


def _write_metrics(directory: Path, progress: Progress) -> None:
    """Snapshot the run's registry (JSON + Prometheus text) next to the
    journal, whatever the outcome -- a partial campaign's throughput and
    cache ratio are exactly what a resume decision needs."""
    from repro.campaign.store import _atomic_write_text

    _atomic_write_text(
        directory / "metrics.json",
        json.dumps(progress.registry.to_json(), indent=2) + "\n",
    )
    _atomic_write_text(
        directory / "metrics.prom", progress.registry.render_prometheus()
    )


def _finish_chunk(
    chunk: ChunkTask,
    payload: Dict[str, Any],
    cache_hit: bool,
    elapsed: float,
    store: ResultStore,
    journal: _Journal,
    telemetry: Telemetry,
    progress: Progress,
) -> None:
    """Store-then-journal: the WAL only ever names results that exist."""
    if not cache_hit:
        store.put(chunk.key, payload, kind=chunk.kind)
    journal.record(
        event="chunk_done",
        index=chunk.index,
        key=chunk.key,
        cache_hit=cache_hit,
        elapsed_s=elapsed,
    )
    stats = progress.record_chunk(chunk.replications, cache_hit)
    if not cache_hit and chunk.kind == "scenario":
        # Feed the fabric's chunk-size tuner with the measured scenario
        # throughput (MC chunks run at trial rates -- a different unit
        # entirely -- so only scenario replications qualify).
        note_task_rate(chunk.replications, elapsed)
    telemetry.emit(
        "chunk_done",
        index=chunk.index,
        cache_hit=cache_hit,
        elapsed_s=elapsed,
        **stats,
    )


def _run_serial(
    plan: CampaignPlan,
    pending: List[ChunkTask],
    store: ResultStore,
    journal: _Journal,
    telemetry: Telemetry,
    progress: Progress,
    options: CampaignOptions,
    failed: List[int],
) -> bool:
    """In-process chunk loop.  Returns True if ``stop_after`` tripped."""
    completed = 0
    for chunk in pending:
        if options.stop_after is not None and completed >= options.stop_after:
            return True
        cached = store.get(chunk.key)
        started = time.monotonic()
        if cached is not None:
            payload, cache_hit = cached, True
        else:
            telemetry.emit("chunk_start", index=chunk.index, worker="serial")
            try:
                payload = execute_chunk(chunk)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                failed.append(chunk.index)
                telemetry.emit(
                    "chunk_failed", index=chunk.index, error=repr(exc)
                )
                continue
            cache_hit = False
        _finish_chunk(
            chunk, payload, cache_hit,
            time.monotonic() - started,
            store, journal, telemetry, progress,
        )
        completed += 1
    return False


def _run_pooled(
    plan: CampaignPlan,
    pending: List[ChunkTask],
    store: ResultStore,
    journal: _Journal,
    telemetry: Telemetry,
    progress: Progress,
    options: CampaignOptions,
    failed: List[int],
) -> bool:
    """Process-pool chunk loop with the timeout-and-retry liveness policy."""
    # Cache hits never enter the pool: serve them first so a warm store
    # costs no worker round-trips at all.
    to_execute: List[ChunkTask] = []
    completed = 0
    for chunk in pending:
        if options.stop_after is not None and completed >= options.stop_after:
            return True
        cached = store.get(chunk.key)
        if cached is not None:
            _finish_chunk(
                chunk, cached, True, 0.0, store, journal, telemetry, progress
            )
            completed += 1
        else:
            to_execute.append(chunk)

    if not to_execute:
        return False

    workers = min(resolve_workers(options.workers), len(to_execute))
    stopped = False
    abandoned = False
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = {}
        for chunk in to_execute:
            telemetry.emit("chunk_start", index=chunk.index, worker="pool")
            futures[pool.submit(execute_chunk, chunk)] = (
                chunk, time.monotonic(),
            )
        outstanding = set(futures)
        while outstanding:
            if options.stop_after is not None and completed >= options.stop_after:
                for future in outstanding:
                    future.cancel()
                stopped = True
                break
            finished, outstanding = wait(
                outstanding,
                timeout=options.chunk_timeout,
                return_when=FIRST_COMPLETED,
            )
            if not finished:
                # Liveness policy: every outstanding chunk has now waited
                # a full timeout window with zero completions -- declare
                # the oldest one stuck and retry it in-process.
                stale = min(outstanding, key=lambda f: futures[f][1])
                chunk, started = futures[stale]
                stale.cancel()
                outstanding.discard(stale)
                abandoned = True
                telemetry.emit(
                    "chunk_timeout",
                    index=chunk.index,
                    waited_s=time.monotonic() - started,
                    inflight=[futures[f][0].index for f in outstanding],
                )
                payload = _retry_in_process(chunk, telemetry, options, failed)
                if payload is not None:
                    _finish_chunk(
                        chunk, payload, False,
                        time.monotonic() - started,
                        store, journal, telemetry, progress,
                    )
                    completed += 1
                continue
            for future in finished:
                chunk, started = futures[future]
                try:
                    payload = future.result()
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    telemetry.emit(
                        "chunk_worker_error", index=chunk.index, error=repr(exc)
                    )
                    payload = _retry_in_process(
                        chunk, telemetry, options, failed
                    )
                    if payload is None:
                        continue
                _finish_chunk(
                    chunk, payload, False,
                    time.monotonic() - started,
                    store, journal, telemetry, progress,
                )
                completed += 1
    finally:
        if abandoned:
            # A declared-stuck worker may never return; a graceful
            # shutdown would wait on it forever.  Its chunk has already
            # been retried in-process (workers never touch the store, so
            # killing them cannot corrupt state).
            # Snapshot before shutdown clears the executor's bookkeeping.
            processes = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                process.terminate()
        else:
            pool.shutdown(wait=True)
    return stopped


def _retry_in_process(
    chunk: ChunkTask,
    telemetry: Telemetry,
    options: CampaignOptions,
    failed: List[int],
) -> Optional[Dict[str, Any]]:
    """Deterministic fallback: chunks are pure, so re-running is safe."""
    for attempt in range(1, options.max_retries + 1):
        telemetry.emit("chunk_retry", index=chunk.index, attempt=attempt)
        try:
            return execute_chunk(chunk)
        except KeyboardInterrupt:
            raise
        except Exception as exc:
            telemetry.emit(
                "chunk_failed", index=chunk.index, attempt=attempt,
                error=repr(exc),
            )
    failed.append(chunk.index)
    return None


# ----------------------------------------------------------------------
# Status inspection (the ``repro campaign status`` backend)
# ----------------------------------------------------------------------
def campaign_status(store: ResultStore, campaign_id: str) -> Dict[str, Any]:
    """Progress snapshot of one campaign from its on-disk state alone."""
    directory = store.campaign_dir(campaign_id)
    try:
        manifest = json.loads(
            (directory / "manifest.json").read_text(encoding="utf-8")
        )
    except (FileNotFoundError, json.JSONDecodeError):
        raise ExperimentError(f"no campaign {campaign_id!r} in {store.root}")
    total = len(manifest.get("chunks", []))
    keys = {c["index"]: c["key"] for c in manifest.get("chunks", [])}
    done = {
        i for i in _journal_done_indexes(directory / "journal.jsonl")
        if i in keys and store.contains(keys[i])
    }
    events = read_events(directory / "telemetry.jsonl")
    cache_hits = sum(
        1 for e in events if e.get("event") == "chunk_done" and e.get("cache_hit")
    )
    complete = (directory / "result.json").is_file() and len(done) == total
    # Journal-derived progress for in-flight campaigns: the latest
    # chunk_done telemetry event carries the runner's live throughput and
    # ETA projection, so status (and the dashboard's /api/campaigns) can
    # report them without touching the running process.
    progress: Dict[str, Any] = {
        "reps_per_s": None,
        "eta_s": None,
        "replications_done": None,
        "last_event_t": None,
    }
    for event in reversed(events):
        if event.get("event") == "chunk_done":
            progress = {
                "reps_per_s": event.get("reps_per_s"),
                "eta_s": 0.0 if complete else event.get("eta_s"),
                "replications_done": event.get("replications_done"),
                "last_event_t": event.get("t"),
            }
            break
    return {
        "id": campaign_id,
        "kind": manifest.get("kind"),
        "chunks_done": len(done),
        "chunks_total": total,
        "complete": complete,
        "cache_hits": cache_hits,
        "events": len(events),
        "progress": progress,
    }
