"""Durable experiment campaigns: caching, checkpoint/resume, telemetry.

A *campaign* is a one-shot experiment (a multi-seed scenario replication
or a chunked Monte Carlo estimate) recast as a list of independent,
deterministic **chunks**, each addressed by a content hash of everything
that determines its result.  Three cooperating pieces make the campaign
durable and observable:

- :mod:`repro.campaign.store` -- a content-addressed result store.  A
  chunk key hashes the canonical config dict, the seed material, the
  chunk geometry, and a fingerprint of the library source, so a warm
  store replays any sweep/benchmark/soak as cache hits that are
  bit-identical to a cold run;
- :mod:`repro.campaign.runner` -- a checkpointed runner that journals
  every finished chunk to a JSONL write-ahead log.  A campaign killed
  mid-run resumes exactly where it stopped, and the merged result equals
  the uninterrupted run bit for bit;
- :mod:`repro.campaign.telemetry` -- a JSONL event stream (chunks
  done/total, replications/sec, cache-hit ratio, ETA, in-flight chunks)
  plus a per-chunk timeout-and-retry policy for stuck pool workers.

The CLI surface is ``python -m repro campaign run|resume|status|gc``;
``repro soak`` and the Monte Carlo / scalability benchmarks run through
the same store.
"""

from repro.campaign.plans import (
    CampaignPlan,
    ChunkTask,
    MC_ESTIMATORS,
    mc_plan,
    plan_from_manifest,
    scenario_repeat_plan,
)
from repro.campaign.runner import (
    CampaignOptions,
    CampaignOutcome,
    campaign_status,
    run_campaign,
)
from repro.campaign.store import (
    ResultStore,
    canonical_config_dict,
    canonical_json,
    code_fingerprint,
    config_from_canonical,
    content_key,
)
from repro.campaign.telemetry import Telemetry, read_events

__all__ = [
    "CampaignOptions",
    "CampaignOutcome",
    "CampaignPlan",
    "ChunkTask",
    "MC_ESTIMATORS",
    "ResultStore",
    "Telemetry",
    "campaign_status",
    "canonical_config_dict",
    "canonical_json",
    "code_fingerprint",
    "config_from_canonical",
    "content_key",
    "mc_plan",
    "plan_from_manifest",
    "read_events",
    "run_campaign",
    "scenario_repeat_plan",
]
