"""Live campaign telemetry: append-only JSONL progress events.

Long campaigns must not be black boxes that report only at the end.  The
runner emits one event per state change -- campaign start/end, chunk
start, chunk done (with running throughput, cache-hit ratio, and ETA),
worker timeouts and retries -- to an append-only JSONL file that a
``repro campaign status`` call, a ``tail -f``, or a CI artifact collector
can consume while the campaign is still running.

Each line is a self-contained JSON object::

    {"seq": 12, "t": 1754473201.8, "event": "chunk_done", "index": 7,
     "cache_hit": false, "elapsed_s": 0.41, "done": 8, "total": 16,
     "replications_done": 60000, "reps_per_s": 145000.0,
     "cache_hit_ratio": 0.25, "eta_s": 3.2}

Writes are line-buffered and flushed per event so a reader (or a
post-mortem after a kill) sees every completed chunk.  Telemetry is an
*observability* plane: events never feed back into results, so replaying
a campaign from a warm store emits fresh events but identical numbers.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.registry import MetricsRegistry


class Telemetry:
    """Append-only JSONL event writer (optionally teed to a second path)."""

    def __init__(
        self,
        path: Optional[Path],
        mirror: Optional[Path] = None,
        clock=time.time,
    ) -> None:
        self._clock = clock
        self._seq = 0
        self._handles = []
        for target in (path, mirror):
            if target is None:
                continue
            target = Path(target)
            target.parent.mkdir(parents=True, exist_ok=True)
            self._handles.append(target.open("a", encoding="utf-8"))

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event line; returns the record for convenience."""
        record = {"seq": self._seq, "t": self._clock(), "event": event}
        record.update(fields)
        self._seq += 1
        line = json.dumps(record, sort_keys=False) + "\n"
        for handle in self._handles:
            handle.write(line)
            handle.flush()
        return record

    def close(self) -> None:
        for handle in self._handles:
            try:
                handle.flush()
            finally:
                handle.close()
        self._handles = []

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_events(path: Path) -> List[Dict[str, Any]]:
    """Parse a telemetry (or journal) JSONL file, skipping torn lines.

    A campaign killed mid-write can leave a truncated final line; that
    line carries no completed work, so it is dropped rather than fatal.
    """
    events: List[Dict[str, Any]] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return events
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events


class Progress:
    """Running throughput / cache-ratio / ETA accounting for one run.

    The same numbers the per-chunk telemetry events carry are kept live
    on a :class:`~repro.obs.registry.MetricsRegistry` (counters for
    chunks/cache-hits/replications, gauges for reps/sec, cache-hit
    ratio, and ETA), so a campaign can expose or persist a standard
    metrics snapshot at any point.
    """

    def __init__(
        self,
        total_chunks: int,
        already_done: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.total = total_chunks
        self.done = already_done
        self.cache_hits = 0
        self.executed = 0
        self.replications_done = 0
        self._started = time.monotonic()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.gauge(
            "repro_campaign_chunks_total", "Chunks in the campaign plan"
        ).set(total_chunks)
        self._chunks_done = self.registry.counter(
            "repro_campaign_chunks_done_total", "Chunks finished (any way)"
        )
        self._cache_hit_count = self.registry.counter(
            "repro_campaign_cache_hits_total", "Chunks served from the store"
        )
        self._executed_count = self.registry.counter(
            "repro_campaign_chunks_executed_total", "Chunks actually simulated"
        )
        self._replications = self.registry.counter(
            "repro_campaign_replications_total", "Scenario replications folded in"
        )
        self._rate = self.registry.gauge(
            "repro_campaign_reps_per_second", "Running replication throughput"
        )
        self._ratio = self.registry.gauge(
            "repro_campaign_cache_hit_ratio", "Cache hits / finished chunks"
        )
        self._eta = self.registry.gauge(
            "repro_campaign_eta_seconds", "Projected seconds to completion"
        )

    def record_chunk(self, replications: int, cache_hit: bool) -> Dict[str, Any]:
        self.done += 1
        if cache_hit:
            self.cache_hits += 1
            self._cache_hit_count.inc()
        else:
            self.executed += 1
            self._executed_count.inc()
        self.replications_done += int(replications)
        elapsed = max(time.monotonic() - self._started, 1e-9)
        finished_this_run = self.cache_hits + self.executed
        rate = self.replications_done / elapsed
        remaining = self.total - self.done
        # ETA from the observed per-chunk pace of *this* invocation.
        eta = (elapsed / finished_this_run) * remaining if finished_this_run else None
        self._chunks_done.inc()
        self._replications.inc(int(replications))
        self._rate.set(rate)
        self._ratio.set(self.cache_hits / finished_this_run)
        self._eta.set(eta if eta is not None else 0.0)
        return {
            "done": self.done,
            "total": self.total,
            "replications_done": self.replications_done,
            "reps_per_s": rate,
            "cache_hit_ratio": self.cache_hits / finished_this_run,
            "eta_s": eta,
        }
