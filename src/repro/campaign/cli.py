"""Backend of ``python -m repro campaign run|resume|status|gc``.

Kept out of ``repro.__main__`` so the argparse surface there stays a thin
dispatch table.  Exit codes are part of the contract (CI scripts branch
on them): 0 complete, 2 failed chunks, 3 partial (``--stop-after``
checkpoint), 130 interrupted (SIGINT), 1 usage/configuration errors.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.campaign.plans import (
    CampaignPlan,
    MC_ESTIMATORS,
    mc_plan,
    plan_from_manifest,
    scenario_repeat_plan,
)
from repro.campaign.runner import (
    CampaignOptions,
    CampaignOutcome,
    campaign_status,
    run_campaign,
)
from repro.campaign.store import ResultStore, default_store_root
from repro.errors import ReproError
from repro.experiments.runner import ScenarioConfig
from repro.util.tables import render_table


def add_campaign_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``campaign`` subcommand tree on the root parser."""
    campaign = sub.add_parser(
        "campaign",
        help="durable experiment campaigns (cached, resumable, observable)",
    )
    actions = campaign.add_subparsers(dest="campaign_action", required=True)

    def _execution_knobs(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--store", type=str, default="",
                            help="store root (default: $REPRO_STORE or ./.repro-store)")
        parser.add_argument("--workers", type=int, default=1,
                            help="process-pool width (1 = serial)")
        parser.add_argument("--stop-after", type=int, default=None,
                            help="checkpoint and exit 3 after this many chunks")
        parser.add_argument("--chunk-timeout", type=float, default=None,
                            help="seconds before a stuck pool chunk is retried in-process")
        parser.add_argument("--max-retries", type=int, default=1,
                            help="in-process retries for a timed-out/crashed chunk")
        parser.add_argument("--telemetry", type=str, default="",
                            help="mirror telemetry JSONL to this path")
        parser.add_argument("--result-json", type=str, default="",
                            help="write the merged result as JSON to this path")

    run = actions.add_parser("run", help="run (or implicitly resume) a campaign")
    run.add_argument("--kind", choices=("mc", "scenario"), required=True)
    # Monte Carlo campaign parameters.
    run.add_argument("--estimator", choices=sorted(MC_ESTIMATORS),
                     default="false_detection")
    run.add_argument("--n", type=int, default=50)
    run.add_argument("--p", type=float, default=0.5)
    run.add_argument("--trials", type=int, default=100_000)
    run.add_argument("--chunks", type=int, default=8)
    run.add_argument("--seed", type=int, default=0)
    # Scenario-replication campaign parameters.
    run.add_argument("--clusters", type=int, default=4)
    run.add_argument("--members", type=int, default=12)
    run.add_argument("--loss-p", type=float, default=0.1)
    run.add_argument("--crashes", type=int, default=2)
    run.add_argument("--executions", type=int, default=5)
    run.add_argument("--seeds", type=int, default=8,
                     help="replication count (seeds seed-base..seed-base+seeds-1)")
    run.add_argument("--seed-base", type=int, default=1)
    run.add_argument("--engine", choices=("event", "array"), default="event",
                     help="scenario execution engine ('array' = round-level "
                          "numpy engine; both formation modes)")
    run.add_argument("--formation", choices=("oracle", "protocol"),
                     default="oracle",
                     help="cluster formation: geometric oracle or the "
                          "distributed six-round protocol")
    run.add_argument("--formation-iterations", dest="formation_iterations",
                     type=int, default=3,
                     help="formation iterations (protocol formation only)")
    run.add_argument("--formation-backoff", dest="formation_backoff",
                     type=float, default=0.4,
                     help="RCC declaration backoff bound in (0, 0.9]")
    _execution_knobs(run)

    resume = actions.add_parser(
        "resume", help="resume a campaign from its stored manifest"
    )
    resume.add_argument("--id", required=True, help="campaign id (see status)")
    _execution_knobs(resume)

    status = actions.add_parser("status", help="progress of stored campaigns")
    status.add_argument("--store", type=str, default="")
    status.add_argument("--id", default="", help="one campaign (default: all)")
    status.add_argument("--json", action="store_true",
                        help="emit the status snapshot as JSON (the same "
                             "document 'repro serve' returns at /api/campaigns)")

    gc = actions.add_parser("gc", help="prune stale store entries")
    gc.add_argument("--store", type=str, default="")
    gc.add_argument("--all", action="store_true",
                    help="wipe everything, not just stale-code entries")
    gc.add_argument("--dry-run", action="store_true")


def _store_from(args: argparse.Namespace) -> ResultStore:
    root = Path(args.store) if getattr(args, "store", "") else default_store_root()
    return ResultStore(root)


def _options_from(args: argparse.Namespace) -> CampaignOptions:
    return CampaignOptions(
        workers=args.workers,
        chunk_timeout=args.chunk_timeout,
        max_retries=args.max_retries,
        stop_after=args.stop_after,
        telemetry_path=Path(args.telemetry) if args.telemetry else None,
    )


def _plan_from_run_args(args: argparse.Namespace) -> CampaignPlan:
    if args.kind == "mc":
        return mc_plan(
            args.estimator, args.n, args.p, args.trials,
            seed=args.seed, chunks=args.chunks,
        )
    config = ScenarioConfig(
        cluster_count=args.clusters,
        members_per_cluster=args.members,
        loss_probability=args.loss_p,
        crash_count=args.crashes,
        executions=args.executions,
        engine=args.engine,
        formation=args.formation,
        formation_iterations=args.formation_iterations,
        formation_backoff_fraction=args.formation_backoff,
    )
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    return scenario_repeat_plan(config, seeds)


def result_as_json(outcome: CampaignOutcome) -> Dict[str, Any]:
    """The merged result as plain JSON (the CI equivalence currency).

    Floats pass through ``repr``-exact JSON round-trips, so two outcomes
    are bit-identical iff their JSON documents are byte-identical.
    """
    merged = outcome.merged
    if merged is None:
        return {"status": outcome.status, "merged": None}
    if dataclasses.is_dataclass(merged) and hasattr(merged, "metrics"):
        # RepeatedResult: metrics only (config/seeds are the identity).
        payload: Any = {
            "seeds": list(merged.seeds),
            "metrics": {
                key: dataclasses.asdict(summary)
                for key, summary in sorted(merged.metrics.items())
            },
        }
    elif dataclasses.is_dataclass(merged):
        payload = dataclasses.asdict(merged)
    else:
        payload = merged
    return {"status": outcome.status, "merged": payload}


def _finish(outcome: CampaignOutcome, args: argparse.Namespace) -> int:
    print(
        f"campaign {outcome.campaign_id}: {outcome.status} "
        f"({outcome.chunks_done}/{outcome.chunks_total} chunks, "
        f"{outcome.cache_hits} cache hit(s), {outcome.executed} executed)"
    )
    if outcome.failed_chunks:
        print(f"  failed chunks: {list(outcome.failed_chunks)}")
    if getattr(args, "result_json", "") and outcome.merged is not None:
        path = Path(args.result_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(result_as_json(outcome), indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"  merged result written to {path}")
    return outcome.exit_code()


def cmd_campaign(args: argparse.Namespace) -> int:
    try:
        if args.campaign_action == "run":
            plan = _plan_from_run_args(args)
            outcome = run_campaign(plan, _store_from(args), _options_from(args))
            return _finish(outcome, args)
        if args.campaign_action == "resume":
            store = _store_from(args)
            manifest_path = store.campaign_dir(args.id) / "manifest.json"
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                print(f"no campaign {args.id!r} under {store.root}")
                return 1
            plan = plan_from_manifest(manifest)
            outcome = run_campaign(plan, store, _options_from(args))
            return _finish(outcome, args)
        if args.campaign_action == "status":
            return _cmd_status(args)
        if args.campaign_action == "gc":
            return _cmd_gc(args)
        raise AssertionError(args.campaign_action)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1


def status_payload(store: ResultStore, campaign_id: str = "") -> Dict[str, Any]:
    """The machine-readable status snapshot of a store's campaigns.

    One surface for ``repro campaign status --json``, shell scripts, and
    the dashboard's ``/api/campaigns`` endpoint.  Campaigns are sorted by
    id, so the document (and the table rendered from it) is stable across
    invocations of the same store state.
    """
    ids = [campaign_id] if campaign_id else store.campaign_ids()
    campaigns = sorted(
        (campaign_status(store, cid) for cid in ids),
        key=lambda info: str(info["id"]),
    )
    return {"store": str(store.root), "campaigns": campaigns}


def _cmd_status(args: argparse.Namespace) -> int:
    store = _store_from(args)
    payload = status_payload(store, args.id)
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not payload["campaigns"]:
        print(f"no campaigns under {store.root}")
        return 0
    rows = []
    for info in payload["campaigns"]:
        progress = info.get("progress", {})
        eta = progress.get("eta_s")
        rows.append([
            info["id"], info["kind"],
            f"{info['chunks_done']}/{info['chunks_total']}",
            "yes" if info["complete"] else "no",
            info["cache_hits"], info["events"],
            "-" if eta is None else f"{eta:.1f}",
        ])
    print(render_table(
        ["campaign", "kind", "chunks", "complete", "cache_hits", "events",
         "eta_s"],
        rows, title=f"store: {store.root}",
    ))
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    store = _store_from(args)
    stats = store.gc(stale_only=not args.all, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"gc: {verb} {stats['objects_removed']} object(s) and "
        f"{stats['campaigns_removed']} campaign dir(s), "
        f"{stats['bytes_freed']} bytes"
    )
    return 0


# ----------------------------------------------------------------------
# ``repro bench``
# ----------------------------------------------------------------------
def find_repo_root() -> Optional[Path]:
    """The checkout root: nearest ancestor holding ``benchmarks/``.

    Tried from the CWD first (running inside the checkout), then from
    the package location (``src/repro`` layout), so ``repro bench``
    works from any directory of an editable install.
    """
    import repro

    candidates = [Path.cwd(), *Path.cwd().parents,
                  Path(repro.__file__).resolve().parent.parent.parent]
    for root in candidates:
        if (root / "benchmarks" / "bench_hotpaths.py").is_file():
            return root
    return None


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the hot-path benchmark; land BENCH_hotpaths.json at the root."""
    import importlib.util

    root = find_repo_root()
    if root is None:
        print("error: benchmarks/bench_hotpaths.py not found "
              "(run from inside the repository checkout)")
        return 1
    script = root / "benchmarks" / "bench_hotpaths.py"
    spec = importlib.util.spec_from_file_location("bench_hotpaths", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    output = Path(args.output) if args.output else root / "BENCH_hotpaths.json"
    argv = ["--output", str(output)]
    if args.quick:
        argv.append("--quick")
    return module.main(argv)
