"""Content-addressed result store for experiment chunks.

Every cached object is addressed by a SHA-256 over a *canonical* JSON
payload describing exactly what was computed: the experiment kind, the
canonical config dict (stable key order, plain JSON types), the seed
material and chunk geometry, and a fingerprint of the library source.
Two consequences fall out of that addressing scheme:

- a warm store can short-circuit any re-run (same key => same bytes, and
  JSON float round-tripping is exact, so replayed results are
  bit-identical to a cold run);
- any change to the code or to a single config field changes the key,
  so the store can never serve a stale result -- invalidation is
  structural, not TTL-based.

Layout under the store root::

    objects/<k[:2]>/<key>.json     one chunk result each
    campaigns/<id>/manifest.json   campaign identity + chunk keys
    campaigns/<id>/journal.jsonl   write-ahead log of finished chunks
    campaigns/<id>/telemetry.jsonl progress event stream
    campaigns/<id>/result.json     merged payload once complete

Object writes are atomic (tempfile + ``os.replace``), so a campaign
killed mid-write never leaves a truncated object behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.runner import ScenarioConfig
from repro.fds.config import FdsConfig

#: Default store root, relative to the current working directory.  The
#: CLI and the benchmarks honor ``REPRO_STORE`` to relocate it.
DEFAULT_STORE_DIR = ".repro-store"


def default_store_root() -> Path:
    """The store root: ``$REPRO_STORE`` or ``./.repro-store``."""
    return Path(os.environ.get("REPRO_STORE", DEFAULT_STORE_DIR))


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------
def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def canonical_config_dict(config: ScenarioConfig) -> Dict[str, Any]:
    """A :class:`ScenarioConfig` as plain JSON types, recursively.

    ``dataclasses.asdict`` already recurses into the nested
    :class:`FdsConfig`; tuples (``loss_params``) become lists, which is
    fine because :func:`config_from_canonical` restores them.
    """
    return dataclasses.asdict(config)


def config_from_canonical(payload: Dict[str, Any]) -> ScenarioConfig:
    """Rebuild a :class:`ScenarioConfig` from its canonical dict."""
    data = dict(payload)
    fds_data = data.pop("fds", None)
    known = {f.name for f in dataclasses.fields(ScenarioConfig)}
    unknown = set(data) - known
    if unknown:
        raise ConfigurationError(
            f"canonical config has unknown fields {sorted(unknown)}; "
            "was it written by a newer version of the library?"
        )
    if fds_data is not None:
        data["fds"] = FdsConfig(**fds_data)
    if data.get("loss_params") is not None:
        data["loss_params"] = tuple(
            (str(k), float(v)) for k, v in data["loss_params"]
        )
    if data.get("max_backups") is not None:
        data["max_backups"] = int(data["max_backups"])
    return ScenarioConfig(**data)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the ``repro`` package source (path + contents).

    Part of every chunk key: a result cached under one version of the
    simulator must never satisfy a request made under another.  Hashing
    the whole package is deliberately coarse -- a false invalidation
    costs one recompute; a false hit silently corrupts results.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def content_key(kind: str, payload: Any, fingerprint: Optional[str] = None) -> str:
    """The store address of one chunk: SHA-256 of its canonical identity."""
    identity = {
        "kind": kind,
        "payload": payload,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class ResultStore:
    """Content-addressed JSON object store with campaign directories."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # -- objects --------------------------------------------------------
    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached result payload for ``key``, or ``None`` on a miss."""
        path = self._object_path(key)
        try:
            wrapped = json.loads(path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return wrapped["payload"]

    def put(
        self,
        key: str,
        payload: Dict[str, Any],
        kind: str = "chunk",
        fingerprint: Optional[str] = None,
    ) -> None:
        """Persist ``payload`` under ``key`` (atomic replace)."""
        wrapped = {
            "key": key,
            "kind": kind,
            "code": fingerprint if fingerprint is not None else code_fingerprint(),
            "payload": payload,
        }
        path = self._object_path(key)
        _atomic_write_text(path, json.dumps(wrapped, indent=None) + "\n")

    def contains(self, key: str) -> bool:
        return self._object_path(key).is_file()

    def iter_objects(self) -> Iterator[Tuple[Path, Dict[str, Any]]]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.rglob("*.json")):
            try:
                yield path, json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                yield path, {}

    # -- campaign directories ------------------------------------------
    def campaign_dir(self, campaign_id: str) -> Path:
        return self.root / "campaigns" / campaign_id

    def campaign_ids(self) -> list[str]:
        campaigns = self.root / "campaigns"
        if not campaigns.is_dir():
            return []
        return sorted(p.name for p in campaigns.iterdir() if p.is_dir())

    # -- garbage collection --------------------------------------------
    def gc(self, stale_only: bool = True, dry_run: bool = False) -> Dict[str, int]:
        """Prune the store.

        ``stale_only=True`` (the default) removes only objects and
        campaign directories recorded under a code fingerprint other
        than the current one -- entries that can never be hit again.
        ``stale_only=False`` wipes everything.  Returns removal counts
        and reclaimed bytes; ``dry_run`` reports without deleting.
        """
        current = code_fingerprint()
        removed_objects = removed_campaigns = freed = 0
        for path, wrapped in self.iter_objects():
            if stale_only and wrapped.get("code") == current:
                continue
            freed += path.stat().st_size
            removed_objects += 1
            if not dry_run:
                path.unlink()
        for campaign_id in self.campaign_ids():
            directory = self.campaign_dir(campaign_id)
            manifest_path = directory / "manifest.json"
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (FileNotFoundError, json.JSONDecodeError):
                manifest = {}
            if stale_only and manifest.get("code") == current:
                continue
            for path in sorted(directory.rglob("*")):
                if path.is_file():
                    freed += path.stat().st_size
            removed_campaigns += 1
            if not dry_run:
                import shutil

                shutil.rmtree(directory)
        return {
            "objects_removed": removed_objects,
            "campaigns_removed": removed_campaigns,
            "bytes_freed": freed,
        }


def _atomic_write_text(path: Path, text: str) -> None:
    """Write via tempfile + rename so readers never see partial objects."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise
