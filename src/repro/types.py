"""Shared primitive types used across the library.

The paper's terminology (Section 2.3) is mirrored here: hosts are *nodes*
identified by a globally unique node identifier (NID); an ad hoc network is
a graph whose edges connect nodes within transmission range of each other.
"""

from __future__ import annotations

import enum
from typing import NewType

#: Globally unique node identifier ("NID" in the paper).  NIDs are plain
#: integers; the lowest-ID clustering policy relies on their total order.
NodeId = NewType("NodeId", int)

#: Simulated time, in seconds.
SimTime = float

#: Message-loss probability (paper notation: ``p``).
LossProbability = float


class NodeRole(enum.Enum):
    """Role a node plays in the cluster-based communication architecture.

    Mirrors Figure 1 of the paper plus the redundancy roles of feature F2:

    - ``CH``  -- clusterhead, the center of a cluster (unit disk).
    - ``DCH`` -- deputy clusterhead, ranked stand-in that monitors the CH.
    - ``GW``  -- gateway, a one-hop neighbor of two (or more) CHs that
      participates in inter-cluster forwarding.
    - ``BGW`` -- backup gateway, ranked standby for a gateway.
    - ``OM``  -- ordinary member.
    - ``UNMARKED`` -- not yet admitted to any cluster (feature F4/F5).
    """

    CH = "clusterhead"
    DCH = "deputy-clusterhead"
    GW = "gateway"
    BGW = "backup-gateway"
    OM = "ordinary-member"
    UNMARKED = "unmarked"

    @property
    def is_marked(self) -> bool:
        """Whether a node with this role has been admitted to a cluster."""
        return self is not NodeRole.UNMARKED

    @property
    def participates_in_backbone(self) -> bool:
        """Whether this role takes part in inter-cluster communication."""
        return self in (NodeRole.CH, NodeRole.GW, NodeRole.BGW, NodeRole.DCH)


class NodeStatus(enum.Enum):
    """Ground-truth liveness of a simulated node (fail-stop model)."""

    ALIVE = "alive"
    CRASHED = "crashed"

    @property
    def is_operational(self) -> bool:
        return self is NodeStatus.ALIVE
