"""The simulation engine: a clock plus an event queue.

Design notes
------------
The engine is deliberately minimal -- ``schedule`` / ``run_until`` / ``run``
-- because every protocol in this library is round-based and needs nothing
fancier.  Determinism rules:

- time never goes backwards; scheduling strictly in the past raises;
- same-time events fire in (priority, insertion) order;
- all randomness is drawn from generators owned by components, never by the
  engine itself.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.obs.profiler import NULL_PROFILER, PHASE_SIM_HEAP, PhaseProfiler
from repro.sim.events import DEFAULT_PRIORITY, Event, EventQueue
from repro.types import SimTime


class Simulator:
    """A deterministic discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule_at(1.0, lambda: print("hello at t=1"))
        sim.run()
    """

    def __init__(
        self,
        start_time: SimTime = 0.0,
        profiler: Optional[PhaseProfiler] = None,
    ) -> None:
        self._now: SimTime = start_time
        self._queue = EventQueue()
        self._running = False
        self._processed = 0
        #: Phase profiler consulted by the engine and every component
        #: holding this simulator (the medium, the FDS rounds).  The
        #: disabled default costs one attribute load per hot call.
        self.profiler: PhaseProfiler = (
            profiler if profiler is not None else NULL_PROFILER
        )

    @property
    def now(self) -> SimTime:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of active events waiting to fire."""
        return len(self._queue)

    @property
    def processed_events(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    def schedule_at(
        self,
        time: SimTime,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute time ``time``.

        Scheduling exactly at ``now`` is allowed (the event fires within the
        current instant, after already-queued same-time events of equal
        priority); scheduling in the past raises :class:`SchedulingError`.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        return self._queue.push(time, callback, priority=priority, label=label)

    def schedule_in(
        self,
        delay: SimTime,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, label=label
        )

    def schedule_fire_and_forget(
        self, time: SimTime, callback: Callable[[], None]
    ) -> None:
        """Schedule a *non-cancellable* callback at absolute time ``time``.

        The hot path for high-fan-out producers (the radio medium schedules
        one delivery per surviving receiver of every transmission): skips
        the :class:`Event` handle allocation.  Ordering semantics are
        identical to :meth:`schedule_at` at default priority.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        self._queue.push_bare(time, callback)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event; idempotent."""
        self._queue.cancel(event)

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``False`` when the queue is empty (nothing was run).
        """
        if not self._queue:
            return False
        profiler = self.profiler
        if profiler.enabled:
            # Event-heap churn: the pop (and lazy cancellation skips)
            # alone, so callback work is charged to its own phase.
            t0 = perf_counter()
            time, _priority, _sequence, callback, _event = self._queue.pop_entry()
            profiler.add(PHASE_SIM_HEAP, t0)
        else:
            time, _priority, _sequence, callback, _event = self._queue.pop_entry()
        if time < self._now:  # pragma: no cover - guarded by schedule_at
            raise SimulationError("event queue yielded an event in the past")
        self._now = time
        self._processed += 1
        callback()
        return True

    def run_until(self, end_time: SimTime) -> None:
        """Run all events with ``time <= end_time``; clock ends at ``end_time``.

        The clock is advanced to ``end_time`` even if the queue drains early,
        so periodic services can keep scheduling relative to a known time.
        """
        if end_time < self._now:
            raise SchedulingError(
                f"end_time {end_time} is before current time {self._now}"
            )
        self._guard_reentry()
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                self.step()
        finally:
            self._running = False
        self._now = end_time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue is empty (or ``max_events`` is hit).

        ``max_events`` guards against unintentionally unbounded simulations
        (e.g. a periodic service with no stop condition).
        """
        self._guard_reentry()
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events}; a periodic "
                        "service may be rescheduling forever -- use run_until()"
                    )
                self.step()
                executed += 1
        finally:
            self._running = False

    def _guard_reentry(self) -> None:
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
