"""Round-level numpy array engine for million-node fields.

The event engine (:mod:`repro.sim`) dispatches one Python callback per
message, which caps practical field sizes near 10^3 nodes.  This package
expresses an entire FDS φ-interval -- R-1 heartbeats, R-2 digests, R-3
updates and inter-cluster forwarding across *all* clusters at once -- as
batched boolean-array programs:

- :mod:`.layout` -- the field as flat arrays: member matrices, radio
  adjacency, deputy ranks, and boundary gateways, built bit-identically
  to the scalar topology/cluster pipeline from the same seeded stream;
- :mod:`.loss` -- vectorized per-copy Bernoulli/bounded/distance loss
  draws under the shared ``SeedSequence`` discipline;
- :mod:`.formation` -- the six-round distributed formation protocol
  (Section 3, F1-F5) as batched array programs over the unit-disk edge
  list; lossless runs extract a ``ClusterLayout`` bit-identical to the
  event engine's :func:`~repro.cluster.formation.run_formation`;
- :mod:`.rounds` -- the per-execution array program (detection and
  refutation as masked reductions over the whole field);
- :mod:`.runner` -- :func:`run_array_scenario`, the drop-in scenario
  entry point selected by ``ScenarioConfig(engine="array")``.

The event engine remains the scalar reference; the differential soak
harness (:mod:`repro.audit.differential`) proves verdict-level
equivalence between the two on every soak run.
"""

from repro.sim.array_engine.formation import (
    FormationOutcome,
    formation_array_layout,
    formation_cluster_layout,
    formation_shape_violations,
    run_array_formation,
)
from repro.sim.array_engine.layout import (
    ArrayLayout,
    build_array_layout,
    lattice_positions,
)
from repro.sim.array_engine.loss import ARRAY_LOSS_KINDS, ArrayLossDraw
from repro.sim.array_engine.rounds import ArrayRoundEngine
from repro.sim.array_engine.runner import (
    ArrayScenarioResult,
    run_array_scenario,
)

__all__ = [
    "ARRAY_LOSS_KINDS",
    "ArrayLayout",
    "ArrayLossDraw",
    "ArrayRoundEngine",
    "ArrayScenarioResult",
    "FormationOutcome",
    "build_array_layout",
    "formation_array_layout",
    "formation_cluster_layout",
    "formation_shape_violations",
    "lattice_positions",
    "run_array_formation",
    "run_array_scenario",
]
