"""The round-level array program: one φ-interval per step, all clusters at once.

Where the event engine dispatches one Python callback per message, this
module expresses each FDS execution as a fixed sequence of batched
boolean-array operations over the :class:`~repro.sim.array_engine.layout.
ArrayLayout`:

1. draw the per-copy delivery masks for every R-1 heartbeat, R-2 digest
   and R-3 update of the execution (delivery masks from one dedicated
   seeded stream);
2. apply member-level liveness refutations (a node that hears a
   heartbeat from a node it marked failed unmarks it -- the event
   engine's ``_note_liveness``);
3. evaluate the CH refutation scan and the failure-detection rule as
   masked reductions (:func:`repro.fds.detector.failure_rule_mask`) for
   every cluster simultaneously;
4. synchronize members via the R-3 update broadcast plus the
   peer-forwarding recovery ladder;
5. apply the DCH's CH-failure rule per cluster and model false
   takeovers/reverts;
6. run inter-cluster forwarding to a fixpoint over the boundary graph,
   with a report-attempt ladder per crossing and relay broadcasts into
   receiving clusters.

Semantics tracked exactly (verified by the differential tests): crash
detection events (execution, detector, time), detection latency,
membership evolution, refute-before-detect ordering, digest acceptance
filtering by current membership, and the loss-independence of crashed-
node detection.  Deliberate, documented approximations (invisible to
the soak verdicts): per-member message *timing* inside a round is
collapsed, peer/inter retry ladders are modeled as ``max_forward_retries
+ 1`` independent attempts, takeovers do not switch round authority, and
cross-cluster heartbeat overhearing is not modeled.  The trace carries
the verdict-bearing record kinds only (detection/refutation/takeover).

Draw-order contract (engine-private; the gilbert chains and the bounded
budget depend on it, and it is what makes array runs replay bit-exactly
from the seed): per execution, in this fixed sequence -- ``hb_mc``,
``hb_cm``, ``hb_mm``, then with digests on ``dg_mc``, ``dg_cm``; the
R-3 update ``upd_direct``; the peer-recovery ladder (per attempt: one
request draw, one forward draw); the DCH witness draws ``dg_md`` per
deputy rank; finally the inter-cluster fixpoint (channels in lexsorted
(src, dst) order; per gateway rank: the overhear ladder for inbound
channels, the report-attempt ladder, the relay broadcast).  Gilbert
chain families follow the same sites: ``mc`` carries heartbeat, digest
and peer-request copies member -> own CH; ``cm`` carries CH broadcasts
(heartbeat, digest, update, peer forward, relay) toward each member;
``mm`` the member-pair copies (clustermate heartbeats and the DCH's
deputy-row witness draws); ``over``/``rep`` the per-channel gateway
ladders.

Energy (``track_energy``): an optional
:class:`~repro.sim.array_engine.energy.ArrayEnergyLedger` charges every
``transmissions`` increment to its sender and every delivered copy to
its receiver, batched at the enclosing round's nominal instant (R-1 at
the epoch, R-2 at ``+thop``, R-3 at ``+2*thop``, recovery/DCH/
inter-cluster at ``+3*thop``), transmit debits before receive debits
per instant.  ``tx_total`` therefore equals ``MessageCounts.
transmissions`` and ``rx_total`` equals the delivered-copy count -- the
invariant the soak's energy sub-pair asserts.  (With
``formation="protocol"`` both engines run formation *before* energy
tracking starts, so the invariant covers the FDS phase only: the
scenario-level ``MessageCounts`` additionally carries the formation
sends, on the event engine via the medium counters and here via
``FormationOutcome.transmissions``.)
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional

import numpy as np

from repro.fds import events as ev
from repro.fds.config import FdsConfig
from repro.fds.detector import (
    ch_failure_rule_mask,
    evidence_mask,
    failure_rule_mask,
)
from repro.obs.profiler import (
    PHASE_ARRAY_DRAWS,
    PHASE_ARRAY_INTERCLUSTER,
    PHASE_ARRAY_RULES,
    PHASE_ARRAY_SYNC,
    PhaseProfiler,
)
from repro.sim.array_engine.energy import ArrayEnergyLedger
from repro.sim.array_engine.layout import PAD, ArrayLayout
from repro.sim.array_engine.loss import ArrayLossDraw
from repro.sim.trace import Tracer


class ArrayRoundEngine:
    """Mutable per-run state plus the per-execution array program."""

    def __init__(
        self,
        layout: ArrayLayout,
        fds: FdsConfig,
        loss: ArrayLossDraw,
        tracer: Tracer,
        crash_exec: np.ndarray,
        fds_start: float = 0.0,
        profiler: Optional[PhaseProfiler] = None,
        energy: Optional[ArrayEnergyLedger] = None,
    ) -> None:
        self.layout = layout
        self.fds = fds
        self.loss = loss
        self.tracer = tracer
        self.profiler = profiler
        self.energy = energy
        self.fds_start = float(fds_start)
        #: First execution index during which each node is crashed
        #: (``executions`` + 1 for nodes that never crash).
        self.crash_exec = crash_exec

        c, m = layout.members.shape
        self.C, self.M = c, m
        #: Head NID per cluster index.  Oracle lattices use the identity
        #: (head NID == cluster index); protocol-formed layouts carry
        #: arbitrary head NIDs, so every knowledge-row / energy access
        #: for "the CH of cluster c" must go through this map.
        self.head_ids = layout.head_nids
        self._is_head = np.zeros(layout.node_count, dtype=bool)
        self._is_head[self.head_ids] = True
        # Tracked failure targets: every node some authority ever
        # suspected.  T stays tiny (crashes + rare false suspicions), so
        # per-node knowledge is an (N, T) bool matrix.
        self.t_ids: List[int] = []
        self.t_col: Dict[int, int] = {}
        self.t_cluster: List[int] = []
        self.t_slot: List[int] = []  # PAD for head targets
        self.known = np.zeros((layout.node_count, 0), dtype=bool)
        #: CH-side suspicion per member slot (mirror of known[head, col]).
        self.suspected = np.zeros((c, m), dtype=bool)
        #: Deputies that performed a (false) takeover and have not heard
        #: the old CH since.
        self.takeover_active = np.zeros(layout.deputies.shape, dtype=bool)

        # Message accounting (MessageCounts currency).
        self.transmissions = 0
        self.peer_requests = 0
        self.peer_forwards = 0
        self.peer_recoveries = 0
        self.reports_sent = 0
        self.report_retransmissions = 0
        self.bgw_activations = 0

        # Directed forwarding channels, two per boundary: a gateway sits
        # in the lens overlap and hears *both* CHs, so it serves the
        # boundary outbound (own CH's news -> peer CH) and inbound
        # (overheard peer-CH news -> own CH).  Each channel keeps the
        # ranked gateway NIDs (primary + BGW ladder), the gateway ->
        # destination-head report distance, and for inbound channels the
        # source-head -> gateway overhear distance.
        b = layout.boundary_owner.size
        if b:
            slots = layout.boundary_gateway_slots  # (B, G)
            ok = slots != PAD
            safe = np.where(ok, slots, 0)
            owner = layout.boundary_owner
            peer = layout.boundary_peer
            gw = np.where(ok, layout.members[owner[:, None], safe], PAD)
            gx = layout.xs[np.where(ok, gw, 0)]
            gy = layout.ys[np.where(ok, gw, 0)]
            peer_dist = np.where(
                ok,
                np.sqrt(
                    (gx - layout.xs[peer[:, None]]) ** 2
                    + (gy - layout.ys[peer[:, None]]) ** 2
                ),
                np.inf,
            )
            own_dist = np.where(
                ok, layout.head_dist[owner[:, None], safe], np.inf
            )
            self.ch_src = np.concatenate([owner, peer])
            self.ch_dst = np.concatenate([peer, owner])
            self.ch_gw_ids = np.vstack([gw, gw])
            self.ch_gw_ok = np.vstack([ok, ok])
            self.ch_inbound = np.concatenate(
                [np.zeros(b, dtype=bool), np.ones(b, dtype=bool)]
            )
            self.ch_report_dist = np.vstack([peer_dist, own_dist])
            self.ch_overhear_dist = np.vstack(
                [np.full_like(peer_dist, np.inf), peer_dist]
            )
            order = np.lexsort((self.ch_dst, self.ch_src))
            self.ch_src = self.ch_src[order]
            self.ch_dst = self.ch_dst[order]
            self.ch_gw_ids = self.ch_gw_ids[order]
            self.ch_gw_ok = self.ch_gw_ok[order]
            self.ch_inbound = self.ch_inbound[order]
            self.ch_report_dist = self.ch_report_dist[order]
            self.ch_overhear_dist = self.ch_overhear_dist[order]
            self.ch_src_nid = self.head_ids[self.ch_src]
            self.ch_dst_nid = self.head_ids[self.ch_dst]
        else:
            self.ch_src = np.zeros(0, dtype=np.int64)
            self.ch_dst = np.zeros(0, dtype=np.int64)
            self.ch_gw_ids = np.zeros((0, 1), dtype=np.int64)
            self.ch_gw_ok = np.zeros((0, 1), dtype=bool)
            self.ch_inbound = np.zeros(0, dtype=bool)
            self.ch_report_dist = np.zeros((0, 1), dtype=np.float64)
            self.ch_overhear_dist = np.zeros((0, 1), dtype=np.float64)
            self.ch_src_nid = np.zeros(0, dtype=np.int64)
            self.ch_dst_nid = np.zeros(0, dtype=np.int64)

        # The per-channel gateway ladders address chain cells by (b, g)
        # before any full-family draw would create them, so pre-create
        # their gilbert families (no-op for stateless loss kinds).
        self.loss.ensure_chain("over", self.ch_overhear_dist.shape)
        self.loss.ensure_chain("rep", self.ch_report_dist.shape)

        #: Post-R-3 energy accumulation buffers (filled by the recovery,
        #: DCH and intercluster phases, flushed at ``t_r3end``).
        self._e_tx: Optional[np.ndarray] = None
        self._e_rx: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Energy accounting helpers
    # ------------------------------------------------------------------
    def _node_counts(self) -> np.ndarray:
        return np.zeros(self.layout.node_count, dtype=np.int64)

    def _scatter_member_counts(
        self, counts_cm: np.ndarray, out: np.ndarray
    ) -> None:
        """Add per-slot member counts (C, M) into a per-node array."""
        mask = self.layout.member_mask
        out[self.layout.members[mask]] += counts_cm[mask]

    # ------------------------------------------------------------------
    # Target bookkeeping
    # ------------------------------------------------------------------
    def _col(self, node_id: int) -> int:
        """The (lazily created) knowledge column of a target NID."""
        col = self.t_col.get(node_id)
        if col is not None:
            return col
        col = len(self.t_ids)
        self.t_col[node_id] = col
        self.t_ids.append(node_id)
        cluster = int(self.layout.assign[node_id])
        if cluster == PAD:
            raise ValueError(
                f"node {node_id} is unclustered and cannot be a failure "
                "target (no authority observes it)"
            )
        self.t_cluster.append(cluster)
        if self._is_head[node_id]:
            self.t_slot.append(PAD)
        else:
            row = self.layout.members[cluster]
            self.t_slot.append(int(np.flatnonzero(row == node_id)[0]))
        self.known = np.concatenate(
            [self.known, np.zeros((self.layout.node_count, 1), dtype=bool)],
            axis=1,
        )
        return col

    def ensure_targets(self, node_ids) -> None:
        for nid in node_ids:
            self._col(int(nid))

    @property
    def T(self) -> int:
        return len(self.t_ids)

    def _clear_self_columns(self) -> None:
        """No node ever suspects itself (the rules exclude self)."""
        if self.t_ids:
            self.known[np.asarray(self.t_ids), np.arange(self.T)] = False

    # ------------------------------------------------------------------
    def _trace(self, time: float, kind: str, node: int, **detail) -> None:
        if self.tracer.enabled:
            self.tracer.record(time, kind, node=node, **detail)

    def _witness_reduce(
        self, sender_ok: np.ndarray, hb_mm: np.ndarray
    ) -> np.ndarray:
        """``out[c, v] = any_u(sender_ok[c, u] & hb_mm[c, u, v])``."""
        c, m = sender_ok.shape
        if m == 0:
            return np.zeros((c, 0), dtype=bool)
        out = np.zeros((c, m), dtype=bool)
        chunk = max(1, int(16_000_000 // max(1, m * m)))
        for lo in range(0, c, chunk):
            hi = min(c, lo + chunk)
            out[lo:hi] = (sender_ok[lo:hi, :, None] & hb_mm[lo:hi]).any(axis=1)
        return out

    # ------------------------------------------------------------------
    # One execution
    # ------------------------------------------------------------------
    def run_execution(self, e: int) -> None:
        layout, fds, loss = self.layout, self.fds, self.loss
        prof = self.profiler
        tick = _time.perf_counter
        epoch = self.fds_start + e * fds.phi
        t_r3 = epoch + 2.0 * fds.thop
        t_r3end = epoch + 3.0 * fds.thop
        use_digests = fds.use_digests

        alive = self.crash_exec > e
        alive_m = np.zeros((self.C, self.M), dtype=bool)
        if self.M:
            alive_m = layout.member_mask & alive[
                np.where(layout.member_mask, layout.members, 0)
            ]

        # -- R-1 / R-2 delivery draws (fixed order; see module docstring)
        t0 = tick()
        hd = layout.head_dist
        pd = layout.pair_dist
        hb_mc = loss.draw_into(alive_m, hd, chain="mc")  # member -> own CH
        hb_cm = loss.draw_into(alive_m, hd, chain="cm")  # CH broadcast -> member
        mm_active = layout.adjacency & alive_m[:, None, :] & alive_m[:, :, None]
        hb_mm = loss.draw_into(mm_active, pd, chain="mm")  # [c, hearer u, sender v]
        if use_digests:
            dg_mc = loss.draw_into(alive_m, hd, chain="mc")  # member digest -> CH
            dg_cm = loss.draw_into(alive_m, hd, chain="cm")  # CH digest -> member
        else:
            dg_mc = np.zeros((self.C, self.M), dtype=bool)
            dg_cm = np.zeros((self.C, self.M), dtype=bool)
        self.transmissions += int(alive_m.sum()) + self.C  # R-1 broadcasts
        if use_digests:
            self.transmissions += int(alive_m.sum()) + self.C
        energy = self.energy
        if energy is not None:
            tx = self._node_counts()
            tx[self.head_ids] += 1
            self._scatter_member_counts(alive_m.astype(np.int64), tx)
            energy.charge_tx(epoch, tx)
            rx = self._node_counts()
            rx[self.head_ids] += hb_mc.sum(axis=1)
            self._scatter_member_counts(
                hb_cm.astype(np.int64) + hb_mm.sum(axis=2), rx
            )
            energy.charge_rx(epoch, rx)
            if use_digests:
                energy.charge_tx(epoch + fds.thop, tx)  # same sender set
                rx = self._node_counts()
                rx[self.head_ids] += dg_mc.sum(axis=1)
                self._scatter_member_counts(dg_cm.astype(np.int64), rx)
                energy.charge_rx(epoch + fds.thop, rx)
        if prof is not None:
            prof.add_seconds(PHASE_ARRAY_DRAWS, tick() - t0)

        # -- member-level liveness refutations (heartbeats heard at R-1)
        t0 = tick()
        self._member_refutations(e, epoch, alive, hb_mm, hb_cm, dg_cm)

        # -- CH refutation scan, then the failure rule (R-3)
        sender_ok, witness = self._ch_refutations(
            epoch, t_r3, hb_mc, dg_mc, hb_mm
        )
        expected = layout.member_mask & ~self.suspected
        evidence = evidence_mask(
            hb_mc, sender_ok, witness, use_digests=use_digests
        )
        newly = failure_rule_mask(expected, evidence)
        self._record_detections(e, t_r3, newly)
        if prof is not None:
            prof.add_seconds(PHASE_ARRAY_RULES, tick() - t0)

        # -- R-3 update broadcast + peer-forwarding ladder
        t0 = tick()
        refuted_exec = self._refuted_this_exec
        upd_direct = loss.draw_into(alive_m, hd, chain="cm")
        self.transmissions += self.C
        if energy is not None:
            tx = self._node_counts()
            tx[self.head_ids] += 1
            energy.charge_tx(t_r3, tx)
            rx = self._node_counts()
            self._scatter_member_counts(upd_direct.astype(np.int64), rx)
            energy.charge_rx(t_r3, rx)
            # Everything after R-3 (peer ladder, DCH digests, the
            # intercluster fixpoint) is charged in one tx-then-rx batch
            # at t_r3end; the phases below accumulate into these.
            self._e_tx = self._node_counts()
            self._e_rx = self._node_counts()
        got_update = upd_direct.copy()
        if fds.peer_forwarding:
            got_update |= self._peer_recovery(alive_m, upd_direct, hd)
        self._apply_updates(got_update, refuted_exec)

        # -- DCH rule at R-3 end (direct update receipt only: the peer
        # ladder has not completed when the rule is evaluated)
        if fds.dch_enabled:
            self._dch_rule(
                e, t_r3end, alive, hb_cm, dg_cm, dg_mc, hb_mm, upd_direct,
                alive_m,
            )
        if prof is not None:
            prof.add_seconds(PHASE_ARRAY_SYNC, tick() - t0)

        # -- inter-cluster forwarding fixpoint
        if fds.intercluster_forwarding and self.ch_gw_ids.size:
            t0 = tick()
            self._intercluster(alive, alive_m, hd)
            if prof is not None:
                prof.add_seconds(PHASE_ARRAY_INTERCLUSTER, tick() - t0)

        if energy is not None:
            energy.charge_tx(t_r3end, self._e_tx)
            energy.charge_rx(t_r3end, self._e_rx)
            self._e_tx = None
            self._e_rx = None

        self._clear_self_columns()

    # ------------------------------------------------------------------
    def _member_refutations(
        self,
        e: int,
        epoch: float,
        alive: np.ndarray,
        hb_mm: np.ndarray,
        hb_cm: np.ndarray,
        dg_cm: np.ndarray,
    ) -> None:
        """Hearing a suspect's heartbeat unmarks it (``_note_liveness``).

        Covers member targets (clustermate heartbeats) and head targets
        (the CH's own heartbeat/digest reaching a takeover deputy).
        Runs before the digest stage, so a refuting hearer's digest
        again lists the target -- which is why the witness reduction
        needs no explicit belief filter: hearing implies belief.
        """
        layout = self.layout
        for col, nid in enumerate(self.t_ids):
            if not alive[nid]:
                continue
            c = self.t_cluster[col]
            slot = self.t_slot[col]
            if slot == PAD:  # head target: heartbeat or digest broadcast
                heard = hb_cm[c] | dg_cm[c]
            else:
                heard = hb_mm[c, :, slot]
            if not heard.any():
                continue
            row_ids = layout.members[c]
            marked = self.known[np.where(row_ids >= 0, row_ids, 0), col]
            marked &= layout.member_mask[c]
            refuters = heard & marked
            if not refuters.any():
                continue
            for s in np.flatnonzero(refuters):
                hearer = int(row_ids[s])
                self.known[hearer, col] = False
                self._trace(epoch, ev.REFUTATION, hearer, target=int(nid))
                if slot == PAD:
                    self._revert_takeover(e, epoch, c, hearer, int(nid))

    def _revert_takeover(
        self, e: int, epoch: float, c: int, deputy: int, head: int
    ) -> None:
        dep_row = self.layout.deputies[c]
        hits = np.flatnonzero(dep_row == deputy)
        if hits.size and self.takeover_active[c, hits[0]]:
            self.takeover_active[c, hits[0]] = False
            self._trace(
                epoch, ev.TAKEOVER_REVERTED, deputy,
                old_head=int(head), new_head=int(deputy),
            )

    def _ch_refutations(
        self,
        epoch: float,
        t_r3: float,
        hb_mc: np.ndarray,
        dg_mc: np.ndarray,
        hb_mm: np.ndarray,
    ) -> tuple:
        """CH-side liveness refutations, in the event engine's order.

        A suspect's direct heartbeat unmarks it at delivery time (R-1),
        *before* digest acceptance -- so a restored member's own R-2
        digest is accepted again.  The witness scan then runs at R-3
        over the accepted digests.  Returns ``(sender_ok, witness)`` for
        the detection rule; witnesses need no belief filter because a
        member that heard a suspect's heartbeat refuted its own mark at
        R-1 (see :meth:`_member_refutations`).
        """
        refuted_exec = np.zeros((self.C, self.T), dtype=bool)
        if self.suspected.any():
            for c, s in zip(*np.nonzero(self.suspected & hb_mc)):
                self._refute_at_ch(epoch, int(c), int(s), refuted_exec)
        sender_ok = dg_mc & ~self.suspected
        witness = self._witness_reduce(sender_ok, hb_mm)
        if self.suspected.any():
            for c, s in zip(*np.nonzero(self.suspected & witness)):
                self._refute_at_ch(t_r3, int(c), int(s), refuted_exec)
        self._refuted_this_exec = refuted_exec
        return sender_ok, witness

    def _refute_at_ch(
        self, when: float, c: int, s: int, refuted_exec: np.ndarray
    ) -> None:
        nid = int(self.layout.members[c, s])
        col = self.t_col[nid]
        head = int(self.head_ids[c])
        self.suspected[c, s] = False
        self.known[head, col] = False
        refuted_exec[c, col] = True
        self._trace(when, ev.REFUTATION, head, target=nid)

    def _record_detections(
        self, e: int, t_r3: float, newly: np.ndarray
    ) -> None:
        for c, s in zip(*np.nonzero(newly)):
            nid = int(self.layout.members[c, s])
            col = self._col(nid)
            if self._refuted_this_exec.shape[1] < self.T:
                grow = np.zeros(
                    (self.C, self.T - self._refuted_this_exec.shape[1]),
                    dtype=bool,
                )
                self._refuted_this_exec = np.concatenate(
                    [self._refuted_this_exec, grow], axis=1
                )
            head = int(self.head_ids[c])
            self.suspected[c, s] = True
            self.known[head, col] = True
            self._trace(
                t_r3, ev.DETECTION, head,
                target=nid, detector=head, execution=e,
            )

    # ------------------------------------------------------------------
    def _peer_recovery(
        self, alive_m: np.ndarray, upd_direct: np.ndarray, hd: np.ndarray
    ) -> np.ndarray:
        """The peer-forwarding ladder, as independent request+forward pairs.

        The event engine's waiting-period policy staggers responders
        over the recovery window; what matters for the verdicts is the
        number of *independent chances* a member gets, which the ladder
        models as ``max_forward_retries + 1`` attempts of one request
        plus one forward draw each (the CH is always a holder).  The
        bounded-adversary completeness argument carries over: blocking a
        member costs one drop for the update plus one per attempt, which
        exceeds any budget within ``max_forward_retries``.
        """
        pending = alive_m & ~upd_direct
        recovered = np.zeros_like(pending)
        attempts = self.fds.max_forward_retries + 1
        for _ in range(attempts):
            if not pending.any():
                break
            self.peer_requests += int(pending.sum())
            self.transmissions += int(pending.sum())
            req = self.loss.draw_into(pending, hd, chain="mc")
            self.peer_forwards += int(req.sum())
            self.transmissions += int(req.sum())
            fwd = self.loss.draw_into(req, hd, chain="cm")
            ok = req & fwd
            if self._e_tx is not None:
                self._scatter_member_counts(pending.astype(np.int64), self._e_tx)
                self._e_tx[self.head_ids] += req.sum(axis=1)
                self._e_rx[self.head_ids] += req.sum(axis=1)
                self._scatter_member_counts(ok.astype(np.int64), self._e_rx)
            recovered |= ok
            pending &= ~ok
        self.peer_recoveries += int(recovered.sum())
        return recovered

    def _apply_updates(
        self, got_update: np.ndarray, refuted_exec: np.ndarray
    ) -> None:
        """Merge the CH payload into every member that got the update.

        Refutations apply first, then the union of new and known
        failures -- the event engine's ``_apply_update`` order.
        """
        if not self.T or not got_update.any():
            return
        layout = self.layout
        ch_payload = self.known[self.head_ids]
        safe_ids = np.where(layout.member_mask, layout.members, 0)
        mk = self.known[safe_ids]  # (C, M, T) gathered copy
        rec = got_update[:, :, None]
        if refuted_exec.shape[1] < self.T:
            refuted_exec = np.concatenate(
                [
                    refuted_exec,
                    np.zeros(
                        (self.C, self.T - refuted_exec.shape[1]), dtype=bool
                    ),
                ],
                axis=1,
            )
        mk &= ~(rec & refuted_exec[:, None, :])
        mk |= rec & ch_payload[:, None, :]
        take = got_update & layout.member_mask
        self.known[layout.members[take]] = mk[take]

    # ------------------------------------------------------------------
    def _dch_rule(
        self,
        e: int,
        t_r3end: float,
        alive: np.ndarray,
        hb_cm: np.ndarray,
        dg_cm: np.ndarray,
        dg_mc: np.ndarray,
        hb_mm: np.ndarray,
        upd_direct: np.ndarray,
        alive_m: np.ndarray,
    ) -> None:
        """The CH-failure rule at every acting deputy.

        Deputy ``j`` acts iff it is alive and has marked every
        higher-ranked deputy failed (the event engine's ``_acting_
        deputy`` evaluated at the deputy itself).  CHs in the lattice
        never crash (the faultload excludes heads), so any firing here
        is a false takeover; the deputy suspects the head until it hears
        it again, at which point the takeover reverts.
        """
        layout, fds = self.layout, self.fds
        use_digests = fds.use_digests
        for j in range(layout.deputies.shape[1]):
            dep = layout.deputies[:, j]
            dslot = layout.deputy_slots[:, j]
            ok = dep != PAD
            if not ok.any():
                continue
            acting = ok & alive[np.where(ok, dep, 0)]
            for i in range(j):
                prev = layout.deputies[:, i]
                prev_ok = prev != PAD
                knows_prev = np.zeros(self.C, dtype=bool)
                for c in np.flatnonzero(acting & prev_ok):
                    col = self.t_col.get(int(prev[c]))
                    knows_prev[c] = (
                        col is not None and self.known[int(dep[c]), col]
                    )
                acting &= np.where(prev_ok, knows_prev, True)
            if not acting.any():
                continue
            rows = np.arange(self.C)
            safe_slot = np.where(ok, dslot, 0)
            hb_at_dep = hb_cm[rows, safe_slot]
            dg_at_dep = dg_cm[rows, safe_slot]
            if use_digests:
                # Digests the deputy overheard from clustermates that
                # themselves heard the CH's heartbeat.  Fresh draws for
                # the deputy's copies (per-receiver independence).
                dep_adj = layout.adjacency[rows, safe_slot]  # (C, M)
                md_active = (
                    dep_adj & alive_m & acting[:, None]
                )
                dg_md = self.loss.draw_into(
                    md_active, layout.head_dist,
                    chain="mm", at=(rows, safe_slot),
                )
                witness_head = (dg_md & hb_cm).any(axis=1)
                if self._e_rx is not None:
                    dep_ids = np.where(ok, dep, 0)
                    self._e_rx[dep_ids] += np.where(
                        ok, dg_md.sum(axis=1), 0
                    )
            else:
                dg_at_dep = np.zeros(self.C, dtype=bool)
                witness_head = np.zeros(self.C, dtype=bool)
            ch_evidence = evidence_mask(
                hb_at_dep, dg_at_dep, witness_head, use_digests=use_digests
            )
            upd_at_dep = upd_direct[rows, safe_slot]
            fires = acting & ch_failure_rule_mask(ch_evidence, upd_at_dep)
            for c in np.flatnonzero(fires):
                deputy = int(dep[c])
                head = int(self.head_ids[c])
                col = self._col(head)
                if self.known[deputy, col]:
                    continue  # already suspects the head
                self.known[deputy, col] = True
                self.takeover_active[c, j] = True
                self._trace(
                    t_r3end, ev.TAKEOVER, deputy,
                    old_head=head, new_head=deputy, execution=e,
                )
                self._trace(
                    t_r3end, ev.DETECTION, deputy,
                    target=head, detector=deputy, execution=e,
                )

    # ------------------------------------------------------------------
    def _intercluster(
        self, alive: np.ndarray, alive_m: np.ndarray, hd: np.ndarray
    ) -> None:
        """Forward fresh news across boundary channels to a fixpoint.

        Outbound channel: the first alive ranked gateway whose own
        knowledge exceeds the destination CH's forwards it (BGW ladder,
        counted as activations).  Inbound channel: the gateway must
        first overhear the source CH's broadcast (an attempt ladder --
        the origin rebroadcasts under the implicit-ack watch), then
        report to its own CH.  Each report needs one of
        ``max_forward_retries + 1`` attempts to arrive (one, with
        ``implicit_ack`` off).  A successful crossing relays into the
        destination cluster immediately (the event engine's
        same-execution forwarding cascade), so one fixpoint pass per
        propagation wave reaches the whole field under perfect links.
        """
        if not self.T:
            return
        fds, layout, loss = self.fds, self.layout, self.loss
        attempts = (fds.max_forward_retries + 1) if fds.implicit_ack else 1
        ok = self.ch_gw_ok
        safe_gw = np.where(ok, self.ch_gw_ids, 0)
        alive_gw = ok & alive[safe_gw]
        guard = 0
        while guard <= self.C + 2:
            guard += 1
            dst_known = self.known[self.ch_dst_nid]  # (2B, T)
            gw_known = self.known[safe_gw]  # (2B, G, T)
            out_has = (gw_known & ~dst_known[:, None, :]).any(axis=2)
            in_has = (self.known[self.ch_src_nid] & ~dst_known).any(axis=1)
            has = np.where(self.ch_inbound[:, None], in_has[:, None], out_has)
            has &= alive_gw
            active = np.flatnonzero(has.any(axis=1))
            if active.size == 0:
                break
            progressed = False
            for b in active:
                if self._cross_channel(int(b), has[b], alive_m, hd, attempts):
                    progressed = True
            if not progressed:
                break

    def _cross_channel(
        self,
        b: int,
        ranks_ok: np.ndarray,
        alive_m: np.ndarray,
        hd: np.ndarray,
        attempts: int,
    ) -> bool:
        """Attempt one channel crossing; returns True on success."""
        loss = self.loss
        layout = self.layout
        dst = int(self.ch_dst[b])  # cluster index (layout rows, chains)
        dst_nid = int(self.ch_dst_nid[b])  # the dst CH's knowledge row
        inbound = bool(self.ch_inbound[b])
        src_row = self.known[int(self.ch_src_nid[b])]
        for g in np.flatnonzero(ranks_ok):
            gid = int(self.ch_gw_ids[b, g])
            if inbound:
                news = src_row & ~self.known[dst_nid]
            else:
                news = self.known[gid] & ~self.known[dst_nid]
            if not news.any():
                return False  # covered by an earlier crossing this wave
            if inbound:
                over = loss.delivered(
                    attempts,
                    distances=np.full(attempts, self.ch_overhear_dist[b, g]),
                    chain="over",
                    at=(b, g),
                )
                if self._e_rx is not None:
                    self._e_rx[gid] += int(over.sum())
                if not over.any():
                    continue  # never overheard the source CH; next BGW
            if g > 0:
                self.bgw_activations += 1
            rep = loss.delivered(
                attempts,
                distances=np.full(attempts, self.ch_report_dist[b, g]),
                chain="rep",
                at=(b, g),
            )
            self.reports_sent += 1
            self.report_retransmissions += attempts - 1
            self.transmissions += attempts
            if self._e_tx is not None:
                self._e_tx[gid] += attempts
                self._e_rx[dst_nid] += int(rep.sum())
            if not rep.any():
                continue  # report ladder exhausted; next BGW takes over
            self.known[dst_nid] |= news
            rel = loss.draw_into(alive_m[dst], hd[dst], chain="cm", at=dst)
            self.transmissions += 1
            rec_ids = layout.members[dst][rel & layout.member_mask[dst]]
            if self._e_tx is not None:
                self._e_tx[dst_nid] += 1
                self._e_rx[rec_ids] += 1
            if rec_ids.size:
                self.known[rec_ids] |= news[None, :]
            return True
        return False
