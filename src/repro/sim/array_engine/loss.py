"""Vectorized per-copy loss draws for the array engine.

Mirrors the declarative ``(kind, params)`` specs of
:mod:`repro.sim.loss`, but produces *delivered* masks for whole batches
of copies in one call.  The array engine owns its draw order (documented
in the engine module): it consumes a dedicated named stream
(``stream("array", "loss")``) under the same
:class:`~repro.util.rng.RngFactory` discipline as every other consumer,
so array runs replay bit-exactly from the scenario seed without
perturbing the event engine's streams.

Kinds:

- ``perfect`` -- everything delivered, no stream consumption;
- ``bernoulli`` -- iid loss with probability ``p`` (the ``p in {0, 1}``
  shortcuts consume no randomness, like the scalar model);
- ``bounded`` -- Bernoulli until ``budget`` copies have been dropped
  over the whole run, then perfect.  The budget is spent in flat draw
  order, which is deterministic because the engine's draw sequence is;
- ``distance`` -- loss probability rising with link distance (callers
  pass per-copy distances);
- ``gilbert`` -- bursty loss via per-directed-link two-state Markov
  chains (Good/Bad), the vectorized twin of
  :class:`repro.sim.loss.GilbertElliottLoss` with the same parameter
  names and defaults as ``build_loss_model`` (p_good, p_bad, p_gb,
  p_bg).

Gilbert chain contract (engine-private, like the draw order itself):

- chain state lives in named *families* of boolean arrays (True = Bad),
  one entry per directed link the engine models: ``"mc"`` member ->
  own-CH, ``"cm"`` own-CH -> member, ``"mm"`` member -> clustermate,
  ``"over"`` source-CH -> gateway overhear, ``"rep"`` gateway ->
  destination-CH report, and ``"fm"`` the per-edge formation family
  (one entry per directed unit-disk edge, see
  :mod:`repro.sim.array_engine.formation`).  Draw sites that reuse a
  physical link reuse its family entry (heartbeats, digests, updates,
  peer traffic, relays all ride the same ``mc``/``cm``/``mm`` chains);
- every draw advances the chain exactly once per copy, in the scalar
  model's order: transition first (Good->Bad with ``p_gb``, Bad->Good
  with ``p_bg``), then the loss draw in the *new* state -- two uniforms
  per active copy;
- only active copies advance their chain or consume the stream,
  mirroring the event medium where absent links and crashed senders
  produce no transmissions;
- attempt ladders (:meth:`ArrayLossDraw.delivered` with ``chain``/
  ``at``) advance one link's chain sequentially, once per attempt --
  retries on a bursty link are correlated, which is the entire point of
  the model.

All chains start in the Good state, like the scalar model's fresh
per-link dictionary.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.util.validation import check_probability

#: Loss kinds the array engine can batch.
ARRAY_LOSS_KINDS = ("perfect", "bernoulli", "bounded", "distance", "gilbert")


class ArrayLossDraw:
    """Batched delivered-mask source for one run (see module docstring)."""

    def __init__(
        self,
        kind: str,
        params,
        loss_probability: float,
        transmission_range: float,
        rng: np.random.Generator,
    ) -> None:
        if kind not in ARRAY_LOSS_KINDS:
            raise ExperimentError(
                f"array engine supports loss kinds {ARRAY_LOSS_KINDS}, "
                f"got {kind!r}"
            )
        kwargs = dict(params or {})
        self.kind = kind
        self.rng = rng
        self.p = float(kwargs.pop("p", loss_probability))
        self.budget_left = int(kwargs.pop("budget", 3)) if kind == "bounded" else 0
        self.transmission_range = float(transmission_range)
        self.p_near = float(kwargs.pop("p_near", 0.02))
        self.p_far = float(kwargs.pop("p_far", 0.4))
        self.exponent = float(kwargs.pop("exponent", 2.0))
        # Gilbert-Elliott parameters: same names and defaults as
        # repro.sim.loss.build_loss_model's gilbert branch.
        if kind == "gilbert":
            self.p_good = check_probability(
                "p_good", float(kwargs.pop("p_good", 0.01))
            )
            self.p_bad = check_probability(
                "p_bad", float(kwargs.pop("p_bad", 0.8))
            )
            self.p_gb = check_probability(
                "p_gb", float(kwargs.pop("p_gb", 0.05))
            )
            self.p_bg = check_probability(
                "p_bg", float(kwargs.pop("p_bg", 0.3))
            )
            if self.p_gb + self.p_bg == 0:
                raise ExperimentError(
                    "p_gb + p_bg must be > 0 for an ergodic chain"
                )
        #: Per-family Markov state arrays, True = Bad (gilbert only).
        self._chains: Dict[str, np.ndarray] = {}
        #: Copy accounting for :class:`~repro.metrics.collectors.MessageCounts`.
        self.attempted = 0
        self.delivered_count = 0

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run average loss probability of the gilbert chain."""
        if self.kind != "gilbert":
            raise ExperimentError(
                "stationary_loss_rate is only defined for gilbert loss"
            )
        pi_bad = self.p_gb / (self.p_gb + self.p_bg)
        return (1 - pi_bad) * self.p_good + pi_bad * self.p_bad

    # ------------------------------------------------------------------
    # Gilbert chain state
    # ------------------------------------------------------------------
    def ensure_chain(self, name: str, shape: Tuple[int, ...]) -> None:
        """Pre-create a chain family (no-op for stateless kinds)."""
        if self.kind == "gilbert" and name not in self._chains:
            self._chains[name] = np.zeros(shape, dtype=bool)

    def _chain_view(self, chain: Optional[str], at, shape) -> np.ndarray:
        """The (gathered) state array for a draw site, creating lazily."""
        if chain is None:
            raise ExperimentError(
                "gilbert draws require a chain family name (engine bug)"
            )
        state = self._chains.get(chain)
        if state is None:
            if at is not None:
                raise ExperimentError(
                    f"chain family {chain!r} indexed before creation "
                    "(engine bug)"
                )
            state = np.zeros(shape, dtype=bool)
            self._chains[chain] = state
        return state

    def _gilbert_flat(self, n: int, states: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Advance ``n`` link chains one step and draw their losses.

        ``states`` is a flat boolean array (True = Bad) of the active
        links; returns ``(new_states, lost)``.  Transition first, then
        the loss draw in the new state -- the scalar model's order.
        """
        u = self.rng.random(n)
        toggle = u < np.where(states, self.p_bg, self.p_gb)
        new_states = states ^ toggle
        u2 = self.rng.random(n)
        lost = u2 < np.where(new_states, self.p_bad, self.p_good)
        return new_states, lost

    # ------------------------------------------------------------------
    def delivered(
        self,
        count: int,
        distances: Optional[np.ndarray] = None,
        chain: Optional[str] = None,
        at=None,
    ) -> np.ndarray:
        """A delivered mask for ``count`` copies (True = arrives).

        For ``gilbert`` the ``count`` copies are *sequential attempts on
        one directed link* -- ``chain``/``at`` name its state cell, and
        the chain advances once per attempt.
        """
        if count <= 0:
            return np.zeros(0, dtype=bool)
        self.attempted += count
        if self.kind == "perfect":
            self.delivered_count += count
            return np.ones(count, dtype=bool)
        if self.kind == "gilbert":
            state = self._chain_view(chain, at, ())
            cell = at if at is not None else ()
            s = np.asarray([state[cell]])
            out = np.empty(count, dtype=bool)
            for i in range(count):
                s, lost = self._gilbert_flat(1, s)
                out[i] = not lost[0]
            state[cell] = bool(s[0])
            self.delivered_count += int(out.sum())
            return out
        if self.kind == "distance":
            if distances is None:
                raise ExperimentError(
                    "distance loss draws require per-copy distances"
                )
            frac = np.clip(
                np.asarray(distances, dtype=np.float64)
                / self.transmission_range,
                0.0,
                1.0,
            )
            p = np.clip(
                self.p_near + (self.p_far - self.p_near) * frac ** self.exponent,
                0.0,
                1.0,
            )
            out = self.rng.random(count) >= p
            self.delivered_count += int(out.sum())
            return out
        # bernoulli / bounded share the p in {0, 1} shortcut discipline.
        if self.p == 0.0:
            self.delivered_count += count
            return np.ones(count, dtype=bool)
        if self.kind == "bounded" and self.budget_left <= 0:
            self.delivered_count += count
            return np.ones(count, dtype=bool)
        if self.p == 1.0:
            lost = np.ones(count, dtype=bool)
        else:
            lost = self.rng.random(count) < self.p
        if self.kind == "bounded":
            # Spend the budget in flat draw order; later losses revert
            # to deliveries once the adversary is out of drops.
            idx = np.flatnonzero(lost)
            if idx.size > self.budget_left:
                lost[idx[self.budget_left:]] = False
                self.budget_left = 0
            else:
                self.budget_left -= int(idx.size)
        out = ~lost
        self.delivered_count += int(out.sum())
        return out

    def draw_into(
        self,
        active: np.ndarray,
        distances: Optional[np.ndarray] = None,
        chain: Optional[str] = None,
        at=None,
    ) -> np.ndarray:
        """Delivered mask shaped like ``active``; False wherever inactive.

        Only active copies consume the stream (and, for ``bounded``, the
        budget; for ``gilbert``, their link's chain step), mirroring the
        event medium where crashed senders and absent links produce no
        transmissions at all.  ``chain`` names the gilbert state family
        (position in ``active`` identifies the directed link); ``at``
        optionally indexes into a larger family so a draw site can
        address a slice of it (e.g. one cluster's CH -> member row).
        """
        if self.kind == "gilbert":
            out = np.zeros(active.shape, dtype=bool)
            flat = np.flatnonzero(active)
            if flat.size:
                self.attempted += int(flat.size)
                state = self._chain_view(chain, at, active.shape)
                # Gather-copy under ``at`` (advanced indexing may not
                # yield a writable view), mutate, scatter back.
                gathered = state[at].copy() if at is not None else state
                s = gathered.ravel()[flat].copy()
                s, lost = self._gilbert_flat(int(flat.size), s)
                gathered.ravel()[flat] = s
                if at is not None:
                    state[at] = gathered
                out.ravel()[flat] = ~lost
                self.delivered_count += int((~lost).sum())
            return out
        out = np.zeros(active.shape, dtype=bool)
        flat = np.flatnonzero(active)
        if flat.size:
            d = None
            if distances is not None:
                d = np.asarray(distances).ravel()[flat]
            out.ravel()[flat] = self.delivered(int(flat.size), distances=d)
        return out
