"""Vectorized per-copy loss draws for the array engine.

Mirrors the declarative ``(kind, params)`` specs of
:mod:`repro.sim.loss`, but produces *delivered* masks for whole batches
of copies in one call.  The array engine owns its draw order (documented
in the engine module): it consumes a dedicated named stream
(``stream("array", "loss")``) under the same
:class:`~repro.util.rng.RngFactory` discipline as every other consumer,
so array runs replay bit-exactly from the scenario seed without
perturbing the event engine's streams.

Kinds:

- ``perfect`` -- everything delivered, no stream consumption;
- ``bernoulli`` -- iid loss with probability ``p`` (the ``p in {0, 1}``
  shortcuts consume no randomness, like the scalar model);
- ``bounded`` -- Bernoulli until ``budget`` copies have been dropped
  over the whole run, then perfect.  The budget is spent in flat draw
  order, which is deterministic because the engine's draw sequence is;
- ``distance`` -- loss probability rising with link distance (callers
  pass per-copy distances).

``gilbert`` keeps per-directed-link Markov state whose draw order is
inherently sequential; it stays event-engine-only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ExperimentError

#: Loss kinds the array engine can batch.
ARRAY_LOSS_KINDS = ("perfect", "bernoulli", "bounded", "distance")


class ArrayLossDraw:
    """Batched delivered-mask source for one run (see module docstring)."""

    def __init__(
        self,
        kind: str,
        params,
        loss_probability: float,
        transmission_range: float,
        rng: np.random.Generator,
    ) -> None:
        if kind not in ARRAY_LOSS_KINDS:
            raise ExperimentError(
                f"array engine supports loss kinds {ARRAY_LOSS_KINDS}, "
                f"got {kind!r} (use engine='event' for stateful models)"
            )
        kwargs = dict(params or {})
        self.kind = kind
        self.rng = rng
        self.p = float(kwargs.pop("p", loss_probability))
        self.budget_left = int(kwargs.pop("budget", 3)) if kind == "bounded" else 0
        self.transmission_range = float(transmission_range)
        self.p_near = float(kwargs.pop("p_near", 0.02))
        self.p_far = float(kwargs.pop("p_far", 0.4))
        self.exponent = float(kwargs.pop("exponent", 2.0))
        #: Copy accounting for :class:`~repro.metrics.collectors.MessageCounts`.
        self.attempted = 0
        self.delivered_count = 0

    # ------------------------------------------------------------------
    def delivered(
        self, count: int, distances: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """A delivered mask for ``count`` copies (True = arrives)."""
        if count <= 0:
            return np.zeros(0, dtype=bool)
        self.attempted += count
        if self.kind == "perfect":
            self.delivered_count += count
            return np.ones(count, dtype=bool)
        if self.kind == "distance":
            if distances is None:
                raise ExperimentError(
                    "distance loss draws require per-copy distances"
                )
            frac = np.clip(
                np.asarray(distances, dtype=np.float64)
                / self.transmission_range,
                0.0,
                1.0,
            )
            p = np.clip(
                self.p_near + (self.p_far - self.p_near) * frac ** self.exponent,
                0.0,
                1.0,
            )
            out = self.rng.random(count) >= p
            self.delivered_count += int(out.sum())
            return out
        # bernoulli / bounded share the p in {0, 1} shortcut discipline.
        if self.p == 0.0:
            self.delivered_count += count
            return np.ones(count, dtype=bool)
        if self.kind == "bounded" and self.budget_left <= 0:
            self.delivered_count += count
            return np.ones(count, dtype=bool)
        if self.p == 1.0:
            lost = np.ones(count, dtype=bool)
        else:
            lost = self.rng.random(count) < self.p
        if self.kind == "bounded":
            # Spend the budget in flat draw order; later losses revert
            # to deliveries once the adversary is out of drops.
            idx = np.flatnonzero(lost)
            if idx.size > self.budget_left:
                lost[idx[self.budget_left:]] = False
                self.budget_left = 0
            else:
                self.budget_left -= int(idx.size)
        out = ~lost
        self.delivered_count += int(out.sum())
        return out

    def draw_into(
        self,
        active: np.ndarray,
        distances: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Delivered mask shaped like ``active``; False wherever inactive.

        Only active copies consume the stream (and, for ``bounded``, the
        budget), mirroring the event medium where crashed senders and
        absent links produce no transmissions at all.
        """
        out = np.zeros(active.shape, dtype=bool)
        flat = np.flatnonzero(active)
        if flat.size:
            d = None
            if distances is not None:
                d = np.asarray(distances).ravel()[flat]
            out.ravel()[flat] = self.delivered(int(flat.size), distances=d)
        return out
