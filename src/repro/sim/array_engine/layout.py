"""Vectorized field construction for the array engine.

Reproduces, without ever instantiating per-node Python objects, exactly
what the event-engine setup path produces for the ``multi_cluster_field``
lattice under the geometric oracle:

- **Placement** is bit-identical to :func:`~repro.topology.generators.
  multi_cluster_field`: member positions come from the same
  ``stream("placement")`` generator, drawn as one strided ``random(2n)``
  block (``rng.uniform()`` consumes exactly one stream element, so the
  interleaved radius/angle draws match the scalar loop bit-for-bit).
- **Cluster assignment** equals :func:`~repro.cluster.geometric.
  lowest_id_partition` on the unit-disk graph, computed in O(N) from
  lattice arithmetic instead of O(N·deg) Python graph traversal:
  lattice CHs are pairwise non-adjacent (spacing in ``(r, 2r)``) and
  carry the lowest NIDs, so every lattice CH becomes a head and every
  member joins the lowest-ID lattice head within radio range.  Because
  the lattice pitch exceeds the radius, the only candidate heads for a
  node are the four surrounding lattice cells.
- **Deputies and boundaries** replicate the rank keys of
  :mod:`repro.cluster.deputies` and :mod:`repro.cluster.gateways`.

The layout-equivalence test (``tests/test_array_engine.py``) pins this
against the real :func:`build_clusters` output at moderate N.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import TopologyError

#: Pad value for ragged (cluster, slot) integer arrays.
PAD = -1


@dataclass
class ArrayLayout:
    """The whole field as flat arrays (see module docstring).

    Member slots within a cluster row are sorted by NID ascending, so
    slot order == the deterministic iteration order of the event engine.
    """

    cluster_count: int
    node_count: int
    radius: float
    #: Node positions, indexed by NID (heads are NIDs ``0..C-1``).
    xs: np.ndarray
    ys: np.ndarray
    #: Cluster index of every node (head ``h`` maps to ``h``).
    assign: np.ndarray
    #: ``(C, M)`` member NIDs, ``PAD``-padded; excludes the head itself.
    members: np.ndarray
    #: ``(C, M)`` True where :attr:`members` holds a real NID.
    member_mask: np.ndarray
    #: Per-cluster member count.
    member_counts: np.ndarray
    #: ``(C, M, M)`` member<->member radio adjacency (diagonal False).
    adjacency: np.ndarray
    #: ``(C, M)`` member distance to own head (inf at pads).
    head_dist: np.ndarray
    #: ``(C, D)`` deputy NIDs per cluster, ``PAD``-padded.
    deputies: np.ndarray
    #: ``(C, D)`` deputy member-slot indices, ``PAD``-padded.
    deputy_slots: np.ndarray
    #: Ordered boundary list (sorted by owner, peer): cluster indices and
    #: the owner-cluster slots of the ranked gateways -- ``(B, G)`` with
    #: ``G = 1 + max_backups``, primary first, ``PAD`` where the
    #: candidate pool ran dry (the event layout's GW + BGW ladder).
    boundary_owner: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    boundary_peer: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    boundary_gateway_slots: np.ndarray = field(
        default_factory=lambda: np.zeros((0, 1), np.int64)
    )
    #: ``(C, M, M)`` member<->member distances (only materialized for
    #: distance-dependent loss models).
    pair_dist: Optional[np.ndarray] = None
    #: Cluster index -> head NID.  ``None`` means the oracle lattice
    #: identity (head ``c`` carries NID ``c``); protocol-formed layouts
    #: (:func:`~repro.sim.array_engine.formation.formation_array_layout`)
    #: carry arbitrary head NIDs here.
    head_ids: Optional[np.ndarray] = None

    @property
    def max_members(self) -> int:
        return int(self.members.shape[1])

    @property
    def head_nids(self) -> np.ndarray:
        """Cluster index -> head NID, defaulting to the lattice identity."""
        if self.head_ids is not None:
            return self.head_ids
        return np.arange(self.cluster_count, dtype=np.int64)

    def slot_of(self, node_id: int) -> tuple:
        """``(cluster, slot)`` of a member NID (linear scan; test helper)."""
        cluster = int(self.assign[node_id])
        row = self.members[cluster]
        hits = np.flatnonzero(row == node_id)
        if hits.size == 0:
            raise TopologyError(f"node {node_id} is not a member slot")
        return cluster, int(hits[0])


def _member_positions(
    cluster_count: int,
    members_per_cluster: int,
    radius: float,
    spacing: float,
    cols: int,
    rng: np.random.Generator,
) -> tuple:
    """Head and member coordinates, bit-identical to the scalar path."""
    idx = np.arange(cluster_count, dtype=np.int64)
    hx = (idx % cols).astype(np.float64) * spacing
    hy = (idx // cols).astype(np.float64) * spacing
    count = cluster_count * members_per_cluster
    u = rng.random(2 * count)
    rr = radius * np.sqrt(u[0::2])
    theta = 2.0 * math.pi * u[1::2]
    disk = np.arange(count, dtype=np.int64) // members_per_cluster
    mx = hx[disk] + rr * np.cos(theta)
    my = hy[disk] + rr * np.sin(theta)
    return hx, hy, mx, my


def _assign_members(
    mx: np.ndarray,
    my: np.ndarray,
    spacing: float,
    radius: float,
    cols: int,
    cluster_count: int,
) -> np.ndarray:
    """Lowest-ID head within radius, per member node.

    Spacing > radius bounds the per-axis offset of any in-range head to
    less than one lattice pitch, so the candidates are the four corners
    of the lattice cell containing the node.
    """
    rows_total = (cluster_count + cols - 1) // cols
    c0 = np.floor(mx / spacing).astype(np.int64)
    r0 = np.floor(my / spacing).astype(np.int64)
    best = np.full(mx.shape, np.iinfo(np.int64).max, dtype=np.int64)
    r2 = radius * radius
    for dr in (0, 1):
        for dc in (0, 1):
            col = c0 + dc
            row = r0 + dr
            head = row * cols + col
            valid = (
                (col >= 0)
                & (col < cols)
                & (row >= 0)
                & (row < rows_total)
                & (head < cluster_count)
            )
            dx = mx - col.astype(np.float64) * spacing
            dy = my - row.astype(np.float64) * spacing
            hit = valid & (dx * dx + dy * dy <= r2)
            best = np.where(hit & (head < best), head, best)
    if np.any(best == np.iinfo(np.int64).max):  # pragma: no cover - by
        # construction every member lies within its own disk's head range
        raise TopologyError("member with no head in range")
    return best


def _fill_adjacency(
    out: np.ndarray,
    px: np.ndarray,
    py: np.ndarray,
    member_mask: np.ndarray,
    radius: float,
    keep_dist: bool = False,
) -> Optional[np.ndarray]:
    """Member<->member adjacency per cluster, chunked to bound memory."""
    c, m = px.shape
    if m == 0:
        return np.zeros((c, m, m), dtype=np.float32) if keep_dist else None
    dist = np.zeros((c, m, m), dtype=np.float32) if keep_dist else None
    chunk = max(1, int(8_000_000 // max(1, m * m)))
    r2 = radius * radius
    di = np.arange(m)
    for lo in range(0, c, chunk):
        hi = min(c, lo + chunk)
        # float64 throughout: the equivalence tests compare against the
        # graph's float64 edge predicate, so no rounding at the boundary.
        dx = px[lo:hi, :, None] - px[lo:hi, None, :]
        dy = py[lo:hi, :, None] - py[lo:hi, None, :]
        d2 = dx * dx + dy * dy
        adj = d2 <= r2
        adj &= member_mask[lo:hi, :, None] & member_mask[lo:hi, None, :]
        adj[:, di, di] = False
        out[lo:hi] = adj
        if dist is not None:
            dist[lo:hi] = np.sqrt(d2).astype(np.float32)
        del dx, dy, d2, adj
    return dist


def lattice_positions(
    cluster_count: int,
    members_per_cluster: int,
    radius: float,
    rng: np.random.Generator,
    spacing_factor: float = 1.6,
) -> tuple:
    """``(xs, ys)`` of the whole lattice field, heads first.

    Bit-identical to :func:`~repro.topology.generators.
    multi_cluster_field` under the same ``stream("placement")``
    generator -- the coordinate source for protocol formation, which
    needs raw positions rather than the oracle's pre-assigned layout.
    """
    if not 1.0 < spacing_factor < 2.0:
        raise TopologyError(
            "spacing_factor must be in (1, 2) so disks overlap without "
            f"CHs being mutual neighbors; got {spacing_factor}"
        )
    cols = max(1, int(math.ceil(math.sqrt(cluster_count))))
    spacing = spacing_factor * radius
    hx, hy, mx, my = _member_positions(
        cluster_count, members_per_cluster, radius, spacing, cols, rng
    )
    return np.concatenate([hx, mx]), np.concatenate([hy, my])


def build_array_layout(
    cluster_count: int,
    members_per_cluster: int,
    radius: float,
    rng: np.random.Generator,
    spacing_factor: float = 1.6,
    deputy_count: int = 2,
    max_backups: int = 2,
    keep_pair_dist: bool = False,
) -> ArrayLayout:
    """Build the full array layout (see module docstring)."""
    if not 1.0 < spacing_factor < 2.0:
        raise TopologyError(
            "spacing_factor must be in (1, 2) so disks overlap without "
            f"CHs being mutual neighbors; got {spacing_factor}"
        )
    cols = max(1, int(math.ceil(math.sqrt(cluster_count))))
    spacing = spacing_factor * radius
    hx, hy, mx, my = _member_positions(
        cluster_count, members_per_cluster, radius, spacing, cols, rng
    )
    node_count = cluster_count + mx.size
    xs = np.concatenate([hx, mx])
    ys = np.concatenate([hy, my])

    assign = np.empty(node_count, dtype=np.int64)
    assign[:cluster_count] = np.arange(cluster_count)
    assign[cluster_count:] = _assign_members(
        mx, my, spacing, radius, cols, cluster_count
    )

    counts = np.bincount(assign[cluster_count:], minlength=cluster_count)
    max_m = int(counts.max()) if counts.size else 0
    members = np.full((cluster_count, max_m), PAD, dtype=np.int64)
    member_mask = np.zeros((cluster_count, max_m), dtype=bool)
    member_ids = np.arange(cluster_count, node_count, dtype=np.int64)
    order = np.argsort(assign[cluster_count:], kind="stable")
    sorted_ids = member_ids[order]
    sorted_cl = assign[cluster_count:][order]
    starts = np.zeros(cluster_count + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    slot = np.arange(sorted_ids.size, dtype=np.int64) - starts[sorted_cl]
    members[sorted_cl, slot] = sorted_ids
    member_mask[sorted_cl, slot] = True

    px = np.where(member_mask, xs[np.where(members >= 0, members, 0)], np.nan)
    py = np.where(member_mask, ys[np.where(members >= 0, members, 0)], np.nan)
    head_dx = px - hx[:, None]
    head_dy = py - hy[:, None]
    head_dist = np.where(
        member_mask, np.sqrt(head_dx * head_dx + head_dy * head_dy), np.inf
    )

    adjacency = np.zeros((cluster_count, max_m, max_m), dtype=bool)
    with np.errstate(invalid="ignore"):
        pair_dist = _fill_adjacency(
            adjacency, px, py, member_mask, radius, keep_dist=keep_pair_dist
        )

    # Deputy ranking: (distance-to-head asc, in-cluster degree desc, NID).
    # In-cluster degree counts neighbors within the member set *plus* the
    # head (every member is inside its head's disk, hence adjacent).
    degree = adjacency.sum(axis=2) + member_mask.astype(np.int64)
    ids_for_sort = np.where(member_mask, members, np.iinfo(np.int64).max)
    # Per-cluster slot order, best deputy first (pads sort last via inf).
    rank = np.lexsort((ids_for_sort, -degree, head_dist), axis=-1)
    deputies = np.full((cluster_count, deputy_count), PAD, dtype=np.int64)
    deputy_slots = np.full((cluster_count, deputy_count), PAD, dtype=np.int64)
    if max_m and deputy_count:
        for j in range(min(deputy_count, max_m)):
            slot_j = rank[:, j]
            ok = member_mask[np.arange(cluster_count), slot_j]
            deputy_slots[:, j] = np.where(ok, slot_j, PAD)
            deputies[:, j] = np.where(
                ok, members[np.arange(cluster_count), slot_j], PAD
            )

    b_owner, b_peer, b_slots = _build_boundaries(
        cluster_count, cols, spacing, radius, hx, hy, px, py,
        member_mask, members, head_dist, max_backups,
    )

    return ArrayLayout(
        cluster_count=cluster_count,
        node_count=node_count,
        radius=radius,
        xs=xs,
        ys=ys,
        assign=assign,
        members=members,
        member_mask=member_mask,
        member_counts=counts.astype(np.int64),
        adjacency=adjacency,
        head_dist=head_dist,
        deputies=deputies,
        deputy_slots=deputy_slots,
        boundary_owner=b_owner,
        boundary_peer=b_peer,
        boundary_gateway_slots=b_slots,
        pair_dist=pair_dist,
    )


def _build_boundaries(
    cluster_count: int,
    cols: int,
    spacing: float,
    radius: float,
    hx: np.ndarray,
    hy: np.ndarray,
    px: np.ndarray,
    py: np.ndarray,
    member_mask: np.ndarray,
    members: np.ndarray,
    head_dist: np.ndarray,
    max_backups: int,
) -> tuple:
    """Ordered boundaries with ranked gateways (gateways.py rank key).

    A boundary owner->peer exists iff some owner member lies within
    radius of the peer head.  Peer heads more than one lattice cell away
    sit at distance >= 2*spacing > 2*radius from the owner center, so no
    owner member can reach them: the 8 surrounding cells are exhaustive.
    Per boundary the top ``1 + max_backups`` candidates are kept --
    primary gateway plus the BGW ladder the event layout falls back to
    when the primary is dead or uninformed.
    """
    if members.shape[1] == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), np.zeros((0, 1 + max_backups), np.int64)
    rows_total = (cluster_count + cols - 1) // cols
    idx = np.arange(cluster_count, dtype=np.int64)
    own_col = idx % cols
    own_row = idx // cols
    owners = []
    peers = []
    slots = []
    r2 = radius * radius
    arange_c = idx
    gw_count = 1 + max_backups
    for dr in (-1, 0, 1):
        for dc in (-1, 0, 1):
            if dr == 0 and dc == 0:
                continue
            pcol = own_col + dc
            prow = own_row + dr
            peer = prow * cols + pcol
            valid = (
                (pcol >= 0)
                & (pcol < cols)
                & (prow >= 0)
                & (prow < rows_total)
                & (peer < cluster_count)
            )
            if not valid.any():
                continue
            phx = hx[np.where(valid, peer, 0)][:, None]
            phy = hy[np.where(valid, peer, 0)][:, None]
            with np.errstate(invalid="ignore"):
                d2 = (px - phx) ** 2 + (py - phy) ** 2
                cand = member_mask & (d2 <= r2) & valid[:, None]
                # Rank key: (max of the two head distances, NID).  Slots
                # are NID-ascending, so a stable argsort over the
                # worst-link distance yields the GW + BGW ladder order.
                worst = np.maximum(head_dist, np.sqrt(d2))
            worst = np.where(cand, worst, np.inf)
            has = cand.any(axis=1)
            rank = np.argsort(worst, axis=1, kind="stable")[:, :gw_count]
            ranked_ok = np.take_along_axis(worst, rank, axis=1) < np.inf
            ranked = np.where(ranked_ok, rank, PAD)
            for c in arange_c[has]:
                owners.append(int(c))
                peers.append(int(peer[c]))
                slots.append(ranked[c])
    if not owners:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), np.zeros((0, gw_count), dtype=np.int64)
    order = np.lexsort((np.asarray(peers), np.asarray(owners)))
    return (
        np.asarray(owners, dtype=np.int64)[order],
        np.asarray(peers, dtype=np.int64)[order],
        np.asarray(slots, dtype=np.int64)[order],
    )
