"""Vectorized distributed cluster formation (Section 3) for the array engine.

Runs the same six-round formation iteration as
:mod:`repro.cluster.formation` -- R0 heartbeats, R1 lowest-NID CH
declarations with RCC backoff, R2 join requests, R3 announcements and
marking, R4 gateway candidacies, R5 boundary assignments, plus the RCC
resign/dissolve repair -- as batched numpy array programs over flat
node/edge arrays instead of per-node protocol objects and timers.

Round synchrony
---------------
The event engine's formation is round-synchronous by construction as long
as ``max_delay <= (1 - backoff_fraction) * thop``: every message sent at a
round's start (and every backed-off declaration) is delivered, if not
lost, before the next round fires.  The shipped
:class:`~repro.sim.network.NetworkConfig` fixes ``max_delay = 0.1`` with
``thop = 0.5`` and ``backoff_fraction = 0.4``, so the condition always
holds and the per-event schedule collapses to the synchronous round model
this module implements.

Draw-order contract (engine-private, like the FDS rounds)
---------------------------------------------------------
All formation loss draws ride one chain family, ``"fm"``, shaped ``(E,)``
over the canonical ``(src, dst)``-sorted directed edge list -- every
formation message between two nodes is an attempt on that physical link,
exactly the discipline the gilbert lift established for the FDS chains.
Per iteration the draws are consumed in this fixed order:

1. R0 heartbeats: one draw over all ``E`` edges;
2. wave-A dissolve: one draw over the out-edges of heads resigning on a
   lower-NID head heartbeat;
3. R1 declarations: one draw over the out-edges of *all* qualified
   nodes (the array engine draws before suppression resolves, so under
   loss it consumes copies for declarations the event engine would have
   suppressed -- an engine-private over-draw; under lossless channels
   qualified nodes are pairwise non-adjacent and all of them fire, so
   transmissions and deliveries match the event engine exactly);
4. wave-B dissolve: heads resigning on a lower-NID declaration;
5. R2 join requests: one draw over the joiner->target edges;
6. R3 announcements: one draw over the heads' out-edges;
7. wave-C dissolve: heads resigning on a lower-NID announcement;
8. R4 candidacies: one draw over the member->own-CH edges;
9. R5 boundary assignments: one broadcast per (head, peer) pair --
   non-gilbert kinds consume one flat block of ``sum(deg(head) *
   groups(head))`` copies, gilbert advances each head's out-edge chains
   once per assignment broadcast.

Backoff draws come from a dedicated ``stream("array", "formation")``
generator, one uniform per qualified node in NID order (the event engine
draws from per-node streams; backoffs only break declaration ties between
*adjacent* qualified nodes, which cannot exist under lossless channels).

Engine-private approximations (all invisible under lossless channels,
where the resulting :class:`~repro.cluster.state.ClusterLayout` is
bit-identical to :func:`repro.cluster.formation.run_formation`):

- declaration suppression ignores per-copy delivery *delay*: a delivered
  lower-NID declaration with an earlier backoff always suppresses;
- a node inside two announced member lists (possible only after a lost
  announcement) confirms to the lowest announcing head rather than the
  last-arriving announcement;
- a wave-C resigner never confirms into another cluster in the same
  iteration (the event engine's outcome depends on announcement arrival
  order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.cluster.formation import FormationConfig
from repro.cluster.state import Boundary, Cluster, ClusterLayout
from repro.sim.array_engine.loss import ArrayLossDraw

#: Pad value for "no node" entries (matches layout.PAD).
PAD = -1

#: Chain family name for all formation draws (see module docstring).
FORMATION_CHAIN = "fm"

_BIG = np.iinfo(np.int64).max


# ----------------------------------------------------------------------
# Unit-disk edge set
# ----------------------------------------------------------------------


class UnitDiskEdges:
    """The directed unit-disk edge list of a field, in canonical order.

    Edges are every ordered pair ``(src, dst)`` with ``src != dst`` and
    ``hypot(dx, dy) <= radius``, sorted by ``(src, dst)``.  The set is
    symmetric; :attr:`rev` maps each edge to its reverse.  Built by grid
    binning with cell size ``radius`` (9 neighboring cells are exhaustive
    for any positions), chunked so candidate-pair blocks stay bounded.
    """

    def __init__(
        self,
        node_count: int,
        src: np.ndarray,
        dst: np.ndarray,
        dist: np.ndarray,
    ) -> None:
        self.node_count = int(node_count)
        self.src = src
        self.dst = dst
        self.dist = dist
        self.edge_count = int(src.size)
        n, e = self.node_count, self.edge_count
        counts = np.bincount(src, minlength=n) if e else np.zeros(n, np.int64)
        self.out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.out_indptr[1:])
        # Edges sorted by (dst, src).  By symmetry of the edge set this
        # permutation is an involution and doubles as the reverse-edge
        # map: the j-th edge in (dst, src) order carries the pair
        # (dst=s_j, src=d_j), i.e. it *is* the reverse of canonical edge
        # j, so rev[j] = perm[j] and in-edge segments of a node list its
        # sources in ascending order.
        if e:
            perm = np.lexsort((src, dst))
        else:
            perm = np.zeros(0, dtype=np.int64)
        self.rev = perm
        self.in_order = perm
        in_counts = np.bincount(dst, minlength=n) if e else np.zeros(n, np.int64)
        self.in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_counts, out=self.in_indptr[1:])
        #: Nodes with in-degree > 0 (reduceat must skip empty segments:
        #: clipping offsets would corrupt the segment *before* a run of
        #: trailing empties, so reductions only ever see these).
        self._nz = np.flatnonzero(in_counts > 0)

    def out_slice(self, node: int) -> slice:
        return slice(int(self.out_indptr[node]), int(self.out_indptr[node + 1]))

    def first_flagged_in_edge(self, flags: np.ndarray) -> np.ndarray:
        """Per node, the flagged in-edge with the lowest source NID.

        ``flags`` is an ``(E,)`` bool mask; returns an ``(N,)`` int64
        array of edge indices, ``-1`` where no in-edge is flagged.
        In-edge segments are src-ascending, so the first flagged position
        in a segment is the minimum-NID sender -- exactly the
        ``min(heard)`` / ``any(h < my_id)`` reductions of the event
        protocol.
        """
        out = np.full(self.node_count, -1, dtype=np.int64)
        if self.edge_count == 0 or self._nz.size == 0:
            return out
        e = self.edge_count
        vals = np.where(flags[self.in_order], np.arange(e, dtype=np.int64), e)
        mins = np.minimum.reduceat(vals, self.in_indptr[self._nz])
        hit = mins < e
        pos = np.minimum(mins, e - 1)
        out[self._nz] = np.where(hit, self.in_order[pos], -1)
        return out

    def min_flagged_src(self, flags: np.ndarray) -> np.ndarray:
        """Per node, the lowest source NID among flagged in-edges.

        ``_BIG`` where no in-edge is flagged.
        """
        first = self.first_flagged_in_edge(flags)
        if self.edge_count == 0:
            return np.full(self.node_count, _BIG, dtype=np.int64)
        return np.where(first >= 0, self.src[np.maximum(first, 0)], _BIG)


def build_unit_disk_edges(
    xs: np.ndarray, ys: np.ndarray, radius: float
) -> UnitDiskEdges:
    """Build the canonical directed unit-disk edge list of a field."""
    n = int(xs.size)
    if n <= 1:
        empty = np.zeros(0, dtype=np.int64)
        return UnitDiskEdges(n, empty, empty.copy(), np.zeros(0, np.float64))
    inv = 1.0 / float(radius)
    cx = np.floor(xs * inv).astype(np.int64)
    cy = np.floor(ys * inv).astype(np.int64)
    cx -= cx.min()
    cy -= cy.min()
    stride = int(cx.max()) + 2
    key = cy * stride + cx
    order = np.argsort(key, kind="stable")
    skey = key[order]
    max_cell = int(np.bincount(key - key.min()).max()) if n else 1
    chunk = max(1, int(8_000_000 // max(1, 9 * max_cell)))
    r2 = float(radius) * float(radius)
    ids = np.arange(n, dtype=np.int64)
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    offsets = [(dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)]
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        sub = ids[lo:hi]
        kk = key[lo:hi]
        for dy, dx in offsets:
            nkey = kk + dy * stride + dx
            left = np.searchsorted(skey, nkey, side="left")
            right = np.searchsorted(skey, nkey, side="right")
            cnt = right - left
            tot = int(cnt.sum())
            if tot == 0:
                continue
            src_r = np.repeat(sub, cnt)
            cum = np.cumsum(cnt) - cnt
            pos = (
                np.arange(tot, dtype=np.int64)
                - np.repeat(cum, cnt)
                + np.repeat(left, cnt)
            )
            dst_r = order[pos]
            ddx = xs[src_r] - xs[dst_r]
            ddy = ys[src_r] - ys[dst_r]
            keep = (src_r != dst_r) & (ddx * ddx + ddy * ddy <= r2)
            if keep.any():
                src_parts.append(src_r[keep])
                dst_parts.append(dst_r[keep])
    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        order_e = np.lexsort((dst, src))
        src = src[order_e]
        dst = dst[order_e]
    else:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
    dist = np.hypot(xs[src] - xs[dst], ys[src] - ys[dst])
    return UnitDiskEdges(n, src, dst, dist)


# ----------------------------------------------------------------------
# Formation state and outcome
# ----------------------------------------------------------------------


@dataclass
class FormationOutcome:
    """Converged per-node formation state, plus field geometry.

    The array twin of the event engine's ``Dict[NodeId,
    FormationProtocol]`` after :func:`run_formation` parks the clock:
    everything :func:`repro.cluster.formation.extract_layout` reads is
    here as flat arrays.
    """

    config: FormationConfig
    node_count: int
    radius: float
    xs: np.ndarray
    ys: np.ndarray
    edges: UnitDiskEdges
    is_head: np.ndarray
    marked: np.ndarray
    conf_head: np.ndarray
    #: ``(N, D)`` announced deputy NIDs per head row, ``PAD``-padded.
    ann_deputies: np.ndarray
    #: head NID -> peer head NID -> ranked forwarder NIDs (R5 state).
    boundary_asn: Dict[int, Dict[int, Tuple[int, ...]]]
    #: Formation message sends (one per broadcast/unicast, any fan-out).
    transmissions: int

    def head_ids(self) -> np.ndarray:
        """Sorted NIDs of the surviving clusterheads."""
        return np.flatnonzero(self.is_head)


class _State:
    """Durable per-node / per-edge protocol state across iterations."""

    def __init__(self, n: int, config: FormationConfig, e: int) -> None:
        self.marked = np.zeros(n, dtype=bool)
        self.is_head = np.zeros(n, dtype=bool)
        self.conf_head = np.full(n, PAD, dtype=np.int64)
        #: Edge index of (conf_head -> me); rev of it is my unicast path.
        self.conf_edge = np.full(n, PAD, dtype=np.int64)
        #: Iterations in a row with no head heard (starts at patience so
        #: iteration 1 may declare, like the event protocol).
        self.no_head = np.full(n, config.declaration_patience, dtype=np.int64)
        #: (head -> member) edges whose join request was accepted; the
        #: head-side ``_members`` set, durable until the head resigns.
        self.joined = np.zeros(e, dtype=bool)
        self.ann_deputies = np.full(
            (n, config.deputy_count), PAD, dtype=np.int64
        )
        self.boundary_asn: Dict[int, Dict[int, Tuple[int, ...]]] = {}
        self.transmissions = 0


def _dissolve(
    st: _State,
    edges: UnitDiskEdges,
    loss: ArrayLossDraw,
    resign: np.ndarray,
) -> None:
    """Resigning heads broadcast ClusterDissolve and become unmarked."""
    resign_idx = np.flatnonzero(resign)
    if resign_idx.size == 0:
        return
    dis = loss.draw_into(
        resign[edges.src], distances=edges.dist, chain=FORMATION_CHAIN
    )
    st.transmissions += int(resign_idx.size)
    # Receivers affiliated with a resigner release their membership
    # (heads never do: their confirmed head is themselves).
    hit = dis & (st.conf_head[edges.dst] == edges.src) & ~st.is_head[edges.dst]
    victims = np.unique(edges.dst[hit])
    st.marked[victims] = False
    st.conf_head[victims] = PAD
    st.conf_edge[victims] = PAD
    # The resigners themselves clear all head state (the event engine's
    # _become_unmarked, which preserves the patience counter).
    st.is_head[resign_idx] = False
    st.marked[resign_idx] = False
    st.conf_head[resign_idx] = PAD
    st.conf_edge[resign_idx] = PAD
    st.ann_deputies[resign_idx] = PAD
    for h in resign_idx:
        st.joined[edges.out_slice(int(h))] = False
        st.boundary_asn.pop(int(h), None)


def _resolve_declarations(
    q: np.ndarray,
    sup_src: np.ndarray,
    sup_dst: np.ndarray,
    n: int,
) -> np.ndarray:
    """Which qualified nodes actually fire their declaration.

    ``sup_*`` are the suppression edges: a delivered declaration from a
    lower-NID, earlier-backoff qualified neighbor.  A node fires iff no
    suppression edge from a *firing* node reaches it -- the same fixpoint
    the event engine's backoff timers resolve, computed Luby-style.  The
    suppression graph is a DAG (backoffs strictly decrease along edges),
    so every pass decides at least one node.
    """
    fired = np.zeros(n, dtype=bool)
    undecided = q.copy()
    while undecided.any():
        in_f = np.zeros(n, dtype=bool)
        in_f[sup_dst[fired[sup_src]]] = True
        in_u = np.zeros(n, dtype=bool)
        in_u[sup_dst[undecided[sup_src]]] = True
        newly_sup = undecided & in_f
        newly_fired = undecided & ~in_f & ~in_u
        progressed = newly_sup | newly_fired
        if not progressed.any():  # pragma: no cover - DAG guarantees progress
            raise AssertionError("declaration fixpoint stalled (engine bug)")
        fired |= newly_fired
        undecided &= ~progressed
    return fired


def _run_iteration(
    st: _State,
    edges: UnitDiskEdges,
    config: FormationConfig,
    loss: ArrayLossDraw,
    backoff_rng: np.random.Generator,
) -> None:
    """One six-round formation iteration (see module docstring)."""
    n = edges.node_count
    src, dst, dist = edges.src, edges.dst, edges.dist
    ids = np.arange(n, dtype=np.int64)

    # -- R0: heartbeats (flags snapshot the sender's state at send time).
    marked0 = st.marked.copy()
    head0 = st.is_head.copy()
    hb = loss.draw_into(
        np.ones(edges.edge_count, dtype=bool),
        distances=dist,
        chain=FORMATION_CHAIN,
    )
    st.transmissions += n
    heard_unmarked_e = hb & ~marked0[src]
    heard_head_e = hb & head0[src]
    head_min = edges.min_flagged_src(heard_head_e)

    # -- wave A: heads hearing a lower-NID head heartbeat resign.
    _dissolve(st, edges, loss, st.is_head & (head_min < ids))

    # -- R1: patience accounting (unmarked nodes only), qualification,
    # backoff, declaration broadcast, and suppression fixpoint.
    unmarked = ~st.marked
    has_head = head_min < _BIG
    st.no_head[unmarked & has_head] = 0
    st.no_head[unmarked & ~has_head] += 1
    unmarked_min = edges.min_flagged_src(heard_unmarked_e)
    q = (
        unmarked
        & (unmarked_min > ids)
        & (head_min > ids)
        & (st.no_head >= config.declaration_patience)
    )
    q_idx = np.flatnonzero(q)
    backoff = np.full(n, np.inf)
    if q_idx.size:
        backoff[q_idx] = backoff_rng.uniform(
            0.0, config.backoff_fraction * config.thop, q_idx.size
        )
    dec_raw = loss.draw_into(q[src], distances=dist, chain=FORMATION_CHAIN)
    sup = dec_raw & q[dst] & (src < dst) & (backoff[src] < backoff[dst])
    fired = _resolve_declarations(q, src[sup], dst[sup], n)
    fired_idx = np.flatnonzero(fired)
    st.is_head[fired_idx] = True
    st.marked[fired_idx] = True
    st.conf_head[fired_idx] = fired_idx
    st.conf_edge[fired_idx] = PAD
    st.transmissions += int(fired_idx.size)
    dec_e = dec_raw & fired[src]
    dec_min = edges.min_flagged_src(dec_e)

    # -- wave B: heads hearing a lower-NID declaration resign (their
    # released members, and the resigners themselves, may join in R2).
    _dissolve(st, edges, loss, st.is_head & (dec_min < ids))

    # -- R2: unmarked nodes join the lowest-NID head they heard; the
    # target accepts only if it is (still) a head at receipt.
    avail_e = dec_e | heard_head_e
    target_in_edge = edges.first_flagged_in_edge(avail_e)
    joiners = ~st.marked & (target_in_edge >= 0)
    joiner_idx = np.flatnonzero(joiners)
    join_active = np.zeros(edges.edge_count, dtype=bool)
    if joiner_idx.size:
        join_active[edges.rev[target_in_edge[joiner_idx]]] = True
    jn = loss.draw_into(join_active, distances=dist, chain=FORMATION_CHAIN)
    st.transmissions += int(joiner_idx.size)
    if joiner_idx.size:
        e_t = target_in_edge[joiner_idx]
        accepted = jn[edges.rev[e_t]] & st.is_head[src[e_t]]
        st.joined[e_t[accepted]] = True

    # -- R3: every head announces its member list; members confirm, heads
    # hearing a lower head's announcement resign (wave C, after the
    # confirms -- see the module docstring's approximation notes).
    head_idx = np.flatnonzero(st.is_head)
    if config.deputy_count:
        st.ann_deputies[head_idx] = PAD
        j_edges = np.flatnonzero(st.joined & st.is_head[src])
        if j_edges.size:
            j_src = src[j_edges]
            starts = np.searchsorted(j_src, head_idx, side="left")
            ends = np.searchsorted(j_src, head_idx, side="right")
            for k in range(config.deputy_count):
                take = starts + k < ends
                pos = np.minimum(starts + k, j_edges.size - 1)
                st.ann_deputies[head_idx, k] = np.where(
                    take, dst[j_edges[pos]], PAD
                )
    ann = loss.draw_into(
        st.is_head[src], distances=dist, chain=FORMATION_CHAIN
    )
    st.transmissions += int(head_idx.size)
    conf_e = edges.first_flagged_in_edge(ann & st.joined)
    confirm = (conf_e >= 0) & ~st.is_head
    confirm_idx = np.flatnonzero(confirm)
    if confirm_idx.size:
        ce = conf_e[confirm_idx]
        st.conf_head[confirm_idx] = src[ce]
        st.conf_edge[confirm_idx] = ce
        st.marked[confirm_idx] = True
    heard_head_e = heard_head_e | ann
    ann_min = edges.min_flagged_src(ann)
    _dissolve(st, edges, loss, st.is_head & (ann_min < ids))

    # -- R4: confirmed members that heard foreign heads send one
    # candidacy to their own CH; the CH accepts from current members.
    foreign_e = avail_e | heard_head_e
    foreign_e = foreign_e & (src != st.conf_head[dst])
    has_foreign = edges.first_flagged_in_edge(foreign_e) >= 0
    senders = ~st.is_head & (st.conf_head != PAD) & has_foreign
    sender_idx = np.flatnonzero(senders)
    cand_active = np.zeros(edges.edge_count, dtype=bool)
    if sender_idx.size:
        cand_active[edges.rev[st.conf_edge[sender_idx]]] = True
    cd = loss.draw_into(cand_active, distances=dist, chain=FORMATION_CHAIN)
    st.transmissions += int(sender_idx.size)
    accepted_s = np.zeros(n, dtype=bool)
    if sender_idx.size:
        ce = st.conf_edge[sender_idx]
        ok = (
            cd[edges.rev[ce]]
            & st.is_head[st.conf_head[sender_idx]]
            & st.joined[ce]
        )
        accepted_s[sender_idx[ok]] = True

    # -- R5: each head ranks this iteration's candidates per foreign
    # peer and broadcasts one BoundaryAssignment per (head, peer) pair.
    tri_e = np.flatnonzero(foreign_e & accepted_s[dst])
    group_counts = np.zeros(n, dtype=np.int64)
    if tri_e.size:
        tri_head = st.conf_head[dst[tri_e]]
        tri_peer = src[tri_e]
        tri_cand = dst[tri_e]
        order5 = np.lexsort((tri_cand, tri_peer, tri_head))
        tri_head = tri_head[order5]
        tri_peer = tri_peer[order5]
        tri_cand = tri_cand[order5]
        new_group = np.ones(tri_e.size, dtype=bool)
        new_group[1:] = (tri_head[1:] != tri_head[:-1]) | (
            tri_peer[1:] != tri_peer[:-1]
        )
        starts = np.flatnonzero(new_group)
        bounds = np.append(starts, tri_e.size)
        width = 1 + config.max_backups
        for gi in range(starts.size):
            lo, hi = int(bounds[gi]), int(bounds[gi + 1])
            h = int(tri_head[lo])
            peer = int(tri_peer[lo])
            ranked = tuple(int(c) for c in tri_cand[lo : lo + min(hi - lo, width)])
            st.boundary_asn.setdefault(h, {})[peer] = ranked
            group_counts[h] += 1
        st.transmissions += int(starts.size)
    # Assignment delivery draws (receiver-side duties are not part of the
    # extracted layout, but copies must be accounted and chains advanced).
    assigning = np.flatnonzero(group_counts > 0)
    if assigning.size:
        if loss.kind == "gilbert":
            for h in assigning:
                sl = edges.out_slice(int(h))
                deg = sl.stop - sl.start
                if deg == 0:
                    continue
                for _ in range(int(group_counts[h])):
                    loss.draw_into(
                        np.ones(deg, dtype=bool),
                        distances=dist[sl],
                        chain=FORMATION_CHAIN,
                        at=sl,
                    )
        else:
            blocks = [
                np.tile(
                    dist[edges.out_slice(int(h))], int(group_counts[h])
                )
                for h in assigning
            ]
            flat = np.concatenate(blocks) if blocks else np.zeros(0)
            if flat.size:
                loss.delivered(int(flat.size), distances=flat)


def run_array_formation(
    xs: np.ndarray,
    ys: np.ndarray,
    radius: float,
    config: FormationConfig,
    loss: ArrayLossDraw,
    backoff_rng: np.random.Generator,
) -> FormationOutcome:
    """Run the full formation protocol over a field, vectorized.

    ``loss`` is the run's shared :class:`ArrayLossDraw` (formation and
    FDS draws ride the same engine-private stream, in program order);
    ``backoff_rng`` supplies the RCC backoff uniforms (NID order).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    edges = build_unit_disk_edges(xs, ys, radius)
    loss.ensure_chain(FORMATION_CHAIN, (edges.edge_count,))
    st = _State(int(xs.size), config, edges.edge_count)
    for _ in range(config.iterations):
        _run_iteration(st, edges, config, loss, backoff_rng)
    return FormationOutcome(
        config=config,
        node_count=int(xs.size),
        radius=float(radius),
        xs=xs,
        ys=ys,
        edges=edges,
        is_head=st.is_head,
        marked=st.marked,
        conf_head=st.conf_head,
        ann_deputies=st.ann_deputies,
        boundary_asn=st.boundary_asn,
        transmissions=st.transmissions,
    )


# ----------------------------------------------------------------------
# Layout extraction
# ----------------------------------------------------------------------


def formation_cluster_layout(outcome: FormationOutcome) -> ClusterLayout:
    """Build a :class:`ClusterLayout` from converged array state.

    An exact mirror of :func:`repro.cluster.formation.extract_layout`:
    affiliation comes from each member's own confirmed head, deputies are
    the head's announced list filtered to affiliated members, boundary
    forwarders are filtered to affiliated members with at least one
    usable forwarder.
    """
    heads = [int(h) for h in np.flatnonzero(outcome.is_head)]
    head_set = set(heads)
    affiliation: Dict[int, int] = {}
    for h in heads:
        affiliation[h] = h
    conf = outcome.conf_head
    member_idx = np.flatnonzero(
        ~outcome.is_head & (conf != PAD)
    )
    for m in member_idx:
        h = int(conf[m])
        if h in head_set:
            affiliation[int(m)] = h

    preimage: Dict[int, List[int]] = {h: [] for h in heads}
    for nid, h in affiliation.items():
        if nid != h:
            preimage[h].append(nid)

    clusters: List[Cluster] = []
    for h in heads:
        members = frozenset(preimage[h]) | {h}
        deputies = tuple(
            int(d)
            for d in outcome.ann_deputies[h]
            if d != PAD and int(d) in members
        )
        clusters.append(Cluster(head=h, members=members, deputies=deputies))

    boundaries: List[Boundary] = []
    for h in heads:
        for peer, forwarders in sorted(
            outcome.boundary_asn.get(h, {}).items()
        ):
            if peer not in head_set:
                continue
            usable = tuple(
                f for f in forwarders if affiliation.get(f) == h
            )
            if not usable:
                continue
            boundaries.append(
                Boundary(
                    owner=h,
                    peer=peer,
                    gateway=usable[0],
                    backups=usable[1:],
                )
            )

    unclustered = [
        int(nid) for nid in range(outcome.node_count) if nid not in affiliation
    ]
    return ClusterLayout(
        clusters=clusters, boundaries=boundaries, unclustered=unclustered
    )


def formation_array_layout(
    outcome: FormationOutcome,
    keep_pair_dist: bool = False,
) -> "ArrayLayout":
    """Re-express a formation outcome as an :class:`ArrayLayout`.

    The protocol twin of :func:`~repro.sim.array_engine.layout.
    build_array_layout`: heads carry arbitrary NIDs (``head_ids`` maps
    cluster index -> head NID), members are the affiliated non-head
    nodes (NID-ascending slots), deputies are the announced list
    filtered to members, and boundaries come from the R5 assignments
    filtered exactly like :func:`formation_cluster_layout`.  Unclustered
    nodes get ``assign == PAD`` and occupy no member slot.
    """
    from repro.sim.array_engine.layout import (
        ArrayLayout,
        _fill_adjacency,
    )

    n = outcome.node_count
    xs, ys = outcome.xs, outcome.ys
    head_ids = np.flatnonzero(outcome.is_head).astype(np.int64)
    c = int(head_ids.size)
    cl_of = np.full(n, PAD, dtype=np.int64)
    cl_of[head_ids] = np.arange(c, dtype=np.int64)

    assign = np.full(n, PAD, dtype=np.int64)
    assign[head_ids] = np.arange(c, dtype=np.int64)
    conf = outcome.conf_head
    is_member = ~outcome.is_head & (conf != PAD)
    member_nids = np.flatnonzero(is_member)
    if member_nids.size:
        conf_cl = cl_of[conf[member_nids]]
        ok = conf_cl != PAD
        member_nids = member_nids[ok]
        assign[member_nids] = conf_cl[ok]

    counts = (
        np.bincount(assign[member_nids], minlength=c).astype(np.int64)
        if member_nids.size
        else np.zeros(c, dtype=np.int64)
    )
    max_m = int(counts.max()) if c and counts.size else 0
    members = np.full((c, max_m), PAD, dtype=np.int64)
    member_mask = np.zeros((c, max_m), dtype=bool)
    if member_nids.size:
        order = np.argsort(assign[member_nids], kind="stable")
        sorted_ids = member_nids[order]
        sorted_cl = assign[member_nids][order]
        starts = np.zeros(c + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        slot = np.arange(sorted_ids.size, dtype=np.int64) - starts[sorted_cl]
        members[sorted_cl, slot] = sorted_ids
        member_mask[sorted_cl, slot] = True

    safe = np.where(members >= 0, members, 0)
    px = np.where(member_mask, xs[safe], np.nan)
    py = np.where(member_mask, ys[safe], np.nan)
    hx = xs[head_ids] if c else np.zeros(0)
    hy = ys[head_ids] if c else np.zeros(0)
    head_dx = px - hx[:, None]
    head_dy = py - hy[:, None]
    head_dist = np.where(
        member_mask, np.sqrt(head_dx * head_dx + head_dy * head_dy), np.inf
    )

    adjacency = np.zeros((c, max_m, max_m), dtype=bool)
    with np.errstate(invalid="ignore"):
        pair_dist = _fill_adjacency(
            adjacency, px, py, member_mask, outcome.radius,
            keep_dist=keep_pair_dist,
        )

    config = outcome.config
    d_count = config.deputy_count
    deputies = np.full((c, d_count), PAD, dtype=np.int64)
    deputy_slots = np.full((c, d_count), PAD, dtype=np.int64)
    for ci, h in enumerate(head_ids):
        row = members[ci]
        row_count = int(counts[ci])
        k = 0
        for d in outcome.ann_deputies[int(h)]:
            if d == PAD or k >= d_count:
                continue
            if assign[d] != ci or outcome.is_head[d]:
                continue
            slot = int(np.searchsorted(row[:row_count], d))
            if slot < row_count and row[slot] == d:
                deputies[ci, k] = int(d)
                deputy_slots[ci, k] = slot
                k += 1

    gw_count = 1 + config.max_backups
    b_owner: List[int] = []
    b_peer: List[int] = []
    b_slots: List[np.ndarray] = []
    for ci, h in enumerate(head_ids):
        row = members[ci]
        row_count = int(counts[ci])
        for peer, forwarders in sorted(
            outcome.boundary_asn.get(int(h), {}).items()
        ):
            pc = cl_of[peer] if 0 <= peer < n else PAD
            if pc == PAD:
                continue
            slots = np.full(gw_count, PAD, dtype=np.int64)
            k = 0
            for f in forwarders:
                if assign[f] != ci or outcome.is_head[f]:
                    continue
                slot = int(np.searchsorted(row[:row_count], f))
                if slot < row_count and row[slot] == f:
                    slots[k] = slot
                    k += 1
            if k == 0:
                continue
            b_owner.append(ci)
            b_peer.append(int(pc))
            b_slots.append(slots)
    if b_owner:
        boundary_owner = np.asarray(b_owner, dtype=np.int64)
        boundary_peer = np.asarray(b_peer, dtype=np.int64)
        boundary_gateway_slots = np.stack(b_slots)
    else:
        boundary_owner = np.zeros(0, dtype=np.int64)
        boundary_peer = np.zeros(0, dtype=np.int64)
        boundary_gateway_slots = np.zeros((0, gw_count), dtype=np.int64)

    return ArrayLayout(
        cluster_count=c,
        node_count=n,
        radius=outcome.radius,
        xs=xs,
        ys=ys,
        assign=assign,
        members=members,
        member_mask=member_mask,
        member_counts=counts,
        adjacency=adjacency,
        head_dist=head_dist,
        deputies=deputies,
        deputy_slots=deputy_slots,
        boundary_owner=boundary_owner,
        boundary_peer=boundary_peer,
        boundary_gateway_slots=boundary_gateway_slots,
        pair_dist=pair_dist,
        head_ids=head_ids,
    )


# ----------------------------------------------------------------------
# Layout-shape audit (the lossy leg of differential:formation)
# ----------------------------------------------------------------------


def formation_shape_violations(outcome: FormationOutcome) -> List[str]:
    """Structural invariants any formation outcome must satisfy.

    Used by the ``differential:formation`` soak pair on lossy runs,
    where bit-identity with the event engine is not claimed but the
    paper's layout-shape guarantees still must hold.
    """
    violations: List[str] = []
    heads = np.flatnonzero(outcome.is_head)
    head_set = {int(h) for h in heads}

    if not np.all(outcome.marked[heads]):
        violations.append("head not marked")
    if heads.size and not np.all(
        outcome.conf_head[heads] == heads
    ):
        violations.append("head not self-affiliated")
    unmarked = np.flatnonzero(~outcome.marked)
    if unmarked.size and np.any(outcome.conf_head[unmarked] != PAD):
        violations.append("unmarked node with a confirmed head")

    # Members must be within radio range of their confirmed head.
    conf = outcome.conf_head
    member_idx = np.flatnonzero(~outcome.is_head & (conf != PAD))
    if member_idx.size:
        dx = outcome.xs[member_idx] - outcome.xs[conf[member_idx]]
        dy = outcome.ys[member_idx] - outcome.ys[conf[member_idx]]
        far = dx * dx + dy * dy > outcome.radius * outcome.radius
        if np.any(far):
            violations.append(
                f"member out of head range: {member_idx[far][:5].tolist()}"
            )

    width = 1 + outcome.config.max_backups
    for h, per_peer in outcome.boundary_asn.items():
        for peer, forwarders in per_peer.items():
            if len(forwarders) > width:
                violations.append(
                    f"forwarder ladder too long on {h}->{peer}"
                )
            if list(forwarders) != sorted(set(forwarders)):
                violations.append(
                    f"forwarder ladder not strictly ascending on {h}->{peer}"
                )

    # The extracted ClusterLayout must pass the paper's structural
    # validation (exactly-one affiliation, deputies/forwarders members
    # of their cluster, head in its own member set).
    try:
        layout = formation_cluster_layout(outcome)
    except Exception as exc:  # ClusteringError and anything else
        violations.append(f"layout extraction failed: {exc!r}")
        return violations
    clustered = set()
    for cluster in layout.clusters.values():
        clustered |= set(cluster.members)
    if clustered & set(layout.unclustered):
        violations.append("node both clustered and unclustered")
    if set(layout.clusters) != head_set:
        violations.append("extracted heads disagree with is_head flags")
    return violations
