"""Batched per-node energy accounting for the array engine.

:class:`ArrayEnergyLedger` is the vectorized twin of
:class:`repro.energy.model.EnergyModel`: the same harvest-then-debit
semantics (lazy linear harvest capped at capacity, per-debit floor at
zero), applied to whole batches of same-instant charges instead of one
scalar call per message.  The equivalence contract, verified bit-for-bit
by the tests and the soak's energy sub-pair:

- replaying the ledger's charge batches through a scalar
  :class:`~repro.energy.model.EnergyModel` -- node by node, one debit
  per count, transmit debits before receive debits at equal timestamps
  -- produces *identical* levels, counts, totals, and spread;
- the debit population is exactly what the round engine models: every
  ``transmissions`` increment becomes a transmit debit of its sender,
  every delivered copy drawn from :class:`~repro.sim.array_engine.loss.
  ArrayLossDraw` becomes a receive debit of its receiver, both charged
  at the enclosing round's nominal instant (per-message timing inside a
  round is collapsed, like everything else in the array engine).

The bit-identity holds because each node's ledger is independent and
the vectorized ops mirror the scalar arithmetic operation for
operation: one harvest per (node, instant) -- later same-instant
harvests are exact no-ops in the scalar model too -- then ``count``
iterated ``max(0, level - cost)`` subtractions (a closed-form
``level - count * cost`` would round differently).

The event engine's energy surface also *feeds back* into its
waiting-period policy; the array engine's ledger is observational only
(the recovery ladder is modeled as independent attempts), which is a
documented approximation, not a divergence the soak compares.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.energy.model import EnergyConfig, EnergyModel


class ArrayEnergyLedger:
    """Vectorized per-node energy state (see module docstring).

    With ``record_journal=True`` every charge batch is appended (as a
    sparse ``(kind, now, node_ids, counts)`` tuple) to :attr:`journal`,
    which :func:`replay_journal` feeds through a scalar
    :class:`~repro.energy.model.EnergyModel` to prove the batched
    arithmetic bit-identical.  Off by default -- the journal grows with
    the message volume, which the big-N runs cannot afford.
    """

    def __init__(
        self,
        node_count: int,
        config: Optional[EnergyConfig] = None,
        start: float = 0.0,
        record_journal: bool = False,
    ) -> None:
        self.config = config if config is not None else EnergyConfig()
        self.node_count = int(node_count)
        self.start = float(start)
        self.level = np.full(
            self.node_count, self.config.capacity, dtype=np.float64
        )
        self.last_update = np.full(self.node_count, float(start))
        self.tx_count = np.zeros(self.node_count, dtype=np.int64)
        self.rx_count = np.zeros(self.node_count, dtype=np.int64)
        self.journal: Optional[
            List[Tuple[str, float, np.ndarray, np.ndarray]]
        ] = [] if record_journal else None

    # ------------------------------------------------------------------
    def _charge(self, now: float, counts: np.ndarray, cost: float) -> None:
        counts = np.asarray(counts)
        idx = np.flatnonzero(counts > 0)
        if idx.size == 0:
            return
        # Harvest exactly once per (node, instant): the scalar model's
        # per-debit harvest is a bit-exact no-op once elapsed == 0.
        elapsed = np.maximum(0.0, now - self.last_update[idx])
        self.level[idx] = np.minimum(
            self.config.capacity,
            self.level[idx] + elapsed * self.config.harvest_rate,
        )
        self.last_update[idx] = now
        # Iterated subtraction with a per-debit zero floor, mirroring
        # EnergyModel.on_transmit/on_receive debit by debit.
        k = counts[idx]
        levels = self.level[idx]
        for i in range(int(k.max())):
            hit = k > i
            levels[hit] = np.maximum(0.0, levels[hit] - cost)
        self.level[idx] = levels

    def _journal_append(self, kind: str, now: float, counts) -> None:
        counts = np.asarray(counts)
        idx = np.flatnonzero(counts > 0)
        self.journal.append(
            (kind, float(now), idx.copy(), counts[idx].copy())
        )

    def charge_tx(self, now: float, counts: np.ndarray) -> None:
        """Charge ``counts[n]`` transmissions to each node at ``now``."""
        if self.journal is not None:
            self._journal_append("tx", now, counts)
        self._charge(now, counts, self.config.tx_cost)
        self.tx_count += np.asarray(counts, dtype=np.int64)

    def charge_rx(self, now: float, counts: np.ndarray) -> None:
        """Charge ``counts[n]`` received copies to each node at ``now``."""
        if self.journal is not None:
            self._journal_append("rx", now, counts)
        self._charge(now, counts, self.config.rx_cost)
        self.rx_count += np.asarray(counts, dtype=np.int64)

    # ------------------------------------------------------------------
    # The EnergyModel scoring surface
    # ------------------------------------------------------------------
    def remaining_fraction(self, node_id: int, now: float) -> float:
        """Remaining energy fraction at ``now`` (harvest applied)."""
        idx = int(node_id)
        elapsed = max(0.0, now - float(self.last_update[idx]))
        level = min(
            self.config.capacity,
            float(self.level[idx]) + elapsed * self.config.harvest_rate,
        )
        self.level[idx] = level
        self.last_update[idx] = now
        return max(0.0, min(1.0, level / self.config.capacity))

    def totals(self) -> Dict[str, float]:
        """Aggregate counters, same keys and arithmetic as EnergyModel.

        Sums run through Python floats in node order so the figures are
        bit-identical to the scalar model's ``sum()`` over its entries.
        """
        levels = self.level.tolist()
        return {
            "tx_total": float(int(self.tx_count.sum())),
            "rx_total": float(int(self.rx_count.sum())),
            "min_level": min(levels, default=0.0),
            "mean_level": (sum(levels) / len(levels)) if levels else 0.0,
        }

    def spread(self) -> float:
        """Max minus min remaining level -- the energy-balance figure."""
        if not self.node_count:
            return 0.0
        return float(self.level.max() - self.level.min())


def replay_journal(ledger: ArrayEnergyLedger) -> EnergyModel:
    """Replay a recorded ledger's charges through the scalar model.

    Nodes are registered in id order at the ledger's start time, then
    every journal batch is applied node by node, one debit per count, in
    the batch order the engine produced (transmit batches precede
    receive batches at equal timestamps by the engine's charging
    contract).  The returned :class:`~repro.energy.model.EnergyModel`
    must agree with the ledger bit-for-bit -- levels, counts, totals and
    spread -- which is what the tests and the soak's energy sub-pair
    assert.
    """
    if ledger.journal is None:
        raise ValueError(
            "ledger was not constructed with record_journal=True"
        )
    model = EnergyModel(ledger.config)
    for node in range(ledger.node_count):
        model.register(node, ledger.start)
    for kind, now, ids, counts in ledger.journal:
        debit = model.on_transmit if kind == "tx" else model.on_receive
        for node, count in zip(ids.tolist(), counts.tolist()):
            for _ in range(count):
                debit(node, now)
    return model
