"""End-to-end scenario execution through the array engine.

:func:`run_array_scenario` is the array-engine twin of
:func:`repro.experiments.runner.run_scenario`: same
:class:`~repro.experiments.runner.ScenarioConfig` in, a result object
with the same scoring surface out (``summary()``, ``properties``,
``messages``, ``detection_latencies``, ``crash_times``, a trace with the
same verdict-bearing record kinds).  The field, the faultload, and the
crash schedule reuse the *identical* seeded streams as the event engine
(``stream("placement")``, ``stream("faultload")``), so a scenario's
topology and ground truth match bit-for-bit across engines; only the
per-copy loss draws come from the engine-private ``stream("array",
"loss")``.

Support matrix: every ``ScenarioConfig`` runs on this engine -- both
formation modes (``"oracle"`` builds the lattice layout directly;
``"protocol"`` runs the vectorized six-round distributed formation, see
:mod:`repro.sim.array_engine.formation`), every loss kind (including
the stateful ``gilbert`` chains, see
:mod:`repro.sim.array_engine.loss`), and energy tracking (see
:mod:`repro.sim.array_engine.energy`).  No config is rejected here.

With ``formation="protocol"`` the member positions still come from the
shared ``stream("placement")`` (bit-identical field across engines),
formation loss draws ride the engine-private loss stream under the
``"fm"`` chain family, the RCC backoff uniforms come from
``stream("array", "formation")``, and the FDS epoch starts one round
after formation parks the clock -- the event path's
``network.sim.now + thop``.  Nodes the protocol leaves unclustered run
no FDS: they are excluded from the completeness observer set (the
paper's scope) but remain crash candidates, exactly like the event
engine.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.failure.faultload import Faultload, make_random_crashes
from repro.metrics.collectors import MessageCounts
from repro.metrics.properties import PropertyReport, detection_latency
from repro.obs.analyze import META_KIND, PROFILE_KIND
from repro.obs.profiler import (
    PHASE_ARRAY_LAYOUT,
    PHASE_ARRAY_ROUNDS,
    PHASE_ARRAY_SCORE,
    PhaseProfiler,
)
from repro.energy.model import EnergyConfig
from repro.sim.array_engine.energy import ArrayEnergyLedger
from repro.sim.array_engine.layout import ArrayLayout, build_array_layout
from repro.sim.array_engine.loss import ArrayLossDraw
from repro.sim.array_engine.rounds import ArrayRoundEngine
from repro.sim.trace import RecordingTracer, Tracer
from repro.types import NodeId, SimTime
from repro.util.rng import RngFactory


@dataclass
class _ArrayClock:
    """Duck-type of ``network.sim`` for the scoring/oracle surface."""

    now: float


class _ArrayNetworkFacade:
    """Duck-type of :class:`~repro.sim.network.Network` for scoring.

    Provides exactly what the summary and the differential oracles
    consume: ``sim.now``, ``operational_ids()``, ``crashed_ids()``, and
    ``len()``.
    """

    def __init__(
        self,
        now: float,
        operational: Tuple[NodeId, ...],
        crashed: Tuple[NodeId, ...],
    ) -> None:
        self.sim = _ArrayClock(now=now)
        self._operational = operational
        self._crashed = crashed

    def operational_ids(self) -> Tuple[NodeId, ...]:
        return self._operational

    def crashed_ids(self) -> Tuple[NodeId, ...]:
        return self._crashed

    def __len__(self) -> int:
        return len(self._operational) + len(self._crashed)


class _ArrayLayoutFacade:
    """Duck-type of ``ClusterLayout`` where only ``len(clusters)`` and
    clustered-membership checks are consumed."""

    def __init__(
        self,
        cluster_count: int,
        node_count: int,
        assign: Optional[np.ndarray] = None,
    ) -> None:
        self.clusters = range(cluster_count)
        self._node_count = node_count
        #: ``None`` means the oracle lattice (everyone clustered,
        #: spacing < 2r); protocol layouts pass their ``assign`` array
        #: so unclustered nodes (``PAD``) answer False.
        self._assign = assign

    def is_clustered(self, node_id: NodeId) -> bool:
        nid = int(node_id)
        if not 0 <= nid < self._node_count:
            return False
        if self._assign is None:
            return True
        return int(self._assign[nid]) >= 0


@dataclass
class ArrayScenarioResult:
    """Array-engine run product, summary-compatible with ScenarioResult."""

    config: "object"  # ScenarioConfig (kept untyped to avoid an import cycle)
    network: _ArrayNetworkFacade
    layout: _ArrayLayoutFacade
    array_layout: ArrayLayout
    faultload: Faultload
    properties: PropertyReport
    messages: MessageCounts
    tracer: Tracer
    crash_times: Dict[NodeId, SimTime]
    #: Per-node energy ledger (populated iff ``config.track_energy``);
    #: exposes the event engine's scoring surface (``totals()``,
    #: ``spread()``, ``remaining_fraction()``).
    energy: Optional[ArrayEnergyLedger] = None
    #: Converged formation state (populated iff
    #: ``config.formation == "protocol"``); feed it to
    #: :func:`~repro.sim.array_engine.formation.formation_cluster_layout`
    #: for the event-comparable ``ClusterLayout`` or to
    #: :func:`~repro.sim.array_engine.formation.formation_shape_violations`
    #: for the structural audit.
    formation: Optional["object"] = None

    @property
    def detection_latencies(self) -> Dict[NodeId, Optional[SimTime]]:
        return detection_latency(self.tracer, self.crash_times)

    def summary(self) -> Dict[str, float]:
        latencies = [
            v for v in self.detection_latencies.values() if v is not None
        ]
        return {
            "nodes": float(len(self.network)),
            "clusters": float(len(self.layout.clusters)),
            "crashes": float(len(self.faultload)),
            "mean_completeness": self.properties.mean_completeness,
            "accuracy_violations": float(
                len(self.properties.accuracy_violations)
            ),
            "transmissions": float(self.messages.transmissions),
            "observed_loss_rate": self.messages.loss_rate,
            "mean_detection_latency": (
                float(sum(latencies) / len(latencies)) if latencies else 0.0
            ),
        }


def _crash_executions(
    faultload: Faultload,
    node_count: int,
    executions: int,
    phi: float,
    fds_start: float,
) -> np.ndarray:
    """First 0-based execution during which each node is crashed.

    The faultload places crash ``k`` (1-based scheduling index) at
    ``fds_start + (k - 1) * phi + 0.6 * phi`` -- after every round of
    execution ``k - 1`` but before execution ``k`` -- so the node is
    alive through execution ``k - 1`` and silent from ``k`` on.  Nodes
    that never crash get ``executions + 1`` (alive past the horizon).
    """
    out = np.full(node_count, executions + 1, dtype=np.int64)
    for event in faultload.events:
        k = int(round((event.time - fds_start - 0.6 * phi) / phi)) + 1
        out[int(event.node_id)] = k
    return out


def _score_properties(
    engine: ArrayRoundEngine,
    crash_exec: np.ndarray,
    executions: int,
    clustered_mask: Optional[np.ndarray] = None,
) -> Tuple[PropertyReport, Tuple[NodeId, ...], Tuple[NodeId, ...]]:
    """Numpy translation of :func:`repro.metrics.properties.evaluate_properties`.

    Observers are the operational *clustered* nodes (the paper's scope;
    the oracle lattice clusters everyone, so ``clustered_mask=None``
    means all-True, while protocol layouts pass ``assign != PAD``).  A
    node is operational at the horizon iff its first dead execution lies
    beyond the run.  Accuracy pairs scan every operational node --
    clustered or not -- sorted by (suspector, suspected), matching the
    event-side scorer.
    """
    op_mask = crash_exec > executions
    op_ids = np.flatnonzero(op_mask)
    crashed_ids = np.flatnonzero(~op_mask)
    if clustered_mask is None:
        obs_ids = op_ids
    else:
        obs_ids = np.flatnonzero(op_mask & clustered_mask)
    known = engine.known
    t_ids = np.asarray(engine.t_ids, dtype=np.int64)

    completeness: Dict[NodeId, float] = {}
    incomplete: List[NodeId] = []
    for v in crashed_ids:
        col = engine.t_col.get(int(v))
        if col is None:
            frac = 0.0 if obs_ids.size else 1.0
        elif obs_ids.size:
            frac = float(known[obs_ids, col].sum()) / float(obs_ids.size)
        else:
            frac = 1.0
        completeness[NodeId(int(v))] = frac
        if frac < 1.0:
            incomplete.append(NodeId(int(v)))

    violations: List[Tuple[NodeId, NodeId]] = []
    if t_ids.size and op_ids.size:
        op_cols = np.flatnonzero(op_mask[t_ids])
        if op_cols.size:
            sub = known[np.ix_(op_ids, op_cols)]
            rows, cols = np.nonzero(sub)
            sus = t_ids[op_cols][cols]
            order = np.lexsort((sus, op_ids[rows]))
            violations = [
                (NodeId(int(op_ids[rows[i]])), NodeId(int(sus[i])))
                for i in order
            ]

    report = PropertyReport(
        completeness=completeness,
        accuracy_violations=tuple(violations),
        incomplete_failures=tuple(incomplete),
        operational_count=int(obs_ids.size),
        crashed_count=int(crashed_ids.size),
    )
    operational = tuple(NodeId(int(n)) for n in op_ids)
    crashed = tuple(NodeId(int(n)) for n in crashed_ids)
    return report, operational, crashed


def run_array_scenario(
    config,
    tracer: Optional[Tracer] = None,
    profiler: Optional[PhaseProfiler] = None,
    record_energy_journal: bool = False,
) -> ArrayScenarioResult:
    """Run one scenario through the round-level array engine.

    Accepts the same :class:`~repro.experiments.runner.ScenarioConfig`
    as the event path (callers normally go through
    ``run_scenario(config)`` with ``engine="array"``).
    """
    rngs = RngFactory(config.seed)
    if tracer is None:
        tracer = RecordingTracer()

    loss = ArrayLossDraw(
        config.loss_kind,
        config.loss_params,
        loss_probability=config.loss_probability,
        transmission_range=config.transmission_range,
        rng=rngs.stream("array", "loss"),
    )

    t0 = _time.perf_counter()
    outcome = None
    if config.formation == "oracle":
        layout = build_array_layout(
            cluster_count=config.cluster_count,
            members_per_cluster=config.members_per_cluster,
            radius=config.transmission_range,
            rng=rngs.stream("placement"),
            spacing_factor=config.spacing_factor,
            deputy_count=config.fds.deputy_count,
            max_backups=(
                config.max_backups if config.max_backups is not None else 2
            ),
            keep_pair_dist=(config.loss_kind == "distance"),
        )
        fds_start = 0.0
    else:
        from repro.cluster.formation import FormationConfig
        from repro.sim.array_engine.formation import (
            formation_array_layout,
            run_array_formation,
        )
        from repro.sim.array_engine.layout import lattice_positions

        xs, ys = lattice_positions(
            cluster_count=config.cluster_count,
            members_per_cluster=config.members_per_cluster,
            radius=config.transmission_range,
            rng=rngs.stream("placement"),
            spacing_factor=config.spacing_factor,
        )
        # Mirror the event path's construction exactly (defaults for
        # deputy_count/max_backups) so the extracted layouts agree.
        formation_config = FormationConfig(
            thop=config.fds.thop,
            iterations=config.formation_iterations,
            backoff_fraction=config.formation_backoff_fraction,
        )
        outcome = run_array_formation(
            xs, ys, config.transmission_range, formation_config,
            loss, rngs.stream("array", "formation"),
        )
        layout = formation_array_layout(
            outcome, keep_pair_dist=(config.loss_kind == "distance")
        )
        # The event path starts the FDS one round after formation parks
        # the clock (run_formation's total_duration, then + thop).
        fds_start = formation_config.total_duration() + config.fds.thop
    if profiler is not None:
        profiler.add_seconds(PHASE_ARRAY_LAYOUT, _time.perf_counter() - t0)

    # Same candidate order and stream as the event path: operational
    # node IDs ascending, heads excluded -- in the lattice that is every
    # member NID; under the protocol, heads sit anywhere, and unclustered
    # nodes remain candidates.
    if config.formation == "oracle":
        candidates = tuple(
            NodeId(int(n))
            for n in range(config.cluster_count, layout.node_count)
        )
    else:
        head_set = frozenset(int(h) for h in layout.head_nids)
        candidates = tuple(
            NodeId(n)
            for n in range(layout.node_count)
            if n not in head_set
        )
    last_exec = max(1, config.executions - 2)
    faultload = make_random_crashes(
        candidates,
        config.crash_count,
        config.fds,
        rngs.stream("faultload"),
        fds_start=fds_start,
        first_execution=1,
        last_execution=last_exec,
    )
    crash_times = {e.node_id: e.time for e in faultload.events}
    crash_exec = _crash_executions(
        faultload, layout.node_count, config.executions,
        config.fds.phi, fds_start,
    )

    if tracer.enabled:
        tracer.record(
            0.0,
            META_KIND,
            phi=config.fds.phi,
            thop=config.fds.thop,
            nodes=layout.node_count,
            seed=config.seed,
            executions=config.executions,
            fds_start=fds_start,
        )
        # Cluster map for the dashboard's /api/topology, same shape as
        # the event engine's record (heads/members/deputies/boundaries).
        from repro.obs.topology import TOPOLOGY_KIND, array_topology_detail

        tracer.record(0.0, TOPOLOGY_KIND, **array_topology_detail(layout))
        # Crash ground truth, as the event engine's node runtime emits
        # it -- the spool must stay self-describing (``repro trace
        # latency`` recovers crash times from ``sim.crash`` alone).
        for event in faultload.events:
            tracer.record(event.time, "sim.crash", node=int(event.node_id))

    energy = (
        ArrayEnergyLedger(
            layout.node_count,
            EnergyConfig(),
            start=fds_start,
            record_journal=record_energy_journal,
        )
        if config.track_energy
        else None
    )
    engine = ArrayRoundEngine(
        layout,
        config.fds,
        loss,
        tracer,
        crash_exec,
        fds_start=fds_start,
        profiler=profiler,
        energy=energy,
    )
    t0 = _time.perf_counter()
    for e in range(config.executions):
        engine.run_execution(e)
    if profiler is not None:
        profiler.add_seconds(
            PHASE_ARRAY_ROUNDS, _time.perf_counter() - t0,
            calls=config.executions,
        )

    # The event scheduler parks the clock at the tail of the last
    # execution window; mirror it so latency/accuracy horizons agree.
    horizon = fds_start + (config.executions - 1) * config.fds.phi
    horizon += 0.95 * config.fds.phi

    t0 = _time.perf_counter()
    report, operational, crashed = _score_properties(
        engine, crash_exec, config.executions,
        clustered_mask=(layout.assign >= 0) if outcome is not None else None,
    )
    if profiler is not None:
        profiler.add_seconds(PHASE_ARRAY_SCORE, _time.perf_counter() - t0)

    formation_tx = outcome.transmissions if outcome is not None else 0
    messages = MessageCounts(
        transmissions=engine.transmissions + formation_tx,
        deliveries=loss.delivered_count,
        losses=loss.attempted - loss.delivered_count,
        peer_requests=engine.peer_requests,
        peer_forwards=engine.peer_forwards,
        peer_recoveries=engine.peer_recoveries,
        reports_sent=engine.reports_sent,
        report_retransmissions=engine.report_retransmissions,
        bgw_activations=engine.bgw_activations,
        origin_retransmissions=0,
    )

    if profiler is not None and profiler.enabled and tracer.enabled:
        for phase, seconds, _share, calls in profiler.shares():
            tracer.record(
                horizon, PROFILE_KIND, phase=phase, seconds=seconds,
                calls=calls,
            )

    return ArrayScenarioResult(
        config=config,
        network=_ArrayNetworkFacade(horizon, operational, crashed),
        layout=_ArrayLayoutFacade(
            layout.cluster_count,
            layout.node_count,
            assign=layout.assign if outcome is not None else None,
        ),
        array_layout=layout,
        faultload=faultload,
        properties=report,
        messages=messages,
        tracer=tracer,
        crash_times=crash_times,
        energy=energy,
        formation=outcome,
    )
