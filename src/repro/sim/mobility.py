"""Mobility models (extension hooks beyond the paper's static setting).

The paper explicitly defers resource migration ("for simplicity, we do not
address resource migration problems in this paper") but notes that sound
clustering supports mobile settings.  This module provides the hooks a
mobile extension needs: a :class:`MobilityModel` stepped periodically by the
engine, with :class:`StaticPlacement` as the paper-faithful default and
:class:`RandomWaypoint` as the standard mobile workload for future studies.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.medium import RadioMedium
from repro.types import NodeId, SimTime
from repro.util.geometry import Vec2
from repro.util.validation import check_positive


class MobilityModel:
    """Interface: advances node positions on a fixed tick."""

    def step(self, medium: RadioMedium, dt: SimTime) -> None:
        raise NotImplementedError

    def install(
        self, sim: Simulator, medium: RadioMedium, tick: SimTime, until: SimTime
    ) -> None:
        """Schedule periodic stepping on the engine until ``until``."""
        check_positive("tick", tick)

        def tick_once() -> None:
            self.step(medium, tick)
            if sim.now + tick <= until:
                sim.schedule_in(tick, tick_once, label="mobility.tick")

        sim.schedule_in(tick, tick_once, label="mobility.tick")


class StaticPlacement(MobilityModel):
    """Nodes never move (the paper's assumption)."""

    def step(self, medium: RadioMedium, dt: SimTime) -> None:
        pass


class RandomWaypoint(MobilityModel):
    """Classic random-waypoint mobility inside a rectangular field.

    Each node picks a uniform destination in the field and moves toward it
    at a per-node uniform speed from ``[speed_min, speed_max]``; on arrival
    it picks a new destination.  Pause times are omitted (set speed bounds
    low to mimic slow deployments).
    """

    def __init__(
        self,
        width: float,
        height: float,
        speed_min: float,
        speed_max: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.width = check_positive("width", width)
        self.height = check_positive("height", height)
        self.speed_min = check_positive("speed_min", speed_min)
        self.speed_max = check_positive("speed_max", speed_max)
        if speed_max < speed_min:
            raise ValueError("speed_max must be >= speed_min")
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._targets: Dict[NodeId, Vec2] = {}
        self._speeds: Dict[NodeId, float] = {}

    def _new_target(self) -> Vec2:
        return Vec2(
            float(self.rng.uniform(0.0, self.width)),
            float(self.rng.uniform(0.0, self.height)),
        )

    def step(self, medium: RadioMedium, dt: SimTime) -> None:
        for node_id in medium.node_ids():
            pos = medium.position_of(node_id)
            target = self._targets.get(node_id)
            if target is None or pos.distance_to(target) < 1e-9:
                target = self._new_target()
                self._targets[node_id] = target
                self._speeds[node_id] = float(
                    self.rng.uniform(self.speed_min, self.speed_max)
                )
            speed = self._speeds[node_id]
            remaining = pos.distance_to(target)
            stride = min(speed * dt, remaining)
            if remaining > 0:
                direction = Vec2(
                    (target.x - pos.x) / remaining, (target.y - pos.y) / remaining
                )
                medium.move(
                    node_id,
                    Vec2(pos.x + direction.x * stride, pos.y + direction.y * stride),
                )
