"""Message-loss models for the radio medium.

The paper's core assumption (Sections 2.2 and 5) is that "if a node v
transmits a message, the message may fail to reach a neighbor of v with
probability p" -- i.e. independent Bernoulli loss per (transmission,
receiver) pair.  :class:`BernoulliLoss` implements exactly that and is the
model used by every reproduction experiment.

Extensions beyond the paper (used by ablation and robustness studies):

- :class:`GilbertElliottLoss` -- bursty loss via a two-state Markov chain
  per directed link, to probe the iid-loss assumption.
- :class:`DistanceDependentLoss` -- loss grows with distance, approximating
  a fading channel inside the unit disk.
- :class:`CompositeLoss` -- a message survives only if it survives every
  component model.
- :class:`PerfectLinks` -- no loss; the deterministic baseline the
  accuracy/completeness invariants are tested against.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.types import NodeId, SimTime
from repro.util.validation import check_probability, check_range


class LossModel:
    """Decides, per (sender, receiver, transmission), whether a copy is lost.

    Implementations must be *stateless across receivers* unless the model's
    semantics require per-link state; the medium calls :meth:`lost_mask`
    once per transmission with every potential receiver, and the default
    :meth:`lost_mask` falls back to one :meth:`is_lost` call per receiver.
    """

    def is_lost(
        self,
        sender: NodeId,
        receiver: NodeId,
        distance: float,
        time: SimTime,
        rng: np.random.Generator,
    ) -> bool:
        raise NotImplementedError

    def lost_mask(
        self,
        sender: NodeId,
        receivers: Sequence[NodeId],
        distances: np.ndarray,
        time: SimTime,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized loss decision: one bool per receiver, in order.

        The medium's hot path calls this once per transmission.  The
        default implementation loops over :meth:`is_lost` in receiver
        order, which is *exactly* equivalent for any model -- including
        stateful ones like :class:`GilbertElliottLoss` (per-link Markov
        state advances in the same order) and short-circuiting ones like
        :class:`CompositeLoss` (RNG consumption per receiver is
        preserved).  Stateless models override this with a single batched
        RNG draw; overrides must consume the generator identically to the
        sequential fallback (``rng.random(k)`` produces the same stream as
        ``k`` scalar draws) so that vectorized and scalar simulation paths
        stay bit-identical.
        """
        out = np.empty(len(receivers), dtype=bool)
        for i, receiver in enumerate(receivers):
            out[i] = self.is_lost(
                sender, receiver, float(distances[i]), time, rng
            )
        return out

    def describe(self) -> str:
        """Human-readable parameterization, for experiment manifests."""
        return type(self).__name__


class PerfectLinks(LossModel):
    """Never loses a message (the paper's idealized reference case)."""

    def is_lost(self, sender, receiver, distance, time, rng) -> bool:
        return False

    def lost_mask(self, sender, receivers, distances, time, rng) -> np.ndarray:
        # No RNG consumption, matching is_lost.
        return np.zeros(len(receivers), dtype=bool)

    def describe(self) -> str:
        return "PerfectLinks()"


class BernoulliLoss(LossModel):
    """Independent loss with fixed probability ``p`` per receiver.

    This is the paper's model: every copy of every transmission is lost
    independently with probability ``p``, for ``p`` in the studied range
    ``[0.05, 0.5]`` (any ``[0, 1]`` value is accepted).
    """

    def __init__(self, p: float) -> None:
        self.p = check_probability("p", p)

    def is_lost(self, sender, receiver, distance, time, rng) -> bool:
        if self.p == 0.0:
            return False
        if self.p == 1.0:
            return True
        return bool(rng.uniform() < self.p)

    def lost_mask(self, sender, receivers, distances, time, rng) -> np.ndarray:
        k = len(receivers)
        # The p in {0, 1} shortcuts consume no randomness, like is_lost.
        if self.p == 0.0:
            return np.zeros(k, dtype=bool)
        if self.p == 1.0:
            return np.ones(k, dtype=bool)
        return rng.random(k) < self.p

    def describe(self) -> str:
        return f"BernoulliLoss(p={self.p})"


class GilbertElliottLoss(LossModel):
    """Bursty loss: per directed link, a Good/Bad two-state Markov chain.

    In the Good state a copy is lost with probability ``p_good``; in the Bad
    state with ``p_bad``.  Transition probabilities ``p_gb`` (Good->Bad) and
    ``p_bg`` (Bad->Good) are applied per transmission on that link.  The
    stationary loss rate is ``(p_bg*p_good + p_gb*p_bad) / (p_gb + p_bg)``,
    exposed as :attr:`stationary_loss_rate` so sweeps can match the mean
    loss of a Bernoulli model while varying burstiness.

    Deliberately relies on the sequential :meth:`LossModel.lost_mask`
    fallback: per-link Markov state must advance one receiver at a time.
    """

    GOOD = 0
    BAD = 1

    def __init__(
        self,
        p_good: float = 0.01,
        p_bad: float = 0.8,
        p_gb: float = 0.05,
        p_bg: float = 0.3,
    ) -> None:
        self.p_good = check_probability("p_good", p_good)
        self.p_bad = check_probability("p_bad", p_bad)
        self.p_gb = check_probability("p_gb", p_gb)
        self.p_bg = check_probability("p_bg", p_bg)
        if self.p_gb + self.p_bg == 0:
            raise ValueError("p_gb + p_bg must be > 0 for an ergodic chain")
        self._state: Dict[Tuple[NodeId, NodeId], int] = {}

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run average loss probability of the chain."""
        pi_bad = self.p_gb / (self.p_gb + self.p_bg)
        return (1 - pi_bad) * self.p_good + pi_bad * self.p_bad

    def is_lost(self, sender, receiver, distance, time, rng) -> bool:
        link = (sender, receiver)
        state = self._state.get(link, self.GOOD)
        # Advance the chain first, then draw the loss in the new state.
        if state == self.GOOD:
            if rng.uniform() < self.p_gb:
                state = self.BAD
        else:
            if rng.uniform() < self.p_bg:
                state = self.GOOD
        self._state[link] = state
        loss_p = self.p_bad if state == self.BAD else self.p_good
        return bool(rng.uniform() < loss_p)

    def reset(self) -> None:
        """Forget all per-link state (all links return to Good)."""
        self._state.clear()

    def describe(self) -> str:
        return (
            f"GilbertElliottLoss(p_good={self.p_good}, p_bad={self.p_bad}, "
            f"p_gb={self.p_gb}, p_bg={self.p_bg})"
        )


class DistanceDependentLoss(LossModel):
    """Loss probability rising from ``p_near`` to ``p_far`` across the range.

    ``p(d) = p_near + (p_far - p_near) * (d / range)**exponent`` clipped to
    ``[0, 1]``.  With ``exponent=2`` this mimics a quadratic path-loss
    degradation toward the edge of the unit disk.
    """

    def __init__(
        self,
        transmission_range: float,
        p_near: float = 0.02,
        p_far: float = 0.4,
        exponent: float = 2.0,
    ) -> None:
        if transmission_range <= 0:
            raise ValueError("transmission_range must be positive")
        self.transmission_range = float(transmission_range)
        self.p_near = check_probability("p_near", p_near)
        self.p_far = check_probability("p_far", p_far)
        self.exponent = check_range("exponent", exponent, 0.0, 16.0)

    def loss_probability(self, distance: float) -> float:
        """The per-copy loss probability at the given distance."""
        frac = min(max(distance / self.transmission_range, 0.0), 1.0)
        p = self.p_near + (self.p_far - self.p_near) * math.pow(frac, self.exponent)
        return min(max(p, 0.0), 1.0)

    def is_lost(self, sender, receiver, distance, time, rng) -> bool:
        return bool(rng.uniform() < self.loss_probability(distance))

    def lost_mask(self, sender, receivers, distances, time, rng) -> np.ndarray:
        frac = np.clip(
            np.asarray(distances, dtype=np.float64) / self.transmission_range,
            0.0,
            1.0,
        )
        p = np.clip(
            self.p_near + (self.p_far - self.p_near) * frac**self.exponent,
            0.0,
            1.0,
        )
        return rng.random(len(receivers)) < p

    def describe(self) -> str:
        return (
            f"DistanceDependentLoss(range={self.transmission_range}, "
            f"p_near={self.p_near}, p_far={self.p_far}, exp={self.exponent})"
        )


class BoundedAdversaryLoss(LossModel):
    """Bernoulli loss with a hard cap on the total number of dropped copies.

    Behaves exactly like :class:`BernoulliLoss` with probability ``p``
    until ``budget`` copies have been dropped (across the whole run); from
    then on every copy is delivered.  A ``budget`` smaller than the
    protocol's built-in redundancy (retry ladders, backup gateways, peer
    forwarding) turns the paper's *probabilistic* completeness into a
    *deterministic* guarantee, which is what lets the conformance soak
    harness treat any residual incompleteness as a hard protocol bug
    rather than bad luck.

    Deliberately relies on the sequential :meth:`LossModel.lost_mask`
    fallback: the remaining budget changes one receiver at a time, so the
    vectorized and scalar medium paths consume the RNG identically.
    """

    def __init__(self, p: float, budget: int) -> None:
        self.p = check_probability("p", p)
        if int(budget) < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.budget = int(budget)
        self.dropped = 0

    def is_lost(self, sender, receiver, distance, time, rng) -> bool:
        if self.p == 0.0 or self.dropped >= self.budget:
            return False
        if self.p == 1.0 or bool(rng.uniform() < self.p):
            self.dropped += 1
            return True
        return False

    def describe(self) -> str:
        return f"BoundedAdversaryLoss(p={self.p}, budget={self.budget})"


class CompositeLoss(LossModel):
    """A copy survives only if it survives *every* component model.

    Deliberately relies on the sequential :meth:`LossModel.lost_mask`
    fallback: ``any`` short-circuits, so RNG consumption depends on which
    component first declares a loss -- a batched OR over component masks
    would draw differently and break scalar/vectorized bit-identity.
    """

    def __init__(self, *models: LossModel) -> None:
        if not models:
            raise ValueError("CompositeLoss requires at least one model")
        self.models = tuple(models)

    def is_lost(self, sender, receiver, distance, time, rng) -> bool:
        return any(
            m.is_lost(sender, receiver, distance, time, rng) for m in self.models
        )

    def describe(self) -> str:
        inner = ", ".join(m.describe() for m in self.models)
        return f"CompositeLoss({inner})"


#: Loss-model kinds addressable by name (declarative scenario configs).
LOSS_KINDS = ("perfect", "bernoulli", "bounded", "distance", "gilbert")


def build_loss_model(
    kind: str,
    params: Mapping[str, float] | Sequence[Tuple[str, float]] | None = None,
    *,
    loss_probability: float = 0.1,
    transmission_range: float = 100.0,
) -> LossModel:
    """Instantiate a loss model from a declarative ``(kind, params)`` spec.

    Scenario configs must stay frozen and picklable (they cross process
    boundaries in the parallel fabric), so they carry a kind string and a
    flat parameter mapping instead of a live model object; this factory
    turns the spec into the model at run time.  ``loss_probability`` seeds
    the ``p`` of the Bernoulli-flavored kinds unless ``params`` overrides
    it; ``transmission_range`` parameterizes the distance-dependent model.
    """
    kwargs = dict(params or {})
    if kind == "perfect":
        model: LossModel = PerfectLinks()
    elif kind == "bernoulli":
        model = BernoulliLoss(kwargs.pop("p", loss_probability))
    elif kind == "bounded":
        model = BoundedAdversaryLoss(
            kwargs.pop("p", loss_probability), int(kwargs.pop("budget", 3))
        )
    elif kind == "distance":
        model = DistanceDependentLoss(transmission_range, **kwargs)
        kwargs = {}
    elif kind == "gilbert":
        model = GilbertElliottLoss(**kwargs)
        kwargs = {}
    else:
        raise ValueError(
            f"unknown loss kind {kind!r}; expected one of {LOSS_KINDS}"
        )
    if kwargs:
        raise ValueError(
            f"unused loss parameters for kind {kind!r}: {sorted(kwargs)}"
        )
    return model
