"""Node runtime: a fail-stop host with a stack of protocol handlers.

The paper assumes a fail-stop model (Section 2.2): a crashed node halts --
it neither transmits nor receives, and it never recovers by itself.
:meth:`SimNode.crash` enforces exactly that: the receiver is muted, every
outstanding timer is disarmed, and subsequent send attempts are dropped.

Protocols (cluster formation, the FDS, baselines) are attached as
:class:`Protocol` instances; each receives delivered envelopes in
attachment order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import NodeStateError
from repro.sim.engine import Simulator
from repro.sim.medium import Envelope, RadioMedium
from repro.sim.timers import TimerService
from repro.types import NodeId, NodeStatus
from repro.util.geometry import Vec2


class Protocol:
    """Base class for per-node protocol handlers.

    Subclasses override :meth:`on_receive` (and optionally
    :meth:`on_crash`).  A protocol sends through its node, never through the
    medium directly, so crash semantics apply uniformly.
    """

    #: Short name used in traces and diagnostics.
    name = "protocol"

    def __init__(self) -> None:
        self.node: Optional["SimNode"] = None

    def attach(self, node: "SimNode") -> None:
        """Called by the node when the protocol is installed."""
        self.node = node

    def on_receive(self, envelope: Envelope) -> None:
        """Handle a delivered (possibly overheard) message copy."""

    def on_crash(self) -> None:
        """Called once when the owning node crashes."""


class SimNode:
    """A simulated host.

    Attributes
    ----------
    node_id:
        The globally unique NID.
    position:
        Location in the plane (meters).
    status:
        Ground-truth liveness; protocols must not read this -- it exists
        for the metrics layer and failure injection.
    """

    def __init__(
        self,
        node_id: NodeId,
        position: Vec2,
        sim: Simulator,
        medium: RadioMedium,
    ) -> None:
        self.node_id = node_id
        self.position = position
        self.sim = sim
        self.medium = medium
        self.status = NodeStatus.ALIVE
        self.timers = TimerService(sim)
        self.protocols: List[Protocol] = []
        self.sent_count = 0
        self.received_count = 0
        medium.register(node_id, position, self._on_envelope)

    # ------------------------------------------------------------------
    # Protocol stack
    # ------------------------------------------------------------------
    def add_protocol(self, protocol: Protocol) -> None:
        """Install a protocol; it starts receiving immediately."""
        protocol.attach(self)
        self.protocols.append(protocol)

    # ------------------------------------------------------------------
    # Substrate surface (see :mod:`repro.fds.substrate`)
    # ------------------------------------------------------------------
    @property
    def now(self):
        """The substrate clock: virtual simulated seconds."""
        return self.sim.now

    @property
    def tracer(self):
        """Where this node's trace records go (the medium's tracer)."""
        return self.medium.tracer

    @property
    def profiler(self):
        """The simulator's phase profiler."""
        return self.sim.profiler

    def get_protocol(self, protocol_type: type) -> Protocol:
        """The first installed protocol of the given type.

        Raises :class:`NodeStateError` if absent.
        """
        for protocol in self.protocols:
            if isinstance(protocol, protocol_type):
                return protocol
        raise NodeStateError(
            f"node {self.node_id} has no protocol of type {protocol_type.__name__}"
        )

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(self, payload: object, recipient: Optional[NodeId] = None) -> int:
        """Transmit ``payload`` (``recipient=None`` broadcasts).

        A crashed node silently sends nothing (fail-stop), returning 0.
        """
        if self.status is not NodeStatus.ALIVE:
            return 0
        self.sent_count += 1
        return self.medium.transmit(self.node_id, payload, recipient)

    def _on_envelope(self, envelope: Envelope) -> None:
        if self.status is not NodeStatus.ALIVE:
            return
        self.received_count += 1
        for protocol in self.protocols:
            protocol.on_receive(envelope)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: fall permanently silent.

        Idempotent is *not* desired here -- crashing twice indicates a bug
        in the failure injector, so the second call raises.
        """
        if self.status is NodeStatus.CRASHED:
            raise NodeStateError(f"node {self.node_id} is already crashed")
        self.status = NodeStatus.CRASHED
        # Ground-truth marker for post-hoc analysis: a spooled trace can
        # compute crash-to-detection latency without the live network.
        if self.medium.tracer.enabled:
            self.medium.tracer.record(
                self.sim.now, "sim.crash", node=int(self.node_id)
            )
        self.medium.set_receiving(self.node_id, False)
        self.timers.stop_all()
        for protocol in self.protocols:
            protocol.on_crash()

    @property
    def is_operational(self) -> bool:
        """Ground truth liveness (metrics only)."""
        return self.status is NodeStatus.ALIVE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimNode {self.node_id} at ({self.position.x:.1f}, "
            f"{self.position.y:.1f}) {self.status.value}>"
        )
