"""The shared wireless medium: unit-disk propagation with promiscuous receive.

Semantics follow Section 2.3 of the paper:

- all hosts share one transmission range ``R`` (symmetric links);
- a transmission by ``v`` is *heard by every one-hop neighbor of v*
  regardless of the intended recipient (promiscuous receiving mode), so a
  "send" and a "broadcast" differ only in the message's ``recipient`` field;
- each copy is lost independently according to the installed
  :class:`~repro.sim.loss.LossModel` (probability ``p`` in the paper);
- a delivered copy arrives within the per-hop bound ``Thop`` (we draw the
  delay uniformly from ``(epsilon, thop_fraction * Thop]`` so all
  round-based deadlines in the protocol hold, matching the paper's timing
  assumption 2 in Section 2.2).

The medium also maintains the neighbor structure (via a spatial grid hash,
so building a 1000-node network does not cost O(n^2) distance checks) and
exposes it read-only to protocols *only* through what they can hear --
protocol code never peeks at ground truth.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import MediumError
from repro.sim.engine import Simulator
from repro.sim.loss import LossModel, PerfectLinks
from repro.sim.trace import NullTracer, Tracer
from repro.types import NodeId, SimTime
from repro.util.geometry import Vec2
from repro.util.validation import check_positive, check_range


@dataclass(frozen=True, slots=True)
class Envelope:
    """A delivered copy of a transmission, as seen by one receiver.

    ``overheard`` is ``True`` when the receiver was not the intended
    recipient -- the paper's "inherent message redundancy" that digests
    exploit.  ``recipient is None`` means an intentional broadcast, in which
    case no copy is marked overheard.
    """

    sender: NodeId
    recipient: Optional[NodeId]
    payload: object
    sent_at: SimTime
    received_at: SimTime
    overheard: bool


DeliveryHandler = Callable[[Envelope], None]


class RadioMedium:
    """The single shared broadcast channel of the simulated network."""

    def __init__(
        self,
        sim: Simulator,
        transmission_range: float,
        loss_model: Optional[LossModel] = None,
        rng: Optional[np.random.Generator] = None,
        max_delay: float = 0.1,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.transmission_range = check_positive(
            "transmission_range", transmission_range
        )
        self.loss_model = loss_model if loss_model is not None else PerfectLinks()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: Upper bound on one-hop delivery delay (the paper's ``Thop`` is a
        #: protocol round duration chosen >= this bound).
        self.max_delay = check_positive("max_delay", max_delay)
        self.tracer = tracer if tracer is not None else NullTracer()

        self._positions: Dict[NodeId, Vec2] = {}
        self._handlers: Dict[NodeId, DeliveryHandler] = {}
        self._receiving: Dict[NodeId, bool] = {}
        self._cell_size = self.transmission_range
        self._grid: Dict[Tuple[int, int], List[NodeId]] = defaultdict(list)
        self._neighbor_cache: Optional[Dict[NodeId, Tuple[NodeId, ...]]] = None
        # Counters for metrics.
        self.transmissions = 0
        self.deliveries = 0
        self.losses = 0

    # ------------------------------------------------------------------
    # Registration and topology
    # ------------------------------------------------------------------
    def register(
        self, node_id: NodeId, position: Vec2, handler: DeliveryHandler
    ) -> None:
        """Attach a node at ``position``; ``handler`` receives envelopes."""
        if node_id in self._positions:
            raise MediumError(f"node {node_id} is already registered")
        self._positions[node_id] = position
        self._handlers[node_id] = handler
        self._receiving[node_id] = True
        self._grid[self._cell_of(position)].append(node_id)
        self._neighbor_cache = None

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node entirely (e.g. permanent removal from the field)."""
        position = self._positions.pop(node_id, None)
        if position is None:
            raise MediumError(f"node {node_id} is not registered")
        del self._handlers[node_id]
        del self._receiving[node_id]
        self._grid[self._cell_of(position)].remove(node_id)
        self._neighbor_cache = None

    def set_receiving(self, node_id: NodeId, receiving: bool) -> None:
        """Mute/unmute a node's receiver (crashed nodes hear nothing)."""
        if node_id not in self._receiving:
            raise MediumError(f"node {node_id} is not registered")
        self._receiving[node_id] = receiving

    def move(self, node_id: NodeId, position: Vec2) -> None:
        """Relocate a node (mobility extension)."""
        old = self._positions.get(node_id)
        if old is None:
            raise MediumError(f"node {node_id} is not registered")
        self._grid[self._cell_of(old)].remove(node_id)
        self._positions[node_id] = position
        self._grid[self._cell_of(position)].append(node_id)
        self._neighbor_cache = None

    def position_of(self, node_id: NodeId) -> Vec2:
        """Ground-truth position (for metrics/tests, not protocol logic)."""
        try:
            return self._positions[node_id]
        except KeyError:
            raise MediumError(f"node {node_id} is not registered") from None

    def node_ids(self) -> Tuple[NodeId, ...]:
        """All registered node ids, sorted for determinism."""
        return tuple(sorted(self._positions))

    def neighbors_of(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """One-hop neighbors of a node (ground truth, cached)."""
        if self._neighbor_cache is None:
            self._build_neighbor_cache()
        assert self._neighbor_cache is not None
        try:
            return self._neighbor_cache[node_id]
        except KeyError:
            raise MediumError(f"node {node_id} is not registered") from None

    def distance(self, a: NodeId, b: NodeId) -> float:
        """Ground-truth distance between two registered nodes."""
        return self.position_of(a).distance_to(self.position_of(b))

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(
        self,
        sender: NodeId,
        payload: object,
        recipient: Optional[NodeId] = None,
    ) -> int:
        """Send ``payload``; every in-range node may hear it.

        ``recipient=None`` is an intentional broadcast.  Returns the number
        of copies scheduled for delivery (after loss), which metrics use as
        the delivery fan-out.
        """
        if sender not in self._positions:
            raise MediumError(f"sender {sender} is not registered")
        if recipient is not None and recipient not in self._positions:
            raise MediumError(f"recipient {recipient} is not registered")
        now = self.sim.now
        self.transmissions += 1
        self.tracer.record(now, "radio.tx", node=int(sender), recipient=recipient)
        delivered = 0
        for receiver in self.neighbors_of(sender):
            if not self._receiving[receiver]:
                continue
            dist = self.distance(sender, receiver)
            if self.loss_model.is_lost(sender, receiver, dist, now, self.rng):
                self.losses += 1
                self.tracer.record(
                    now, "radio.loss", node=int(receiver), sender=int(sender)
                )
                continue
            delay = float(self.rng.uniform(0.0, self.max_delay))
            if delay == 0.0:
                delay = self.max_delay * 1e-9
            envelope = Envelope(
                sender=sender,
                recipient=recipient,
                payload=payload,
                sent_at=now,
                received_at=now + delay,
                overheard=(recipient is not None and receiver != recipient),
            )
            self._schedule_delivery(receiver, envelope)
            delivered += 1
        return delivered

    def _schedule_delivery(self, receiver: NodeId, envelope: Envelope) -> None:
        def deliver() -> None:
            # Receiver may have crashed/unregistered since the copy left.
            if not self._receiving.get(receiver, False):
                return
            self.deliveries += 1
            self.tracer.record(
                envelope.received_at,
                "radio.rx",
                node=int(receiver),
                sender=int(envelope.sender),
                overheard=envelope.overheard,
            )
            self._handlers[receiver](envelope)

        self.sim.schedule_in(
            envelope.received_at - self.sim.now, deliver, label="radio.delivery"
        )

    # ------------------------------------------------------------------
    # Spatial grid internals
    # ------------------------------------------------------------------
    def _cell_of(self, position: Vec2) -> Tuple[int, int]:
        return (
            int(np.floor(position.x / self._cell_size)),
            int(np.floor(position.y / self._cell_size)),
        )

    def _candidate_ids(self, position: Vec2) -> Iterable[NodeId]:
        cx, cy = self._cell_of(position)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                yield from self._grid.get((cx + dx, cy + dy), ())

    def _build_neighbor_cache(self) -> None:
        cache: Dict[NodeId, Tuple[NodeId, ...]] = {}
        r = self.transmission_range
        for node_id, position in self._positions.items():
            neighbors = [
                other
                for other in self._candidate_ids(position)
                if other != node_id
                and position.distance_to(self._positions[other]) <= r
            ]
            cache[node_id] = tuple(sorted(neighbors))
        self._neighbor_cache = cache

    def message_stats(self) -> Dict[str, int]:
        """Cumulative medium-level counters."""
        return {
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "losses": self.losses,
        }
