"""The shared wireless medium: unit-disk propagation with promiscuous receive.

Semantics follow Section 2.3 of the paper:

- all hosts share one transmission range ``R`` (symmetric links);
- a transmission by ``v`` is *heard by every one-hop neighbor of v*
  regardless of the intended recipient (promiscuous receiving mode), so a
  "send" and a "broadcast" differ only in the message's ``recipient`` field;
- each copy is lost independently according to the installed
  :class:`~repro.sim.loss.LossModel` (probability ``p`` in the paper);
- a delivered copy arrives within the per-hop bound ``Thop`` (we draw the
  delay uniformly from the half-open interval ``(0, max_delay]`` so all
  round-based deadlines in the protocol hold, matching the paper's timing
  assumption 2 in Section 2.2).

The medium also maintains the neighbor structure (via a spatial grid hash,
so building a 1000-node network does not cost O(n^2) distance checks) and
exposes it read-only to protocols *only* through what they can hear --
protocol code never peeks at ground truth.

Hot-path design
---------------
``transmit`` is the single hottest function in any full-stack run: every
heartbeat, digest, and gossip fans out over it.  The default *vectorized*
path draws the loss outcome for every in-range receiver with one batched
RNG call (:meth:`LossModel.lost_mask`) and all delivery delays with a
second, against a per-sender cached ``(neighbors, distances)`` array pair
(invalidated together with the neighbor cache on any topology change).

A *scalar* reference path (``vectorized=False``) keeps the pre-vectorization
per-receiver loop -- one RNG draw, one distance recomputation, and one
tracer dispatch per receiver -- for regression benchmarks and determinism
tests.  Both paths follow the same canonical draw schedule (all loss draws
in ascending receiver order, then all delay draws for the surviving
receivers), and batched NumPy doubles consume the bit stream exactly like
sequential scalar draws, so the two paths are bit-identical for any seed.
"""

from __future__ import annotations

from collections import defaultdict
from functools import partial
from itertools import compress
from time import perf_counter
from typing import Callable, Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

import numpy as np

from repro.errors import MediumError
from repro.obs.profiler import PHASE_RADIO_DELIVER, PHASE_RADIO_TRANSMIT
from repro.sim.engine import Simulator
from repro.sim.loss import LossModel, PerfectLinks
from repro.sim.trace import NullTracer, Tracer
from repro.types import NodeId, SimTime
from repro.util.geometry import Vec2
from repro.util.validation import check_positive, check_range


class Envelope(NamedTuple):
    """A delivered copy of a transmission, as seen by one receiver.

    ``overheard`` is ``True`` when the receiver was not the intended
    recipient -- the paper's "inherent message redundancy" that digests
    exploit.  ``recipient is None`` means an intentional broadcast, in which
    case no copy is marked overheard.

    A ``NamedTuple`` rather than a dataclass: one envelope is allocated
    per delivered copy, so construction sits on the radio hot path.
    """

    sender: NodeId
    recipient: Optional[NodeId]
    payload: object
    sent_at: SimTime
    received_at: SimTime
    overheard: bool


DeliveryHandler = Callable[[Envelope], None]


def draw_delays(
    rng: np.random.Generator, max_delay: float, size: int
) -> np.ndarray:
    """``size`` delivery delays, uniform on the half-open ``(0, max_delay]``.

    ``rng.random()`` is uniform on ``[0, 1)``, so ``max_delay * (1 - u)``
    lands exactly in ``(0, max_delay]`` -- no zero-delay remapping hack
    needed, and the per-hop bound is met with equality only when the
    underlying draw is exactly 0.  A batch of ``size`` doubles consumes the
    generator identically to ``size`` scalar draws.
    """
    return max_delay * (1.0 - rng.random(size))


class RadioMedium:
    """The single shared broadcast channel of the simulated network."""

    def __init__(
        self,
        sim: Simulator,
        transmission_range: float,
        loss_model: Optional[LossModel] = None,
        rng: Optional[np.random.Generator] = None,
        max_delay: float = 0.1,
        tracer: Optional[Tracer] = None,
        vectorized: bool = True,
    ) -> None:
        self.sim = sim
        self.transmission_range = check_positive(
            "transmission_range", transmission_range
        )
        self.loss_model = loss_model if loss_model is not None else PerfectLinks()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: Upper bound on one-hop delivery delay (the paper's ``Thop`` is a
        #: protocol round duration chosen >= this bound).
        self.max_delay = check_positive("max_delay", max_delay)
        self.tracer = tracer if tracer is not None else NullTracer()
        #: ``True`` uses the batched-RNG fan-out; ``False`` the per-receiver
        #: reference loop.  Both produce bit-identical runs (see module doc).
        self.vectorized = bool(vectorized)

        self._positions: Dict[NodeId, Vec2] = {}
        self._handlers: Dict[NodeId, DeliveryHandler] = {}
        self._receiving: Dict[NodeId, bool] = {}
        #: Nodes currently muted; empty set enables the no-filter fast path.
        self._muted: Set[NodeId] = set()
        self._cell_size = self.transmission_range
        self._grid: Dict[Tuple[int, int], Set[NodeId]] = defaultdict(set)
        self._neighbor_cache: Optional[Dict[NodeId, Tuple[NodeId, ...]]] = None
        #: Per-sender (neighbors, distances) arrays; invalidated together
        #: with ``_neighbor_cache`` on every topology change.
        self._array_cache: Dict[NodeId, Tuple[Tuple[NodeId, ...], np.ndarray]] = {}
        # Counters for metrics.
        self.transmissions = 0
        self.deliveries = 0
        self.losses = 0

    # ------------------------------------------------------------------
    # Registration and topology
    # ------------------------------------------------------------------
    def register(
        self, node_id: NodeId, position: Vec2, handler: DeliveryHandler
    ) -> None:
        """Attach a node at ``position``; ``handler`` receives envelopes."""
        if node_id in self._positions:
            raise MediumError(f"node {node_id} is already registered")
        self._positions[node_id] = position
        self._handlers[node_id] = handler
        self._receiving[node_id] = True
        self._grid[self._cell_of(position)].add(node_id)
        self._invalidate_topology()

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node entirely (e.g. permanent removal from the field)."""
        position = self._positions.pop(node_id, None)
        if position is None:
            raise MediumError(f"node {node_id} is not registered")
        del self._handlers[node_id]
        del self._receiving[node_id]
        self._muted.discard(node_id)
        self._grid[self._cell_of(position)].discard(node_id)
        self._invalidate_topology()

    def set_receiving(self, node_id: NodeId, receiving: bool) -> None:
        """Mute/unmute a node's receiver (crashed nodes hear nothing)."""
        if node_id not in self._receiving:
            raise MediumError(f"node {node_id} is not registered")
        self._receiving[node_id] = receiving
        if receiving:
            self._muted.discard(node_id)
        else:
            self._muted.add(node_id)

    def move(self, node_id: NodeId, position: Vec2) -> None:
        """Relocate a node (mobility extension)."""
        old = self._positions.get(node_id)
        if old is None:
            raise MediumError(f"node {node_id} is not registered")
        self._grid[self._cell_of(old)].discard(node_id)
        self._positions[node_id] = position
        self._grid[self._cell_of(position)].add(node_id)
        self._invalidate_topology()

    def position_of(self, node_id: NodeId) -> Vec2:
        """Ground-truth position (for metrics/tests, not protocol logic)."""
        try:
            return self._positions[node_id]
        except KeyError:
            raise MediumError(f"node {node_id} is not registered") from None

    def node_ids(self) -> Tuple[NodeId, ...]:
        """All registered node ids, sorted for determinism."""
        return tuple(sorted(self._positions))

    def neighbors_of(self, node_id: NodeId) -> Tuple[NodeId, ...]:
        """One-hop neighbors of a node (ground truth, cached, sorted)."""
        if self._neighbor_cache is None:
            self._build_neighbor_cache()
        assert self._neighbor_cache is not None
        try:
            return self._neighbor_cache[node_id]
        except KeyError:
            raise MediumError(f"node {node_id} is not registered") from None

    def neighbor_arrays(
        self, node_id: NodeId
    ) -> Tuple[Tuple[NodeId, ...], np.ndarray]:
        """Cached ``(neighbors, distances)`` for a sender, id-aligned.

        ``distances[i]`` is the ground-truth distance to ``neighbors[i]``;
        the pair is built lazily per sender and dropped whenever the
        topology changes (register / unregister / move).
        """
        entry = self._array_cache.get(node_id)
        if entry is None:
            neighbors = self.neighbors_of(node_id)
            position = self._positions[node_id]
            distances = np.fromiter(
                (
                    position.distance_to(self._positions[other])
                    for other in neighbors
                ),
                dtype=np.float64,
                count=len(neighbors),
            )
            entry = (neighbors, distances)
            self._array_cache[node_id] = entry
        return entry

    def distance(self, a: NodeId, b: NodeId) -> float:
        """Ground-truth distance between two registered nodes."""
        return self.position_of(a).distance_to(self.position_of(b))

    def _invalidate_topology(self) -> None:
        """Drop every structure derived from positions, atomically."""
        self._neighbor_cache = None
        self._array_cache.clear()

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(
        self,
        sender: NodeId,
        payload: object,
        recipient: Optional[NodeId] = None,
    ) -> int:
        """Send ``payload``; every in-range node may hear it.

        ``recipient=None`` is an intentional broadcast.  Returns the number
        of copies scheduled for delivery (after loss), which metrics use as
        the delivery fan-out.
        """
        if sender not in self._positions:
            raise MediumError(f"sender {sender} is not registered")
        if recipient is not None and recipient not in self._positions:
            raise MediumError(f"recipient {recipient} is not registered")
        profiler = self.sim.profiler
        if not profiler.enabled:
            if not self.vectorized:
                return self._transmit_scalar(sender, payload, recipient)
            return self._transmit_vectorized(sender, payload, recipient)
        t0 = perf_counter()
        try:
            if not self.vectorized:
                return self._transmit_scalar(sender, payload, recipient)
            return self._transmit_vectorized(sender, payload, recipient)
        finally:
            profiler.add(PHASE_RADIO_TRANSMIT, t0)

    def _transmit_vectorized(
        self,
        sender: NodeId,
        payload: object,
        recipient: Optional[NodeId],
    ) -> int:
        """The batched-RNG fan-out (see module doc, "Hot-path design")."""
        now = self.sim.now
        self.transmissions += 1
        tracer = self.tracer
        tracing = tracer.enabled
        if tracing:
            tracer.record(now, "radio.tx", node=int(sender), recipient=recipient)

        neighbors, distances = self.neighbor_arrays(sender)
        if not neighbors:
            return 0
        if self._muted:
            receiving = self._receiving
            flags = [receiving[r] for r in neighbors]
            eligible: Tuple[NodeId, ...] = tuple(compress(neighbors, flags))
            if not eligible:
                return 0
            distances = distances[np.fromiter(flags, dtype=bool, count=len(flags))]
        else:
            eligible = neighbors

        lost = self.loss_model.lost_mask(
            sender, eligible, distances, now, self.rng
        )
        n_lost = int(np.count_nonzero(lost))
        if n_lost:
            self.losses += n_lost
            if tracing:
                for receiver in compress(eligible, lost):
                    tracer.record(
                        now, "radio.loss", node=int(receiver), sender=int(sender)
                    )
            survivors = list(compress(eligible, np.logical_not(lost)))
        else:
            survivors = list(eligible)
        if not survivors:
            return 0

        received_at = (
            now + draw_delays(self.rng, self.max_delay, len(survivors))
        ).tolist()
        schedule = self.sim.schedule_fire_and_forget
        deliver = self._deliver
        unicast = recipient is not None
        for receiver, when in zip(survivors, received_at):
            envelope = Envelope(
                sender,
                recipient,
                payload,
                now,
                when,
                unicast and receiver != recipient,
            )
            schedule(when, partial(deliver, receiver, envelope))
        return len(survivors)

    def _transmit_scalar(
        self,
        sender: NodeId,
        payload: object,
        recipient: Optional[NodeId],
    ) -> int:
        """Reference per-receiver fan-out (the pre-vectorization hot path).

        Follows the same canonical draw schedule as the vectorized path --
        all loss draws first (ascending receiver id), then all delay draws
        for the survivors -- so a seeded run is bit-identical under either
        path.  Everything else is deliberately naive: per-receiver distance
        recomputation, per-receiver scalar RNG calls, unconditional tracer
        dispatch.
        """
        now = self.sim.now
        self.transmissions += 1
        self.tracer.record(now, "radio.tx", node=int(sender), recipient=recipient)
        survivors: List[NodeId] = []
        for receiver in self.neighbors_of(sender):
            if not self._receiving[receiver]:
                continue
            dist = self.distance(sender, receiver)
            if self.loss_model.is_lost(sender, receiver, dist, now, self.rng):
                self.losses += 1
                self.tracer.record(
                    now, "radio.loss", node=int(receiver), sender=int(sender)
                )
                continue
            survivors.append(receiver)
        delivered = 0
        for receiver in survivors:
            delay = float(self.max_delay * (1.0 - self.rng.random()))
            envelope = Envelope(
                sender=sender,
                recipient=recipient,
                payload=payload,
                sent_at=now,
                received_at=now + delay,
                overheard=(recipient is not None and receiver != recipient),
            )
            self._schedule_delivery(receiver, envelope)
            delivered += 1
        return delivered

    def _deliver(self, receiver: NodeId, envelope: Envelope) -> None:
        # Receiver may have crashed/unregistered since the copy left.
        if not self._receiving.get(receiver, False):
            return
        self.deliveries += 1
        if self.tracer.enabled:
            self.tracer.record(
                envelope.received_at,
                "radio.rx",
                node=int(receiver),
                sender=int(envelope.sender),
                overheard=envelope.overheard,
                latency=envelope.received_at - envelope.sent_at,
            )
        profiler = self.sim.profiler
        if profiler.enabled:
            t0 = perf_counter()
            try:
                self._handlers[receiver](envelope)
            finally:
                profiler.add(PHASE_RADIO_DELIVER, t0)
        else:
            self._handlers[receiver](envelope)

    def _schedule_delivery(self, receiver: NodeId, envelope: Envelope) -> None:
        self.sim.schedule_at(
            envelope.received_at,
            partial(self._deliver, receiver, envelope),
            label="radio.delivery",
        )

    # ------------------------------------------------------------------
    # Spatial grid internals
    # ------------------------------------------------------------------
    def _cell_of(self, position: Vec2) -> Tuple[int, int]:
        return (
            int(np.floor(position.x / self._cell_size)),
            int(np.floor(position.y / self._cell_size)),
        )

    def _candidate_ids(self, position: Vec2) -> Iterable[NodeId]:
        cx, cy = self._cell_of(position)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                yield from self._grid.get((cx + dx, cy + dy), ())

    def _build_neighbor_cache(self) -> None:
        cache: Dict[NodeId, Tuple[NodeId, ...]] = {}
        r = self.transmission_range
        for node_id, position in self._positions.items():
            neighbors = [
                other
                for other in self._candidate_ids(position)
                if other != node_id
                and position.distance_to(self._positions[other]) <= r
            ]
            # Cells are unordered sets; sort so neighbor tuples (and every
            # iteration the protocols do over them) stay deterministic.
            cache[node_id] = tuple(sorted(neighbors))
        self._neighbor_cache = cache

    def message_stats(self) -> Dict[str, int]:
        """Cumulative medium-level counters."""
        return {
            "transmissions": self.transmissions,
            "deliveries": self.deliveries,
            "losses": self.losses,
        }
