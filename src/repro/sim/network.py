"""Network assembly: engine + medium + nodes from a placement.

:func:`build_network` is the main entry point used by examples, tests and
experiments: give it positions (or a placement from
:mod:`repro.topology.placement`), a loss model, and a seed, and it returns a
ready :class:`Network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.loss import BernoulliLoss, LossModel
from repro.sim.medium import RadioMedium
from repro.sim.node import SimNode
from repro.sim.trace import NullTracer, Tracer
from repro.types import NodeId
from repro.util.geometry import Vec2
from repro.util.rng import RngFactory


@dataclass
class NetworkConfig:
    """Parameters shared by a whole simulated network.

    Defaults mirror the paper's analysis setting: transmission range of
    100 meters and iid message loss with probability ``loss_probability``.
    ``max_delay`` is the per-hop delivery bound; protocol round durations
    (``Thop``) must be chosen at least this large.
    """

    transmission_range: float = 100.0
    loss_probability: float = 0.1
    max_delay: float = 0.1
    seed: int = 0
    #: ``True`` (default) uses the batched-RNG radio hot path; ``False``
    #: the per-receiver reference loop.  Bit-identical either way.
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.transmission_range <= 0:
            raise ConfigurationError("transmission_range must be positive")
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ConfigurationError("loss_probability must be in [0, 1]")
        if self.max_delay <= 0:
            raise ConfigurationError("max_delay must be positive")


class Network:
    """A fully wired simulated network."""

    def __init__(
        self,
        sim: Simulator,
        medium: RadioMedium,
        nodes: Mapping[NodeId, SimNode],
        rngs: RngFactory,
        tracer: Tracer,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.nodes: Dict[NodeId, SimNode] = dict(nodes)
        self.rngs = rngs
        self.tracer = tracer

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: NodeId) -> SimNode:
        """The node with the given NID."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"no node with id {node_id}") from None

    def operational_ids(self) -> tuple[NodeId, ...]:
        """Ground-truth operational NIDs, sorted."""
        return tuple(
            sorted(nid for nid, n in self.nodes.items() if n.is_operational)
        )

    def crashed_ids(self) -> tuple[NodeId, ...]:
        """Ground-truth crashed NIDs, sorted."""
        return tuple(
            sorted(nid for nid, n in self.nodes.items() if not n.is_operational)
        )

    def crash(self, node_id: NodeId) -> None:
        """Fail-stop the given node now."""
        self.node(node_id).crash()


def build_network(
    positions: Mapping[int, Vec2] | Sequence[Vec2],
    config: Optional[NetworkConfig] = None,
    loss_model: Optional[LossModel] = None,
    tracer: Optional[Tracer] = None,
) -> Network:
    """Assemble a :class:`Network` from node positions.

    ``positions`` is either a mapping NID -> position or a sequence (NIDs
    are then assigned 0..n-1).  If ``loss_model`` is omitted, a
    :class:`BernoulliLoss` with ``config.loss_probability`` is used -- the
    paper's model.
    """
    cfg = config if config is not None else NetworkConfig()
    if not isinstance(positions, Mapping):
        positions = {NodeId(i): pos for i, pos in enumerate(positions)}
    if not positions:
        raise ConfigurationError("a network needs at least one node")
    rngs = RngFactory(cfg.seed)
    sim = Simulator()
    model = loss_model if loss_model is not None else BernoulliLoss(cfg.loss_probability)
    trc = tracer if tracer is not None else NullTracer()
    medium = RadioMedium(
        sim,
        transmission_range=cfg.transmission_range,
        loss_model=model,
        rng=rngs.stream("medium"),
        max_delay=cfg.max_delay,
        tracer=trc,
        vectorized=cfg.vectorized,
    )
    nodes = {
        NodeId(nid): SimNode(NodeId(nid), pos, sim, medium)
        for nid, pos in sorted(positions.items())
    }
    return Network(sim=sim, medium=medium, nodes=nodes, rngs=rngs, tracer=trc)
