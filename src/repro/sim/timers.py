"""Restartable timers on top of the event engine.

The FDS leans heavily on timeouts: the fixed round duration ``Thop``
(Section 4.2), the implicit-acknowledgment window ``2*Thop`` (Figure 3), the
ranked backup-gateway standby windows ``k * 2*Thop`` and ``(n+1) * 2*Thop``
(Section 4.3), and the energy-balanced peer-forwarding waiting periods
(Section 4.2).  :class:`Timer` wraps the raw event handle with the start /
stop / restart lifecycle those mechanisms need.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SchedulingError
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.types import SimTime


class Timer:
    """A one-shot, restartable timeout.

    The callback fires once per ``start`` unless ``stop`` (or a restart)
    intervenes.  Restarting an armed timer cancels the previous deadline --
    exactly the semantics of "set its timer to 2*Thop right after
    forwarding".
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None], label: str = "") -> None:
        self._sim = sim
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None
        self._fired_count = 0

    @property
    def armed(self) -> bool:
        """Whether the timer is counting down."""
        return self._event is not None and self._event.active

    @property
    def fired_count(self) -> int:
        """How many times this timer has expired (for tests/metrics)."""
        return self._fired_count

    @property
    def deadline(self) -> Optional[SimTime]:
        """Absolute expiry time, or ``None`` when unarmed."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: SimTime) -> None:
        """(Re)arm the timer to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"timer delay must be >= 0, got {delay}")
        self.stop()
        self._event = self._sim.schedule_in(delay, self._expire, label=self._label)

    def stop(self) -> None:
        """Disarm without firing; idempotent."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _expire(self) -> None:
        self._event = None
        self._fired_count += 1
        self._callback()


class TimerService:
    """A factory that tracks every timer it creates.

    Nodes own one service so that crashing a node can disarm all of its
    outstanding timers in one call (fail-stop nodes must fall silent).
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._timers: list[Timer] = []

    def create(self, callback: Callable[[], None], label: str = "") -> Timer:
        """A new timer registered with this service."""
        timer = Timer(self._sim, callback, label=label)
        self._timers.append(timer)
        return timer

    def after(self, delay: SimTime, callback: Callable[[], None], label: str = "") -> Timer:
        """Convenience: create and immediately start a timer."""
        timer = self.create(callback, label=label)
        timer.start(delay)
        return timer

    def stop_all(self) -> None:
        """Disarm every timer created by this service."""
        for timer in self._timers:
            timer.stop()

    @property
    def armed_count(self) -> int:
        """Number of timers currently counting down."""
        return sum(1 for t in self._timers if t.armed)
