"""Structured tracing of simulation activity.

A :class:`Tracer` receives one :class:`TraceRecord` per noteworthy event
(transmission, delivery, loss, detection, ...).  Components emit through
whatever tracer the network was built with; the default
:class:`NullTracer` makes tracing free when disabled, and
:class:`RecordingTracer` captures records for tests and metrics.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Mapping, Optional

from repro.errors import ConfigurationError
from repro.types import SimTime


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    ``kind`` is a dotted category string (e.g. ``"radio.loss"``,
    ``"fds.false_detection"``); ``node`` is the acting node's NID when one
    applies; ``detail`` carries kind-specific fields.
    """

    time: SimTime
    kind: str
    node: Optional[int] = None
    detail: Mapping[str, object] = field(default_factory=dict)


class Tracer:
    """Interface: receives trace records; subclasses decide what to keep.

    ``enabled`` is a class-level fast-path flag: hot loops (the radio
    medium's transmit fan-out) consult it *before* assembling a record, so
    a disabled tracer costs a single attribute load per event instead of a
    :class:`TraceRecord` allocation.  Subclasses that discard everything
    (:class:`NullTracer`) set it to ``False``; emitting to a tracer whose
    ``enabled`` is ``False`` is still safe, just wasted work.
    """

    enabled: bool = True

    def emit(self, record: TraceRecord) -> None:
        raise NotImplementedError

    def record(
        self,
        time: SimTime,
        kind: str,
        node: Optional[int] = None,
        **detail: object,
    ) -> None:
        """Convenience constructor-and-emit."""
        self.emit(TraceRecord(time=time, kind=kind, node=node, detail=detail))


class NullTracer(Tracer):
    """Discards everything; the zero-overhead default."""

    enabled = False

    def emit(self, record: TraceRecord) -> None:
        pass

    def record(
        self,
        time: SimTime,
        kind: str,
        node: Optional[int] = None,
        **detail: object,
    ) -> None:
        # Overridden to skip even the TraceRecord construction.
        pass


class RecordingTracer(Tracer):
    """Keeps records in memory; supports filtering and counting.

    By default the buffer is unbounded (tests want every record).  Runs
    that cannot afford that can pass ``max_records``: once full, the
    *oldest* record is dropped per new one and ``dropped`` counts the
    evictions, so a long run keeps a sliding window instead of dying --
    and the consumer can tell the window was clipped.  For genuinely
    large traces use :class:`repro.obs.spool.SpoolingTracer`, which
    streams to disk instead.
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records < 1:
            raise ConfigurationError(
                f"max_records must be >= 1 or None, got {max_records}"
            )
        self.max_records = max_records
        self.records: deque[TraceRecord] | list[TraceRecord]
        if max_records is None:
            self.records = []
        else:
            self.records = deque(maxlen=max_records)
        #: Records evicted by the drop-oldest overflow policy.
        self.dropped = 0

    def emit(self, record: TraceRecord) -> None:
        if (
            self.max_records is not None
            and len(self.records) == self.max_records
        ):
            self.dropped += 1
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, kind: str) -> list[TraceRecord]:
        """All records whose kind equals or is nested under ``kind``."""
        prefix = kind + "."
        return [r for r in self.records if r.kind == kind or r.kind.startswith(prefix)]

    def count(self, kind: str) -> int:
        """Number of records matching ``kind`` (prefix semantics)."""
        return len(self.filter(kind))

    def kinds(self) -> Counter:
        """Histogram of record kinds."""
        return Counter(r.kind for r in self.records)

    def iter_kind(self, kind: str) -> Iterator[TraceRecord]:
        prefix = kind + "."
        for r in self.records:
            if r.kind == kind or r.kind.startswith(prefix):
                yield r

    def clear(self) -> None:
        self.records.clear()


def record_to_dict(record: TraceRecord) -> Dict[str, object]:
    """The record's flat-dict serialization (detail keys inlined)."""
    return {
        "time": record.time,
        "kind": record.kind,
        "node": record.node,
        **dict(record.detail),
    }


def iter_jsonl(
    records: Iterator[TraceRecord] | list[TraceRecord],
) -> Iterator[str]:
    """One JSON line per record, streamed.

    The memory-safe serialization path: consumers that write to disk or
    feed a hash incrementally never hold more than one line.  Detail
    values must be JSON-serializable (the library's own emitters only use
    ints, floats, bools, strings, lists).
    """
    for record in records:
        yield json.dumps(record_to_dict(record), sort_keys=True)


def records_to_jsonl(records: Iterator[TraceRecord] | list[TraceRecord]) -> str:
    """Serialize trace records as one JSON Lines string.

    A thin join over :func:`iter_jsonl` -- convenient for small traces
    and tests; streaming consumers should iterate :func:`iter_jsonl`
    directly instead of materializing the whole document.
    """
    return "\n".join(iter_jsonl(records))


class CallbackTracer(Tracer):
    """Forwards each record to a user callback (streaming consumption)."""

    def __init__(self, callback: Callable[[TraceRecord], None]) -> None:
        self._callback = callback

    def emit(self, record: TraceRecord) -> None:
        self._callback(record)
