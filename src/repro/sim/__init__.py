"""Discrete-event simulation substrate.

The paper assumes round-based protocol execution with a per-hop delivery
bound ``Thop`` over an ad hoc wireless network with unreliable links.  This
package provides the substrate: a deterministic event engine, a unit-disk
radio medium with promiscuous (overheard) delivery and pluggable loss
models, and a node runtime with fail-stop crashes.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.loss import (
    BernoulliLoss,
    BoundedAdversaryLoss,
    CompositeLoss,
    DistanceDependentLoss,
    GilbertElliottLoss,
    LossModel,
    PerfectLinks,
    build_loss_model,
)
from repro.sim.medium import Envelope, RadioMedium
from repro.sim.network import Network, NetworkConfig, build_network
from repro.sim.node import Protocol, SimNode
from repro.sim.timers import Timer, TimerService
from repro.sim.trace import NullTracer, RecordingTracer, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "LossModel",
    "BernoulliLoss",
    "BoundedAdversaryLoss",
    "build_loss_model",
    "GilbertElliottLoss",
    "DistanceDependentLoss",
    "CompositeLoss",
    "PerfectLinks",
    "RadioMedium",
    "Envelope",
    "Network",
    "NetworkConfig",
    "build_network",
    "SimNode",
    "Protocol",
    "Timer",
    "TimerService",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "TraceRecord",
]
