"""Event and event-queue primitives for the simulator.

Events are totally ordered by ``(time, priority, sequence)``.  The sequence
number is a monotonically increasing tiebreaker, so two events scheduled for
the same instant and priority fire in scheduling order -- this determinism
is what makes whole simulations replayable from a seed.

Cancellation is O(1): a cancelled event stays in the heap but is skipped on
pop (the classic "lazy deletion" scheme), which keeps :meth:`EventQueue.push`
and :meth:`EventQueue.pop` both ``O(log n)``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SchedulingError
from repro.types import SimTime

#: Default event priority; lower fires first among same-time events.
DEFAULT_PRIORITY = 0


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    The queue orders entries by ``(time, priority, sequence)`` -- the
    ordering lives in the heap's C-compared key tuples, not on the event
    itself, which keeps the hot ``push`` path free of Python-level
    ``__lt__`` dispatch.  The callback never participates in comparisons.
    """

    time: SimTime
    priority: int
    sequence: int
    callback: Callable[[], None]
    cancelled: bool = False
    label: str = ""

    def cancel(self) -> None:
        """Mark this event so the queue skips it; idempotent."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        label = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.6f} prio={self.priority}{label} {state}>"


class EventQueue:
    """A priority queue of :class:`Event` with lazy cancellation.

    Heap entries are ``(time, priority, sequence, event)`` tuples: the
    unique sequence number breaks every tie before the (incomparable)
    event is reached, so ``heappush`` orders entirely through C tuple
    comparison -- the radio fan-out schedules tens of thousands of
    deliveries per simulated second through this path.
    """

    def __init__(self) -> None:
        # Entries are (time, priority, sequence, callback, event-or-None);
        # ``None`` marks a bare (non-cancellable) push from the fast path.
        self._heap: list[
            tuple[SimTime, int, int, Callable[[], None], Optional[Event]]
        ] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *active* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: SimTime,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at ``time``; returns a cancellable handle."""
        if time != time:  # NaN check
            raise SchedulingError("event time is NaN")
        sequence = next(self._counter)
        event = Event(time, priority, sequence, callback, False, label)
        heapq.heappush(self._heap, (time, priority, sequence, callback, event))
        self._live += 1
        return event

    def push_bare(self, time: SimTime, callback: Callable[[], None]) -> None:
        """Schedule a *non-cancellable* callback at ``time``; no handle.

        The fast path for high-fan-out producers (radio deliveries): skips
        the :class:`Event` allocation entirely.  Ordering is identical to
        :meth:`push` -- bare and handled entries share one sequence
        counter -- the entry just cannot be cancelled or labelled.
        """
        if time != time:  # NaN check
            raise SchedulingError("event time is NaN")
        heapq.heappush(
            self._heap,
            (time, DEFAULT_PRIORITY, next(self._counter), callback, None),
        )
        self._live += 1

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event; safe to call twice."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[SimTime]:
        """Time of the next active event, or ``None`` if empty."""
        self._discard_cancelled()
        return self._heap[0][0] if self._heap else None

    def pop_entry(
        self,
    ) -> tuple[SimTime, int, int, Callable[[], None], Optional[Event]]:
        """Remove and return the next active heap entry (the hot path).

        Raises :class:`SchedulingError` when empty.
        """
        self._discard_cancelled()
        if not self._heap:
            raise SchedulingError("pop from an empty event queue")
        entry = heapq.heappop(self._heap)
        self._live -= 1
        return entry

    def pop(self) -> Event:
        """Remove and return the next active event.

        Bare entries (from :meth:`push_bare`) are wrapped in a synthetic
        :class:`Event` for the caller's convenience.
        """
        time, priority, sequence, callback, event = self.pop_entry()
        if event is None:
            event = Event(time, priority, sequence, callback)
        return event

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

    def _discard_cancelled(self) -> None:
        heap = self._heap
        while heap:
            event = heap[0][4]
            if event is None or not event.cancelled:
                break
            heapq.heappop(heap)
