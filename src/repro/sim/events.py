"""Event and event-queue primitives for the simulator.

Events are totally ordered by ``(time, priority, sequence)``.  The sequence
number is a monotonically increasing tiebreaker, so two events scheduled for
the same instant and priority fire in scheduling order -- this determinism
is what makes whole simulations replayable from a seed.

Cancellation is O(1): a cancelled event stays in the heap but is skipped on
pop (the classic "lazy deletion" scheme), which keeps :meth:`EventQueue.push`
and :meth:`EventQueue.pop` both ``O(log n)``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SchedulingError
from repro.types import SimTime

#: Default event priority; lower fires first among same-time events.
DEFAULT_PRIORITY = 0


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering fields come first so the heap orders by time, then priority,
    then insertion sequence.  The callback itself never participates in
    comparisons.
    """

    time: SimTime
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark this event so the queue skips it; idempotent."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        label = f" {self.label!r}" if self.label else ""
        return f"<Event t={self.time:.6f} prio={self.priority}{label} {state}>"


class EventQueue:
    """A priority queue of :class:`Event` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *active* (non-cancelled) events."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: SimTime,
        callback: Callable[[], None],
        priority: int = DEFAULT_PRIORITY,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at ``time``; returns a cancellable handle."""
        if time != time:  # NaN check
            raise SchedulingError("event time is NaN")
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event; safe to call twice."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[SimTime]:
        """Time of the next active event, or ``None`` if empty."""
        self._discard_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next active event.

        Raises :class:`SchedulingError` when empty.
        """
        self._discard_cancelled()
        if not self._heap:
            raise SchedulingError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
