"""The energy-balanced waiting-period policy for peer forwarding.

Section 4.2: when a node broadcasts a forwarding request, each in-cluster
neighbor "will set a waiting period for the requested forwarding.  The
waiting period could be a function of the node's NID (which is globally
unique in the network) and be inversely proportional to the node's
remaining energy, which would allow each of v's neighbors to have a unique
waiting period and would balance energy."

Our concrete instantiation::

    wait(nid, e) = slot * (1 + (nid mod M)) / max(e, e_floor)

- the NID term gives every neighbor a distinct base slot (NIDs are unique,
  and ``M`` is chosen larger than any plausible cluster population so the
  modulus preserves distinctness within a cluster);
- dividing by the remaining-energy fraction ``e`` pushes low-energy nodes
  later, so high-energy nodes win the race and pay the forwarding cost;
- ``e_floor`` bounds the delay for nearly drained nodes.
"""

from __future__ import annotations

from repro.types import NodeId
from repro.util.validation import check_positive, check_probability


class WaitingPeriodPolicy:
    """Computes unique, energy-aware waiting periods."""

    def __init__(
        self,
        slot: float = 0.005,
        modulus: int = 4096,
        energy_floor: float = 0.05,
    ) -> None:
        self.slot = check_positive("slot", slot)
        if modulus < 2:
            raise ValueError(f"modulus must be >= 2, got {modulus}")
        self.modulus = int(modulus)
        self.energy_floor = check_probability("energy_floor", energy_floor)
        if self.energy_floor == 0.0:
            raise ValueError("energy_floor must be > 0")

    def waiting_period(self, node_id: NodeId, energy_fraction: float) -> float:
        """The delay before this node answers a forwarding request."""
        check_probability("energy_fraction", energy_fraction)
        base = self.slot * (1 + (int(node_id) % self.modulus))
        return base / max(energy_fraction, self.energy_floor)

    def max_period(self) -> float:
        """Upper bound of any waiting period (for window sizing)."""
        return self.slot * self.modulus / self.energy_floor
