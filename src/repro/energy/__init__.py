"""Energy accounting and energy-balanced forwarding policy (Section 4.2)."""

from repro.energy.model import EnergyConfig, EnergyModel, NodeEnergy
from repro.energy.policy import WaitingPeriodPolicy

__all__ = ["EnergyConfig", "EnergyModel", "NodeEnergy", "WaitingPeriodPolicy"]
