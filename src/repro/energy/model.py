"""Per-node energy accounting.

The paper assumes hosts harvest solar energy, making low-frequency heartbeat
diffusion sustainable, and prefers peer forwarding over CH/DCH
retransmission "because of energy-balancing considerations".  Absolute
joule figures are irrelevant to the protocol; what matters is each node's
*remaining energy fraction*, which drives the waiting-period policy.  The
model therefore tracks a normalized budget with fixed transmit/receive
costs and a linear harvest rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.types import NodeId, SimTime
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class EnergyConfig:
    """Energy parameters shared by all nodes.

    Units are normalized: a full battery is ``capacity`` units; one
    transmission costs ``tx_cost``; receiving one message costs
    ``rx_cost``; harvest restores ``harvest_rate`` units per simulated
    second, capped at capacity.
    """

    capacity: float = 1000.0
    tx_cost: float = 1.0
    rx_cost: float = 0.2
    harvest_rate: float = 0.05

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)
        check_non_negative("tx_cost", self.tx_cost)
        check_non_negative("rx_cost", self.rx_cost)
        check_non_negative("harvest_rate", self.harvest_rate)


@dataclass
class NodeEnergy:
    """One node's energy ledger."""

    level: float
    last_update: SimTime
    tx_count: int = 0
    rx_count: int = 0

    def fraction(self, capacity: float) -> float:
        """Remaining energy as a fraction of capacity, in ``[0, 1]``."""
        return max(0.0, min(1.0, self.level / capacity))


class EnergyModel:
    """Tracks energy for a set of nodes.

    The model is observational: it never prevents a transmission (the paper
    does not model battery exhaustion), but its per-node remaining-energy
    fractions feed the waiting-period policy, and its totals feed the
    energy-cost metrics of the ablation benchmarks.
    """

    def __init__(self, config: EnergyConfig | None = None) -> None:
        self.config = config if config is not None else EnergyConfig()
        self._nodes: Dict[NodeId, NodeEnergy] = {}

    def register(self, node_id: NodeId, now: SimTime, level: float | None = None) -> None:
        """Start tracking a node, optionally with a non-full battery."""
        if node_id in self._nodes:
            raise ConfigurationError(f"node {node_id} already tracked")
        start = self.config.capacity if level is None else float(level)
        if not 0.0 <= start <= self.config.capacity:
            raise ConfigurationError(
                f"initial level {start} outside [0, {self.config.capacity}]"
            )
        self._nodes[node_id] = NodeEnergy(level=start, last_update=now)

    def _entry(self, node_id: NodeId) -> NodeEnergy:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"node {node_id} not tracked") from None

    def _harvest(self, entry: NodeEnergy, now: SimTime) -> None:
        elapsed = max(0.0, now - entry.last_update)
        entry.level = min(
            self.config.capacity, entry.level + elapsed * self.config.harvest_rate
        )
        entry.last_update = now

    def on_transmit(self, node_id: NodeId, now: SimTime) -> None:
        """Charge one transmission to a node."""
        entry = self._entry(node_id)
        self._harvest(entry, now)
        entry.level = max(0.0, entry.level - self.config.tx_cost)
        entry.tx_count += 1

    def on_receive(self, node_id: NodeId, now: SimTime) -> None:
        """Charge one reception to a node."""
        entry = self._entry(node_id)
        self._harvest(entry, now)
        entry.level = max(0.0, entry.level - self.config.rx_cost)
        entry.rx_count += 1

    def remaining_fraction(self, node_id: NodeId, now: SimTime) -> float:
        """Remaining energy fraction at ``now`` (harvest applied)."""
        entry = self._entry(node_id)
        self._harvest(entry, now)
        return entry.fraction(self.config.capacity)

    def totals(self) -> Dict[str, float]:
        """Aggregate counters for metrics."""
        return {
            "tx_total": float(sum(e.tx_count for e in self._nodes.values())),
            "rx_total": float(sum(e.rx_count for e in self._nodes.values())),
            "min_level": min((e.level for e in self._nodes.values()), default=0.0),
            "mean_level": (
                sum(e.level for e in self._nodes.values()) / len(self._nodes)
                if self._nodes
                else 0.0
            ),
        }

    def spread(self) -> float:
        """Max minus min remaining level -- the energy-balance figure.

        The ablation benchmark for peer forwarding vs CH retransmission
        reports this: balanced strategies keep the spread small.
        """
        if not self._nodes:
            return 0.0
        levels = [e.level for e in self._nodes.values()]
        return max(levels) - min(levels)
