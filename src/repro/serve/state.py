"""Server-side view models: cached spool reductions and store snapshots.

The dashboard serves two kinds of state:

- **spool views** -- the ``repro trace`` reductions (summary, timeline,
  latency, lineage, topology) computed from a JSONL spool.  Reductions
  are cached against the file's ``(mtime_ns, size)`` stamp, so a
  recorded spool is analyzed exactly once while a *growing* spool is
  re-reduced whenever a request observes new bytes -- the reader only
  ever opens the file read-only, so a live writer (lock-serialized
  :class:`~repro.obs.spool.SpoolingTracer`) is never blocked or
  corrupted;
- **store views** -- campaign status (shared with ``repro campaign
  status --json``) and the per-campaign persisted metrics snapshots,
  folded into one registry for ``/metrics``.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.analyze import (
    TraceSummary,
    latency_payload,
    lineage,
    lineage_payload,
    summarize,
    summary_payload,
    timeline,
    timeline_payload,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spool import iter_spool
from repro.obs.topology import topology_payload, topology_view


class SpoolView:
    """Stamp-cached analyzer reductions over one spool file."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        if not self.path.is_file():
            raise ConfigurationError(f"no trace spool at {self.path}")
        self._cache: Dict[Any, Tuple[Tuple[int, int], Any]] = {}
        # Reductions are one-pass streams; serialize them so concurrent
        # requests do not redundantly re-reduce the same new stamp.
        self._lock = threading.Lock()

    def _stamp(self) -> Tuple[int, int]:
        stat = self.path.stat()
        return (stat.st_mtime_ns, stat.st_size)

    def _cached(self, key: Any, build: Callable[[], Any]) -> Any:
        with self._lock:
            stamp = self._stamp()
            hit = self._cache.get(key)
            if hit is not None and hit[0] == stamp:
                return hit[1]
            value = build()
            self._cache[key] = (stamp, value)
            return value

    # -- reductions ----------------------------------------------------
    def summary(self) -> TraceSummary:
        return self._cached(
            "summary", lambda: summarize(iter_spool(self.path))
        )

    def summary_payload(self) -> Dict[str, Any]:
        return summary_payload(self.summary())

    def timeline_payload(self, bucket: Optional[float] = None) -> Dict[str, Any]:
        def build() -> Dict[str, Any]:
            rows, meta = timeline(iter_spool(self.path), bucket=bucket)
            return timeline_payload(rows, meta, bucket=bucket)

        return self._cached(("timeline", bucket), build)

    def latency_payload(self) -> Dict[str, Any]:
        return latency_payload(self.summary())

    def lineage_payload(self, target: int) -> Dict[str, Any]:
        return self._cached(
            ("lineage", int(target)),
            lambda: lineage_payload(
                lineage(iter_spool(self.path), int(target))
            ),
        )

    def topology_payload(self) -> Dict[str, Any]:
        return self._cached(
            "topology",
            lambda: topology_payload(topology_view(iter_spool(self.path))),
        )


class StoreView:
    """Campaign status + persisted metrics of one result store."""

    def __init__(self, root: Path) -> None:
        # Deferred import: repro.campaign pulls the experiments stack,
        # which a spool-only dashboard should not pay for.
        from repro.campaign.store import ResultStore

        self.store = ResultStore(Path(root))

    def campaigns_payload(self) -> Dict[str, Any]:
        from repro.campaign.cli import status_payload

        return status_payload(self.store)

    def merge_metrics(self, registry: MetricsRegistry) -> int:
        """Fold every campaign's persisted snapshot into ``registry``.

        Reads the ``metrics.json`` dual of each campaign's
        ``metrics.prom`` (same registry, exact JSON numbers instead of
        re-parsing the text format).  Returns the campaign count folded.
        """
        merged = 0
        for campaign_id in self.store.campaign_ids():
            path = self.store.campaign_dir(campaign_id) / "metrics.json"
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (FileNotFoundError, json.JSONDecodeError):
                continue
            registry.merge_json(payload)
            merged += 1
        return merged
