"""The embedded dashboard page served at ``GET /``.

One self-contained HTML document -- no external assets, no CDN -- so the
dashboard works on an air-gapped bench host.  It polls the JSON
endpoints (summary/topology/timeline/latency) and subscribes to
``/events`` for the live record feed.

Color system: roles are CSS custom properties with light and dark
values (the ``prefers-color-scheme`` media query plus a ``data-theme``
override scope), and the canvases read the resolved variables at draw
time, so both charts follow the page theme.  Categorical series stay
within the first three validated palette slots (head=blue,
deputy=orange, gateway=aqua); plain members use muted ink and crashed
nodes use the reserved critical status color with a text label in the
legend -- identity is never color-alone.
"""

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro dashboard</title>
<style>
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --border: rgba(11, 11, 11, 0.10);
    --series-1: #2a78d6;   /* head */
    --series-2: #eb6834;   /* deputy */
    --series-3: #1baf7a;   /* gateway */
    --status-critical: #d03b3b;   /* crashed */
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --border: rgba(255, 255, 255, 0.10);
      --series-1: #3987e5;
      --series-2: #d95926;
      --series-3: #199e70;
      --status-critical: #d03b3b;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --status-critical: #d03b3b;
  }
  body.viz-root {
    margin: 0;
    background: var(--page);
    color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header {
    padding: 14px 20px 10px;
    border-bottom: 1px solid var(--border);
  }
  header h1 { font-size: 16px; margin: 0 0 2px; font-weight: 600; }
  header .sub { color: var(--text-secondary); font-size: 12px; }
  main {
    display: grid;
    grid-template-columns: repeat(auto-fit, minmax(360px, 1fr));
    gap: 14px;
    padding: 14px 20px 24px;
  }
  section.card {
    background: var(--surface-1);
    border: 1px solid var(--border);
    border-radius: 8px;
    padding: 12px 14px;
    min-width: 0;
  }
  section.card h2 {
    font-size: 13px; font-weight: 600; margin: 0 0 8px;
    color: var(--text-primary);
  }
  .stats { display: flex; flex-wrap: wrap; gap: 18px; }
  .stat .v { font-size: 22px; font-weight: 600; }
  .stat .k { color: var(--text-secondary); font-size: 11px; }
  canvas { width: 100%; display: block; }
  .legend {
    display: flex; flex-wrap: wrap; gap: 12px;
    margin-top: 6px; font-size: 11px; color: var(--text-secondary);
  }
  .legend .swatch {
    display: inline-block; width: 9px; height: 9px;
    border-radius: 50%; margin-right: 4px; vertical-align: -1px;
  }
  #feed {
    font: 11px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
    color: var(--text-secondary);
    max-height: 220px; overflow-y: auto; margin: 0; padding: 0;
    list-style: none;
  }
  #feed li { white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
  #feed li .t { color: var(--muted); }
  .hint { color: var(--muted); font-size: 11px; margin-top: 6px; }
</style>
</head>
<body class="viz-root">
<header>
  <h1>repro &mdash; cluster FDS dashboard</h1>
  <div class="sub" id="meta">loading&hellip;</div>
</header>
<main>
  <section class="card" style="grid-column: 1 / -1;">
    <h2>Run summary</h2>
    <div class="stats" id="stats"></div>
  </section>
  <section class="card">
    <h2>Cluster map</h2>
    <canvas id="map" height="340"></canvas>
    <div class="legend" id="map-legend"></div>
  </section>
  <section class="card">
    <h2>Trace timeline &mdash; records per bucket</h2>
    <canvas id="timeline" height="200"></canvas>
    <div class="legend" id="tl-legend"></div>
    <h2 style="margin-top:14px;">Detection latency (&phi; units)</h2>
    <canvas id="latency" height="140"></canvas>
  </section>
  <section class="card" style="grid-column: 1 / -1;">
    <h2>Live events</h2>
    <ul id="feed"></ul>
    <div class="hint">SSE tail of the spool (fds.* and sim.* kinds);
      newest last.</div>
  </section>
</main>
<script>
"use strict";
const css = name =>
  getComputedStyle(document.body).getPropertyValue(name).trim();
const ROLE_COLOR = () => ({
  head: css("--series-1"),
  deputy: css("--series-2"),
  gateway: css("--series-3"),
  member: css("--muted"),
  unclustered: css("--baseline"),
});
const fetchJSON = url => fetch(url).then(r => {
  if (!r.ok) throw new Error(url + " -> " + r.status);
  return r.json();
});

function sizeCanvas(canvas) {
  const ratio = window.devicePixelRatio || 1;
  const w = canvas.clientWidth, h = canvas.getAttribute("height") | 0;
  canvas.width = w * ratio;
  canvas.height = h * ratio;
  const ctx = canvas.getContext("2d");
  ctx.setTransform(ratio, 0, 0, ratio, 0, 0);
  return [ctx, w, h];
}

function stat(label, value) {
  return '<div class="stat"><div class="v">' + value +
         '</div><div class="k">' + label + "</div></div>";
}

function renderSummary(s) {
  const meta = s.meta || {};
  document.getElementById("meta").textContent =
    "nodes=" + (meta.nodes ?? "?") + "  phi=" + (meta.phi ?? "?") +
    "  seed=" + (meta.seed ?? "?") + "  timebase=" + (meta.timebase ?? "phi");
  const lat = s.detection_latency_phi || {};
  document.getElementById("stats").innerHTML =
    stat("records", s.records) +
    stat("span (s)", (s.span_s ?? 0).toFixed(2)) +
    stat("crashes detected", (lat.count ?? 0)) +
    stat("mean latency (\\u03c6)",
         lat.count ? lat.mean.toFixed(2) : "\\u2013");
}

function renderMap(topo) {
  const canvas = document.getElementById("map");
  const [ctx, w, h] = sizeCanvas(canvas);
  ctx.fillStyle = css("--surface-1");
  ctx.fillRect(0, 0, w, h);
  if (!topo.found || !topo.nodes.length) {
    ctx.fillStyle = css("--muted");
    ctx.fillText("no meta.topology record in this spool", 12, 20);
    return;
  }
  const xs = topo.nodes.map(n => n.x), ys = topo.nodes.map(n => n.y);
  const x0 = Math.min(...xs), x1 = Math.max(...xs);
  const y0 = Math.min(...ys), y1 = Math.max(...ys);
  const pad = 16;
  const sx = x => pad + (x - x0) / Math.max(x1 - x0, 1e-9) * (w - 2 * pad);
  const sy = y => h - pad - (y - y0) / Math.max(y1 - y0, 1e-9) * (h - 2 * pad);
  const colors = ROLE_COLOR();
  // Boundary links first (recessive), then marks on top.
  const byId = new Map(topo.nodes.map(n => [n.id, n]));
  ctx.strokeStyle = css("--grid");
  ctx.lineWidth = 1;
  for (const b of topo.boundaries) {
    const a = byId.get(b.owner), c = byId.get(b.peer);
    if (!a || !c) continue;
    ctx.beginPath();
    ctx.moveTo(sx(a.x), sy(a.y));
    ctx.lineTo(sx(c.x), sy(c.y));
    ctx.stroke();
  }
  for (const n of topo.nodes) {
    const crashed = n.crashed_at != null;
    const r = n.role === "head" ? 5 : 3.5;
    ctx.beginPath();
    ctx.arc(sx(n.x), sy(n.y), r, 0, 2 * Math.PI);
    ctx.fillStyle = crashed ? css("--status-critical")
                            : (colors[n.role] || colors.member);
    ctx.fill();
    // 2px surface ring keeps overlapping marks separable.
    ctx.strokeStyle = css("--surface-1");
    ctx.lineWidth = 2;
    ctx.stroke();
    if (crashed && n.detected_at != null) {
      ctx.beginPath();
      ctx.arc(sx(n.x), sy(n.y), r + 4, 0, 2 * Math.PI);
      ctx.strokeStyle = css("--status-critical");
      ctx.lineWidth = 1;
      ctx.stroke();
    }
  }
  document.getElementById("map-legend").innerHTML = [
    ["head", colors.head], ["deputy", colors.deputy],
    ["gateway", colors.gateway], ["member", colors.member],
    ["crashed \\u2715", css("--status-critical")],
  ].map(([k, c]) =>
    '<span><span class="swatch" style="background:' + c + '"></span>' +
    k + "</span>").join("");
}

const TL_GROUPS = ["radio", "fds", "sim"];
function renderTimeline(tl) {
  const canvas = document.getElementById("timeline");
  const [ctx, w, h] = sizeCanvas(canvas);
  ctx.fillStyle = css("--surface-1");
  ctx.fillRect(0, 0, w, h);
  const rows = tl.rows || [];
  if (!rows.length) return;
  const groups = TL_GROUPS.filter(g => (tl.groups || []).includes(g));
  const other = (tl.groups || []).filter(g => !TL_GROUPS.includes(g));
  const series = [...groups, ...(other.length ? ["other"] : [])];
  const palette = {
    radio: css("--series-1"), fds: css("--series-2"),
    sim: css("--series-3"), other: css("--muted"),
  };
  const totals = rows.map(r => series.reduce((acc, g) =>
    acc + (g === "other"
      ? other.reduce((a, o) => a + (r.counts[o] || 0), 0)
      : (r.counts[g] || 0)), 0));
  const maxT = Math.max(...totals, 1);
  const pad = 10, base = h - 16;
  const bw = Math.max((w - 2 * pad) / rows.length - 2, 1);
  ctx.strokeStyle = css("--baseline");
  ctx.beginPath(); ctx.moveTo(pad, base + 0.5);
  ctx.lineTo(w - pad, base + 0.5); ctx.stroke();
  rows.forEach((r, i) => {
    let y = base;
    const x = pad + i * ((w - 2 * pad) / rows.length);
    for (const g of series) {
      const v = g === "other"
        ? other.reduce((a, o) => a + (r.counts[o] || 0), 0)
        : (r.counts[g] || 0);
      if (!v) continue;
      const hh = v / maxT * (base - pad);
      ctx.fillStyle = palette[g];
      // 2px surface gap between stacked segments.
      ctx.fillRect(x, y - hh, bw, Math.max(hh - 2, 1));
      y -= hh;
    }
  });
  ctx.fillStyle = css("--muted");
  ctx.font = "10px system-ui, sans-serif";
  ctx.fillText("t=" + rows[0].t_start.toFixed(1), pad, h - 4);
  const last = rows[rows.length - 1];
  const label = "t=" + last.t_start.toFixed(1);
  ctx.fillText(label, w - pad - ctx.measureText(label).width, h - 4);
  document.getElementById("tl-legend").innerHTML = series.map(g =>
    '<span><span class="swatch" style="background:' + palette[g] +
    '"></span>' + g + "</span>").join("");
}

function renderLatency(lat) {
  const canvas = document.getElementById("latency");
  const [ctx, w, h] = sizeCanvas(canvas);
  ctx.fillStyle = css("--surface-1");
  ctx.fillRect(0, 0, w, h);
  const values = (lat.crashes || [])
    .filter(c => c.latency_phi != null).map(c => c.latency_phi);
  if (!values.length) {
    ctx.fillStyle = css("--muted");
    ctx.fillText("no detected crashes", 12, 20);
    return;
  }
  const edges = [0.5, 1, 1.5, 2, 3, 4, 6, 8];
  const counts = new Array(edges.length + 1).fill(0);
  for (const v of values) {
    let i = edges.findIndex(e => v <= e);
    counts[i < 0 ? edges.length : i] += 1;
  }
  const maxC = Math.max(...counts, 1);
  const pad = 10, base = h - 16;
  const bw = (w - 2 * pad) / counts.length - 2;
  ctx.strokeStyle = css("--baseline");
  ctx.beginPath(); ctx.moveTo(pad, base + 0.5);
  ctx.lineTo(w - pad, base + 0.5); ctx.stroke();
  ctx.fillStyle = css("--series-1");
  counts.forEach((c, i) => {
    const x = pad + i * ((w - 2 * pad) / counts.length);
    const hh = c / maxC * (base - pad);
    if (c) ctx.fillRect(x, base - hh, bw, hh);
  });
  ctx.fillStyle = css("--muted");
  ctx.font = "10px system-ui, sans-serif";
  const ticks = ["\\u22640.5", "\\u22642", "\\u22648", ">8"];
  const at = [0, 3, 7, 8];
  ticks.forEach((t, i) => {
    const x = pad + at[i] * ((w - 2 * pad) / counts.length);
    ctx.fillText(t, x, h - 4);
  });
}

function startFeed() {
  const feed = document.getElementById("feed");
  const source = new EventSource("/events?kinds=fds,sim,meta");
  source.onmessage = ev => {
    const rec = JSON.parse(ev.data);
    const li = document.createElement("li");
    li.innerHTML = '<span class="t">' +
      Number(rec.time).toFixed(3) + "</span> " + rec.kind +
      (rec.node != null ? " node=" + rec.node : "");
    feed.appendChild(li);
    while (feed.children.length > 200) feed.removeChild(feed.firstChild);
    feed.scrollTop = feed.scrollHeight;
  };
}

async function refresh() {
  try {
    const [summary, topo, tl, lat] = await Promise.all([
      fetchJSON("/api/summary"), fetchJSON("/api/topology"),
      fetchJSON("/api/timeline"), fetchJSON("/api/latency"),
    ]);
    renderSummary(summary);
    renderMap(topo);
    renderTimeline(tl);
    renderLatency(lat);
  } catch (err) {
    document.getElementById("meta").textContent = String(err);
  }
}

refresh();
setInterval(refresh, 3000);
startFeed();
window.addEventListener("resize", refresh);
</script>
</body>
</html>
"""
