"""The dashboard HTTP server: JSON endpoints, SSE tail, Prometheus.

Stdlib only (:mod:`http.server`): a :class:`ThreadingHTTPServer` whose
handler threads share one :class:`~repro.serve.state.SpoolView` (and
optionally a :class:`~repro.serve.state.StoreView`).  The JSON endpoints
serialize the *same payloads* through the *same serializer*
(:func:`repro.obs.cli.render_json`) as the ``repro trace`` CLI, so a
response body is byte-for-byte the CLI's stdout for the same spool.

Routes
------
``GET /``               embedded dashboard page (HTML)
``GET /api/summary``    = ``repro trace summarize <spool>``
``GET /api/timeline``   = ``repro trace timeline --json`` (``?bucket=``)
``GET /api/latency``    = ``repro trace latency --json``
``GET /api/lineage``    = ``repro trace lineage --json`` (``?target=``)
``GET /api/topology``   cluster map from the ``meta.topology`` record
``GET /api/campaigns``  = ``repro campaign status --json`` (needs --store)
``GET /events``         SSE tail of the spool (``?kinds=fds,sim``)
``GET /metrics``        Prometheus 0.0.4: server counters + store snapshots
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError
from repro.obs.cli import render_json
from repro.obs.registry import MetricsRegistry
from repro.obs.spool import iter_spool
from repro.serve.page import DASHBOARD_HTML
from repro.serve.state import SpoolView, StoreView
from repro.sim.trace import record_to_dict

#: Request-latency buckets in seconds; recorded spools answer from the
#: stamp cache (sub-millisecond), live re-reductions land in the tail.
REQUEST_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class DashboardServer(ThreadingHTTPServer):
    """Holds the shared views and the server's own metrics registry."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        spool_view: SpoolView,
        store_view: Optional[StoreView] = None,
        poll_interval: float = 0.5,
    ) -> None:
        super().__init__(address, DashboardHandler)
        self.spool_view = spool_view
        self.store_view = store_view
        self.poll_interval = poll_interval
        #: Set on shutdown; SSE loops drain and exit on it.
        self.stop_event = threading.Event()
        self.registry = MetricsRegistry()
        self.requests_total = self.registry.counter(
            "repro_serve_requests_total", "Dashboard HTTP requests served"
        )
        self.errors_total = self.registry.counter(
            "repro_serve_errors_total", "Dashboard HTTP error responses"
        )
        self.request_seconds = self.registry.histogram(
            "repro_serve_request_seconds",
            REQUEST_SECONDS_BUCKETS,
            "Dashboard request handling latency in seconds",
        )
        self.sse_records_total = self.registry.counter(
            "repro_serve_sse_records_total", "Trace records streamed over SSE"
        )

    def shutdown(self) -> None:
        self.stop_event.set()
        super().shutdown()


class DashboardHandler(BaseHTTPRequestHandler):
    server: DashboardServer  # narrowed for the route handlers

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # the dashboard is polled, so that would be a firehose.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        started = time.monotonic()
        self.server.requests_total.inc()
        try:
            if parts.path == "/events":
                # Long-lived: excluded from the latency histogram.
                self._serve_events(query)
                return
            handler = {
                "/": self._serve_page,
                "/api/summary": self._serve_summary,
                "/api/timeline": self._serve_timeline,
                "/api/latency": self._serve_latency,
                "/api/lineage": self._serve_lineage,
                "/api/topology": self._serve_topology,
                "/api/campaigns": self._serve_campaigns,
                "/metrics": self._serve_metrics,
            }.get(parts.path)
            if handler is None:
                self._send_error(404, f"no route {parts.path}")
                return
            handler(query)
        except (BrokenPipeError, ConnectionResetError):
            pass  # peer went away mid-response; nothing to answer
        except ReproError as exc:
            self._send_error(400, str(exc))
        except Exception as exc:  # keep the thread pool alive
            self._send_error(500, f"{type(exc).__name__}: {exc}")
        finally:
            self.server.request_seconds.observe(time.monotonic() - started)

    # -- route handlers ------------------------------------------------
    def _serve_page(self, _query: Dict[str, list]) -> None:
        self._send_body(
            200, DASHBOARD_HTML.encode("utf-8"), "text/html; charset=utf-8"
        )

    def _serve_summary(self, _query: Dict[str, list]) -> None:
        self._send_json(self.server.spool_view.summary_payload())

    def _serve_timeline(self, query: Dict[str, list]) -> None:
        bucket = self._float_param(query, "bucket")
        self._send_json(self.server.spool_view.timeline_payload(bucket))

    def _serve_latency(self, _query: Dict[str, list]) -> None:
        self._send_json(self.server.spool_view.latency_payload())

    def _serve_lineage(self, query: Dict[str, list]) -> None:
        raw = query.get("target", [""])[0]
        try:
            target = int(raw)
        except ValueError:
            self._send_error(400, f"lineage needs ?target=<node id>, got {raw!r}")
            return
        self._send_json(self.server.spool_view.lineage_payload(target))

    def _serve_topology(self, _query: Dict[str, list]) -> None:
        self._send_json(self.server.spool_view.topology_payload())

    def _serve_campaigns(self, _query: Dict[str, list]) -> None:
        if self.server.store_view is None:
            self._send_error(
                404, "no result store attached (start with --store)"
            )
            return
        self._send_json(self.server.store_view.campaigns_payload())

    def _serve_metrics(self, _query: Dict[str, list]) -> None:
        registry = MetricsRegistry()
        registry.merge_json(self.server.registry.to_json())
        if self.server.store_view is not None:
            self.server.store_view.merge_metrics(registry)
        self._send_body(
            200, registry.render_prometheus().encode("utf-8"),
            PROMETHEUS_CONTENT_TYPE,
        )

    def _serve_events(self, query: Dict[str, list]) -> None:
        kinds_raw = query.get("kinds", [""])[0]
        kinds = (
            [k for k in kinds_raw.split(",") if k] if kinds_raw else None
        )
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for record in iter_spool(
                self.server.spool_view.path,
                kinds=kinds,
                follow=True,
                poll_interval=self.server.poll_interval,
                stop=self.server.stop_event,
                idle_marker=True,
            ):
                if record is None:
                    # Empty poll: the comment keep-alive both holds
                    # proxies open and surfaces dead peers as write
                    # errors, ending this thread.
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                data = json.dumps(record_to_dict(record), sort_keys=True)
                self.wfile.write(f"data: {data}\n\n".encode("utf-8"))
                self.wfile.flush()
                self.server.sse_records_total.inc()
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- plumbing ------------------------------------------------------
    def _float_param(
        self, query: Dict[str, list], name: str
    ) -> Optional[float]:
        raw = query.get(name, [""])[0]
        if not raw:
            return None
        try:
            return float(raw)
        except ValueError:
            raise ReproError(f"?{name}= must be a number, got {raw!r}")

    def _send_json(self, payload: Dict[str, Any]) -> None:
        self._send_body(
            200, render_json(payload).encode("utf-8"),
            "application/json; charset=utf-8",
        )

    def _send_error(self, status: int, message: str) -> None:
        self.server.errors_total.inc()
        body = render_json({"error": message, "status": status})
        self._send_body(
            status, body.encode("utf-8"), "application/json; charset=utf-8"
        )

    def _send_body(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
