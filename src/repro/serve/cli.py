"""Backend of ``python -m repro serve``."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.errors import ReproError


def add_serve_parser(sub: argparse._SubParsersAction) -> None:
    serve = sub.add_parser(
        "serve",
        help="live dashboard over a trace spool (HTTP + SSE + /metrics)",
    )
    serve.add_argument("--spool", required=True,
                       help="trace spool to serve (.jsonl; may still be "
                            "growing -- /events tails it live)")
    serve.add_argument("--store", type=str, default="",
                       help="result-store root to expose at /api/campaigns "
                            "and fold into /metrics")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377,
                       help="listen port (0 = ephemeral; the bound port is "
                            "printed)")
    serve.add_argument("--poll-interval", dest="poll_interval", type=float,
                       default=0.5,
                       help="seconds between spool polls on /events")


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.http import DashboardServer
    from repro.serve.state import SpoolView, StoreView

    try:
        spool_view = SpoolView(Path(args.spool))
        store_view = StoreView(Path(args.store)) if args.store else None
        server = DashboardServer(
            (args.host, args.port),
            spool_view,
            store_view=store_view,
            poll_interval=args.poll_interval,
        )
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
    host, port = server.server_address[:2]
    print(f"serving {spool_view.path} on http://{host}:{port}/ "
          f"(Ctrl-C to stop)")
    try:
        server.serve_forever()
    finally:
        server.stop_event.set()
        server.server_close()
    return 0
