"""Live dashboard service: HTTP/SSE serving of spools, campaigns, metrics.

``python -m repro serve --spool trace.jsonl [--store .repro-store]``
starts a stdlib-only :class:`ThreadingHTTPServer` whose JSON endpoints
reuse the ``repro trace`` reductions byte-for-byte, whose ``/events``
endpoint tails a (possibly still growing) spool over Server-Sent
Events, and whose ``/metrics`` endpoint merges the server's own request
metrics with every campaign snapshot persisted in the store.
"""

from repro.serve.state import SpoolView, StoreView

__all__ = ["SpoolView", "StoreView"]
