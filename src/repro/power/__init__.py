"""Sleep/wakeup power management (the paper's Section 6 outlook).

The concluding remarks note that cluster architectures suit sleep/wakeup
power strategies, but that "sleep mode may cause false detections", and
announce plans "to derive algorithms to reduce the likelihood of
sleep-mode-caused false detection."  This package implements both halves:

- :class:`~repro.power.schedule.DutyCycleSchedule` puts ordinary members
  to sleep for whole FDS executions (radio off, no rounds) while the
  backbone (CH, deputies, gateways) stays awake -- the standard
  cluster-based power regime;
- sleep-aware detection: a node *announces* its upcoming sleep span on
  its last heartbeat before sleeping; the detecting authorities excuse
  announced absences, so a sleeping node is not declared failed
  (:class:`~repro.power.manager.SleepManager` with
  ``announce_sleep=True``), while a node that dies in its sleep is still
  detected the first execution after its excuse expires.

The power ablation benchmark quantifies the difference: naive sleeping
produces a false detection per sleeping member per execution; announced
sleeping produces none.
"""

from repro.power.manager import SleepManager, install_power_management
from repro.power.schedule import DutyCycleSchedule, SleepSchedule

__all__ = [
    "SleepSchedule",
    "DutyCycleSchedule",
    "SleepManager",
    "install_power_management",
]
