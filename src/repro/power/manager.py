"""The per-node sleep controller.

A :class:`SleepManager` drives one node's radio and FDS participation from
a :class:`~repro.power.schedule.SleepSchedule`:

- at the start of each execution (via the FDS's ``pre_round1_hook``) it
  decides whether the node sleeps this execution; sleeping turns the
  receiver off and suppresses every FDS round (a sleeping host transmits
  and hears nothing);
- with ``announce_sleep=True`` (the paper's proposed mitigation) the last
  awake heartbeat before a sleep span carries the span, so detecting
  authorities excuse the absence;
- backbone roles never sleep: the clusterhead, the acting deputies, and
  boundary forwarders keep the service running (the usual cluster-based
  power regime the paper's Section 6 references [18] motivate).

Energy accounting: while asleep a node neither transmits nor receives, so
the :class:`~repro.energy.model.EnergyModel` simply sees no drains; the
power bench reports the resulting rx/tx savings.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.fds.service import FdsDeployment, FdsProtocol
from repro.power.schedule import SleepSchedule
from repro.types import NodeId


class SleepManager:
    """Controls one node's duty cycling."""

    def __init__(
        self,
        protocol: FdsProtocol,
        schedule: SleepSchedule,
        announce_sleep: bool = True,
        announce_horizon: int = 2,
    ) -> None:
        if protocol.node is None:
            raise ConfigurationError("FDS protocol is not attached to a node")
        if announce_horizon < 1:
            raise ConfigurationError(
                f"announce_horizon must be >= 1, got {announce_horizon}"
            )
        self.protocol = protocol
        self.schedule = schedule
        self.announce_sleep = announce_sleep
        #: Announce a sleep span on every awake heartbeat within this many
        #: executions before it starts (time redundancy: a single lost
        #: announcement no longer means a false detection).
        self.announce_horizon = announce_horizon
        #: No sleeping before this execution: every node stays awake long
        #: enough to announce its first sleep span (cold-start safety).
        self.warmup = announce_horizon if announce_sleep else 0
        self.sleep_executions = 0
        protocol.pre_round1_hook = self._on_execution_start

    def _backbone(self) -> bool:
        """Whether this node currently holds a role that must stay awake."""
        protocol = self.protocol
        if protocol.is_head:
            return True
        if protocol.deputies and protocol.node.node_id in protocol.deputies:
            return True
        if protocol.inter is not None and protocol.inter.duties:
            return True
        return False

    def _on_execution_start(self, execution: int) -> None:
        protocol = self.protocol
        node = protocol.node
        assert node is not None
        if not node.is_operational:
            return
        wants_sleep = (
            execution >= self.warmup
            and self.schedule.asleep(node.node_id, execution)
        )
        sleeping = wants_sleep and not self._backbone()
        if sleeping:
            self.sleep_executions += 1
        if sleeping != protocol.asleep:
            protocol.asleep = sleeping
            node.medium.set_receiving(node.node_id, not sleeping)
        if not sleeping and self.announce_sleep and not self._backbone():
            span = self._announcement_span(node.node_id, execution)
            if span > 0:
                protocol.pending_sleep_announcement = span

    def _announcement_span(self, node_id: NodeId, execution: int) -> int:
        """Excuse span to announce on this execution's heartbeat.

        Looks ahead ``announce_horizon`` executions for the start of a
        sleep run and, if found, excuses everything up to that run's end.
        Excusing the awake gap in between is harmless: an excused node
        that heartbeats anyway is simply not checked.
        """
        start = None
        for offset in range(1, self.announce_horizon + 1):
            if self.schedule.asleep(node_id, execution + offset):
                start = execution + offset
                break
        if start is None:
            return 0
        end = start
        while self.schedule.asleep(node_id, end + 1):
            end += 1
        return end - execution


def install_power_management(
    deployment: FdsDeployment,
    schedule: SleepSchedule,
    announce_sleep: bool = True,
) -> Dict[NodeId, SleepManager]:
    """Attach a :class:`SleepManager` to every node of an FDS deployment."""
    managers: Dict[NodeId, SleepManager] = {}
    for node_id, protocol in sorted(deployment.protocols.items()):
        managers[node_id] = SleepManager(
            protocol, schedule, announce_sleep=announce_sleep
        )
    return managers
