"""Sleep schedules: which FDS executions a node sleeps through."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.types import NodeId


class SleepSchedule:
    """Interface: decides per (node, execution) whether the node sleeps."""

    def asleep(self, node_id: NodeId, execution: int) -> bool:
        raise NotImplementedError

    def span_ahead(self, node_id: NodeId, execution: int) -> int:
        """How many consecutive executions starting at ``execution + 1``
        the node will sleep through (what a sleep announcement carries).
        """
        span = 0
        probe = execution + 1
        while self.asleep(node_id, probe):
            span += 1
            probe += 1
            if span > 10_000:  # pragma: no cover - guard against always-on
                raise ConfigurationError(
                    "schedule sleeps forever; a node must wake eventually"
                )
        return span


class DutyCycleSchedule(SleepSchedule):
    """Deterministic duty cycling: awake ``awake`` executions, then asleep
    ``asleep_count``, repeating, with a per-node phase offset so the whole
    cluster never sleeps at once.

    ``phase_stride`` staggers nodes: node v's cycle is shifted by
    ``(v * phase_stride) mod (awake + asleep_count)``.
    """

    def __init__(
        self, awake: int = 3, asleep_count: int = 1, phase_stride: int = 1
    ) -> None:
        if awake < 1:
            raise ConfigurationError(f"awake must be >= 1, got {awake}")
        if asleep_count < 0:
            raise ConfigurationError(
                f"asleep_count must be >= 0, got {asleep_count}"
            )
        self.awake = awake
        self.asleep_count = asleep_count
        self.phase_stride = phase_stride

    @property
    def period(self) -> int:
        return self.awake + self.asleep_count

    def asleep(self, node_id: NodeId, execution: int) -> bool:
        if self.asleep_count == 0 or execution < 0:
            return False
        phase = (execution + int(node_id) * self.phase_stride) % self.period
        return phase >= self.awake


class RandomSleepSchedule(SleepSchedule):
    """Each node independently sleeps each execution with probability q.

    Draws are memoized so ``asleep`` is a pure function of (node,
    execution) -- required because announcements must predict the future
    consistently with what the node then does.
    """

    def __init__(self, q: float, rng: Optional[np.random.Generator] = None,
                 seed: int = 0) -> None:
        if not 0.0 <= q < 1.0:
            raise ConfigurationError(f"q must be in [0, 1), got {q}")
        self.q = q
        self._rng_seed = seed
        self._memo: dict[tuple[int, int], bool] = {}

    def asleep(self, node_id: NodeId, execution: int) -> bool:
        if execution < 0:
            return False
        key = (int(node_id), execution)
        if key not in self._memo:
            # Derive a stable per-(node, execution) draw.
            from repro.util.rng import derive_seed

            seed = derive_seed(self._rng_seed, "sleep", key[0], key[1])
            self._memo[key] = (seed % 10_000) / 10_000.0 < self.q
        return self._memo[key]
