"""Sim-vs-real differential conformance (``differential:realnet``).

One seeded :class:`~repro.audit.differential.ScenarioSpec` runs twice:
under the discrete-event simulator (virtual time) and under the asyncio
UDP runtime (:mod:`repro.rt.runtime`, wall time scaled by
``time_scale``).  Both runs derive topology and faultload from the same
named RNG streams, so the *loss-independent* structure is comparable
exactly; everything the wall clock or private loss draws can legitimately
perturb is compared through tolerance bands or oracles instead:

- **field shape** -- node/cluster counts, the crashed-node set, and each
  crash's execution index must match exactly (stream identity);
- **completeness oracle** -- when the spec's loss model keeps the drop
  budget within the forwarding tolerance
  (:func:`~repro.audit.differential.completeness_guaranteed`), the two
  runs' completeness verdicts must agree (the guarantee itself is the
  sim soak's oracle; realnet checks runtime conformance);
- **accuracy oracle** -- both runs must satisfy the same refutation
  discipline: any detection of a node that is operational at the end
  must be refuted later, unless it falls inside the final recovery
  window; on loss-free links the final suspicion state must be clean;
- **latency anchors** -- a crashed member is silent, so its CH detects
  it at ``0.4*phi + 2*thop`` after the crash regardless of the links.
  Per crashed target (excluding targets falsely detected *before* their
  crash in either run), detected-ness must agree and the phi-unit
  latencies must lie within ``tolerance_phi`` of each other -- the band
  that absorbs asyncio timer jitter and socket latency.

On divergence, :func:`realnet_repro_snippet` renders the spec as a
ready-to-paste seeded pytest case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.audit.differential import (
    ScenarioSpec,
    Violation,
    completeness_guaranteed,
)
from repro.experiments.runner import ScenarioResult, run_scenario
from repro.fds.events import DETECTION, REFUTATION
from repro.rt.runtime import RtResult, RtScenario, run_rt_scenario

#: Default wall-clock tolerance band for phi-unit latency comparison.
DEFAULT_TOLERANCE_PHI = 0.15


def realnet_spec(seed: int) -> ScenarioSpec:
    """Sample one runtime-sized spec from the realnet soak distribution.

    Wall time is real here, so the distribution stays small (two
    clusters, a handful of executions) and uses ``phi=8`` spec seconds:
    at the default ``time_scale=0.05`` one execution is 0.4 wall
    seconds and a whole run stays under ~2.5 s.
    """
    rng = np.random.default_rng(seed)
    loss_kind = str(rng.choice(["perfect", "perfect", "bernoulli", "bounded"]))
    return ScenarioSpec(
        seed=int(rng.integers(0, 2**31 - 1)),
        cluster_count=2,
        members_per_cluster=int(rng.integers(5, 9)),
        crash_count=int(rng.integers(1, 3)),
        executions=int(rng.integers(3, 5)),
        loss_kind=loss_kind,
        loss_p=float(rng.choice([0.1, 0.15])),
        loss_budget=int(rng.integers(1, 3)),
        spacing_factor=1.25,
        max_backups=2,
        phi=8.0,
        thop=0.5,
    )


# ----------------------------------------------------------------------
# Per-run reductions
# ----------------------------------------------------------------------
def _crash_executions(
    crash_times: Dict, fds_start: float, phi: float
) -> Dict[int, int]:
    """Recover each crash's execution index from its timestamp (the
    inverse of ``fds_start + (e - 1) * phi + 0.6 * phi``)."""
    return {
        int(nid): int(round((t - fds_start - 0.6 * phi) / phi)) + 1
        for nid, t in crash_times.items()
    }


def _latencies_phi(
    result, phi: float
) -> Tuple[Dict[int, Optional[float]], set]:
    """Per-crashed-target detection latency in phi units, plus the set
    of targets falsely detected before their crash (anchor-exempt)."""
    predetected = set()
    for record in result.tracer.iter_kind(DETECTION):
        target = int(record.detail["target"])
        crash_time = result.crash_times.get(target)
        if crash_time is not None and record.time < crash_time:
            predetected.add(target)
    latencies = {
        int(nid): (None if seconds is None else seconds / phi)
        for nid, seconds in result.detection_latencies.items()
    }
    return latencies, predetected


def _rt_accuracy_violations(
    spec: ScenarioSpec, result: RtResult
) -> List[Violation]:
    """The simulator's accuracy oracle, applied to a runtime run.

    Same discipline as :func:`repro.audit.differential.accuracy_violations`,
    in the runtime's wall timebase: the recovery-window excuse uses the
    wall-scaled phi, the horizon is the last traced instant, and the
    "no drops at all" strengthening counts the runtime's own loss draws.
    """
    config = result.config
    records = getattr(result.tracer, "records", [])
    horizon = max((r.time for r in records), default=0.0)
    window = (config.max_forward_retries + 1) * config.phi
    operational = {
        int(nid) for nid, n in result.nodes.items() if n.is_operational
    }
    refuted_at: Dict[int, List[float]] = {}
    for record in result.tracer.iter_kind(REFUTATION):
        refuted_at.setdefault(int(record.detail["target"]), []).append(
            record.time
        )
    violations: List[Violation] = []
    for record in result.tracer.iter_kind(DETECTION):
        target = int(record.detail["target"])
        if target not in operational:
            continue
        if any(t >= record.time for t in refuted_at.get(target, [])):
            continue
        if record.time > horizon - window:
            continue
        violations.append(
            Violation(
                kind="accuracy",
                description=(
                    f"[realnet] node {record.node} detected operational "
                    f"node {target} at t={record.time:.3f} with no "
                    f"refutation in the remaining {horizon - record.time:.1f}s"
                ),
            )
        )
    losses = result.tracer.count("radio.loss")
    if losses == 0:
        violations.extend(
            Violation(
                kind="accuracy",
                description=(
                    f"[realnet] node {int(a)} still suspects operational "
                    f"node {int(b)} at the end of a loss-free run"
                ),
            )
            for a, b in result.properties.accuracy_violations
        )
    return violations


# ----------------------------------------------------------------------
# The differential pair
# ----------------------------------------------------------------------
def check_realnet(
    spec: ScenarioSpec,
    time_scale: float = 0.05,
    tolerance_phi: float = DEFAULT_TOLERANCE_PHI,
    sim: Optional[ScenarioResult] = None,
    rt: Optional[RtResult] = None,
) -> List[Violation]:
    """Run ``spec`` under sim and runtime; return every divergence.

    ``sim``/``rt`` let a caller that already ran one side (or both)
    reuse the results; both runs must have used in-memory tracers.
    """
    if sim is None:
        sim = run_scenario(spec.to_config())
    if rt is None:
        rt = run_rt_scenario(RtScenario.from_spec(spec, time_scale=time_scale))
    violations: List[Violation] = []

    def diverged(description: str) -> None:
        violations.append(
            Violation(kind="differential:realnet", description=description)
        )

    # Field shape (stream identity makes exact equality the contract).
    if len(rt.nodes) != len(sim.network.nodes):
        diverged(
            f"node counts diverged: rt {len(rt.nodes)} != "
            f"sim {len(sim.network.nodes)}"
        )
    if len(rt.layout.clusters) != len(sim.layout.clusters):
        diverged(
            f"cluster counts diverged: rt {len(rt.layout.clusters)} != "
            f"sim {len(sim.layout.clusters)}"
        )
    sim_crashed = tuple(sorted(int(n) for n in sim.crash_times))
    rt_crashed = tuple(sorted(int(n) for n in rt.crash_times))
    if sim_crashed != rt_crashed:
        diverged(
            f"crashed-node sets diverged (faultload stream identity "
            f"broken): rt {rt_crashed} != sim {sim_crashed}"
        )
    else:
        sim_execs = _crash_executions(sim.crash_times, 0.0, spec.phi)
        rt_execs = _crash_executions(
            rt.crash_times, rt.fds_start, rt.config.phi
        )
        if sim_execs != rt_execs:
            diverged(
                f"crash execution indices diverged: rt {rt_execs} != "
                f"sim {sim_execs}"
            )

    # Completeness oracle: when the loss model makes completeness
    # deterministic, the sim and rt verdicts must agree.  (Whether the
    # guarantee itself holds is the sim soak's oracle; realnet only
    # checks that the runtime conforms to the simulator.)
    if completeness_guaranteed(spec):
        sim_complete = sim.properties.is_complete
        rt_complete = rt.properties.is_complete
        if sim_complete != rt_complete:
            diverged(
                f"completeness verdicts diverged under deterministic "
                f"loss: sim {'complete' if sim_complete else 'incomplete'} "
                f"vs rt {'complete' if rt_complete else 'incomplete'}"
            )

    # Accuracy oracle on the runtime run (the sim side is covered by
    # differential.accuracy_violations in check_spec / the soak).
    violations.extend(_rt_accuracy_violations(spec, rt))

    # Loss-independent latency anchors, in phi units with a wall band.
    if sim_crashed == rt_crashed:
        sim_lat, sim_pre = _latencies_phi(sim, spec.phi)
        rt_lat, rt_pre = _latencies_phi(rt, rt.config.phi)
        exempt = sim_pre | rt_pre
        for target in sorted(set(sim_lat) - exempt):
            s, r = sim_lat[target], rt_lat.get(target)
            if (s is None) != (r is None):
                diverged(
                    f"crash of node {target} detected in "
                    f"{'sim' if s is not None else 'rt'} only "
                    f"(sim={s}, rt={r})"
                )
            elif s is not None and r is not None and abs(s - r) > tolerance_phi:
                diverged(
                    f"detection latency of node {target} off the anchor: "
                    f"rt {r:.3f} phi vs sim {s:.3f} phi "
                    f"(|delta| {abs(s - r):.3f} > tolerance {tolerance_phi})"
                )
    return violations


@dataclass
class RealnetVerdict:
    """One spec's differential outcome."""

    spec: ScenarioSpec
    violations: List[Violation]

    @property
    def clean(self) -> bool:
        return not self.violations


@dataclass
class RealnetSuiteResult:
    """A whole ``repro rt diff`` sweep."""

    verdicts: List[RealnetVerdict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(v.clean for v in self.verdicts)

    @property
    def failures(self) -> List[RealnetVerdict]:
        return [v for v in self.verdicts if not v.clean]


def run_realnet_suite(
    count: int,
    seed: int = 0,
    time_scale: float = 0.05,
    tolerance_phi: float = DEFAULT_TOLERANCE_PHI,
    log=None,
) -> RealnetSuiteResult:
    """Check ``count`` seeded specs from the realnet distribution."""
    result = RealnetSuiteResult()
    for index in range(count):
        spec = realnet_spec(seed + index)
        violations = check_realnet(
            spec, time_scale=time_scale, tolerance_phi=tolerance_phi
        )
        result.verdicts.append(RealnetVerdict(spec, violations))
        if log is not None:
            status = "ok" if not violations else (
                f"{len(violations)} violation(s)"
            )
            log(
                f"realnet[{index}] seed={spec.seed} "
                f"loss={spec.loss_kind} crashes={spec.crash_count} "
                f"executions={spec.executions}: {status}"
            )
    return result


def realnet_repro_snippet(
    spec: ScenarioSpec, violations: List[Violation]
) -> str:
    """A ready-to-paste pytest case reproducing a realnet divergence."""
    lines = [f"    #   - {v.kind}: {v.description}" for v in violations]
    fields = ", ".join(
        f"{name}={getattr(spec, name)!r}"
        for name in (
            "seed",
            "cluster_count",
            "members_per_cluster",
            "crash_count",
            "executions",
            "loss_kind",
            "loss_p",
            "loss_budget",
            "spacing_factor",
            "max_backups",
            "phi",
            "thop",
        )
    )
    body = "\n".join(lines) if lines else "    #   (violations list was empty)"
    return (
        "from repro.audit.differential import ScenarioSpec\n"
        "from repro.audit.realnet import check_realnet\n"
        "\n"
        "\n"
        "def test_realnet_regression():\n"
        "    # Shrunk from a failing sim/real differential; observed:\n"
        f"{body}\n"
        f"    spec = ScenarioSpec({fields})\n"
        "    assert check_realnet(spec) == []\n"
    )
